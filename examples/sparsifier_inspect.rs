//! Inspect the deterministic sparsifier machinery (Theorem 3.3): the
//! expander decomposition, the per-cluster certificates, the star gadgets,
//! and the independent dense verification of the claimed α.
//!
//! ```text
//! cargo run --release --example sparsifier_inspect
//! ```

use laplacian_clique::prelude::*;
use laplacian_clique::sparsify::expander_decompose;

fn main() {
    // A graph with visible structure: two communities bridged by one edge.
    let g = generators::barbell(16);
    println!(
        "graph: barbell of two K16 cliques, n = {}, m = {}\n",
        g.n(),
        g.m()
    );

    // Level-0 expander decomposition at a few conductance thresholds.
    for phi in [0.05, 0.2, 0.4] {
        let dec = expander_decompose(&g, phi).expect("well-conditioned weights");
        println!("decomposition at φ = {phi}: {}", dec.summary());
    }

    // The full sparsifier and its independently verified quality.
    let mut clique = Clique::new(g.n());
    let h = build_sparsifier(&mut clique, &g, &SparsifyParams::default()).expect("honest clique");
    println!(
        "\nsparsifier: {} edges (+{} star centers) over {} levels, certified alpha = {:.4}",
        h.edge_count(),
        h.aux_count(),
        h.levels(),
        h.alpha()
    );
    let bounds = verify_sparsifier(&g, &h).expect("pencil converges");
    println!(
        "independent dense verification: exact pencil alpha = {:.4} (claimed {:.4}) — honest: {}",
        bounds.alpha(),
        h.alpha(),
        bounds.alpha() <= h.alpha() * (1.0 + 1e-9)
    );
    println!(
        "construction rounds: {} implemented + {} charged (CS20 oracle)",
        clique.ledger().implemented_rounds(),
        clique.ledger().charged_rounds()
    );

    // What the sparsifier buys: the Chebyshev iteration count at ε = 1e-8
    // is κ-bound, κ = alpha².
    let mut clique2 = Clique::new(g.n());
    let solver = LaplacianSolver::build(&mut clique2, &g, &SolverOptions::default()).unwrap();
    println!(
        "\nκ = {:.3} ⇒ {} Chebyshev iterations (= broadcast rounds) per solve at ε = 1e-8",
        solver.kappa(),
        solver.iterations_for(1e-8)
    );
}
