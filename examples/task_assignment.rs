//! Task assignment scenario: unit-capacity minimum cost flow
//! (Theorem 1.3) assigns workers to jobs at minimum total cost.
//!
//! ```text
//! cargo run --release --example task_assignment
//! ```
//!
//! A scheduler has `k` workers and `k` jobs; worker `w` can run job `j` at
//! integer cost `c(w, j)` (only some pairs are compatible). Each worker
//! must take exactly one job. This is exactly the unit-capacity min-cost
//! flow workload the paper's Theorem 1.3 targets — bipartite demands
//! `+1`/`−1` per vertex.

use laplacian_clique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 8;
    let (g, sigma) = generators::bipartite_assignment(k, 3, 20, 11);
    println!(
        "assignment: {k} workers, {k} jobs, {} compatible (worker, job) pairs, costs 1..=20",
        g.m()
    );

    // Ground truth.
    let (_, optimal) = ssp_min_cost_flow(&g, &sigma).expect("instance is feasible");
    println!("optimal total cost (sequential SSP reference): {optimal}\n");

    let mut clique = Clique::new(g.n() + 2);
    let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default())?;
    assert_eq!(out.cost, optimal);

    println!("congested clique pipeline (Theorem 1.3):");
    println!("  total cost            : {}", out.cost);
    println!("  IPM progress steps    : {}", out.stats.progress_steps);
    println!("  perturbation steps    : {}", out.stats.perturbation_steps);
    println!(
        "  demand satisfied pre-rounding : {:.1}%",
        100.0 * out.stats.ipm_progress
    );
    println!("  repair paths          : {}", out.stats.repair_paths);
    println!("  cancelled cycles      : {}", out.stats.cancelled_cycles);
    println!(
        "  total rounds          : {}",
        clique.ledger().total_rounds()
    );

    println!("\nchosen assignment:");
    for (i, e) in g.edges().iter().enumerate() {
        if out.flow[i] == 1 {
            println!(
                "  worker {:>2} -> job {:>2}   (cost {:>2})",
                e.from,
                e.to - k,
                e.cost
            );
        }
    }

    println!("\nround ledger:\n{}", clique.ledger().report());
    Ok(())
}
