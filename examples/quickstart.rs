//! Quickstart: solve a Laplacian system on a simulated congested clique.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the deterministic spectral sparsifier of a random weighted graph
//! (Theorem 3.3), solves `L x = b` with preconditioned Chebyshev iteration
//! (Theorem 1.1) at a sweep of precisions, and prints the round ledger —
//! the quantity the paper is about.

use laplacian_clique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let g = generators::random_connected(n, 4 * n, 16, 42);
    println!(
        "graph: n = {}, m = {}, max weight U = {}",
        g.n(),
        g.m(),
        g.max_weight()
    );

    let mut clique = Clique::new(n);
    let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default())?;
    println!(
        "sparsifier: {} edges (+{} auxiliary star centers), certified alpha = {:.3}, kappa = {:.3}",
        solver.sparsifier().edge_count(),
        solver.sparsifier().aux_count(),
        solver.sparsifier().alpha(),
        solver.kappa(),
    );

    // Demand: one unit in at vertex 0, out at vertex n-1.
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;

    println!(
        "\n{:>10} {:>12} {:>18} {:>14}",
        "eps", "iterations", "achieved error", "rounds"
    );
    for eps in [1e-2, 1e-4, 1e-6, 1e-8, 1e-10] {
        let before = clique.ledger().total_rounds();
        let out = solver.solve(&mut clique, &b, eps).expect("honest clique");
        let rounds = clique.ledger().total_rounds() - before;
        let err = out
            .relative_error()
            .expect("default options keep the exact reference");
        println!(
            "{eps:>10.0e} {:>12} {err:>18.3e} {:>14}",
            out.iterations, rounds
        );
    }

    println!("\nround ledger:\n{}", clique.ledger().report());
    Ok(())
}
