//! Traffic routing scenario: exact maximum flow on a road network with the
//! full Theorem 1.2 pipeline, compared against the paper's §1.1 baselines.
//!
//! ```text
//! cargo run --release --example traffic_routing
//! ```
//!
//! A city wants the maximum number of vehicles per minute from the
//! north-west interchange to the south-east one. Three deterministic
//! congested clique algorithms answer it exactly; the interesting
//! comparison is the *rounds* each needs (experiment E6/E8 of
//! `EXPERIMENTS.md` runs the full sweep).

use laplacian_clique::prelude::*;

fn main() {
    let rows = 4;
    let cols = 5;
    let g = generators::grid_flow_network(rows, cols, 8, 7);
    let n = g.n();
    let (s, t) = (0, n - 1);
    println!(
        "road network: {rows}x{cols} junctions, {} one-way segments, capacities 1..=8",
        g.m()
    );

    // Ground truth.
    let (_, optimal) = dinic(&g, s, t);
    println!("optimal throughput (sequential Dinic reference): {optimal}\n");

    // 1. The paper's IPM pipeline (Theorem 1.2).
    let mut c1 = Clique::new(n);
    let ipm = max_flow_ipm(&mut c1, &g, s, t, &IpmOptions::default()).expect("honest clique");
    assert_eq!(ipm.value, optimal);
    println!(
        "IPM pipeline:    value {} | rounds {:>8} | {} progress steps, {} boosts, \
         rounded value {}, {} repair paths{}",
        ipm.value,
        c1.ledger().total_rounds(),
        ipm.stats.progress_steps,
        ipm.stats.boosting_steps,
        ipm.stats.rounded_value,
        ipm.stats.repair_paths,
        if ipm.stats.fell_back_to_zero {
            " (fallback)"
        } else {
            ""
        },
    );

    // 2. Ford-Fulkerson over algebraic reachability (O(|f*| n^0.158)).
    let mut c2 = Clique::new(n);
    let ff =
        max_flow_ford_fulkerson(&mut c2, &g, s, t, RoundModel::FastMatMul).expect("honest clique");
    assert_eq!(ff.value, optimal);
    println!(
        "Ford-Fulkerson:  value {} | rounds {:>8} | {} augmenting paths",
        ff.value,
        c2.ledger().total_rounds(),
        ff.stats.repair_paths,
    );

    // 3. Trivial gather-everything (O(n log U)).
    let mut c3 = Clique::new(n);
    let tr = max_flow_trivial(&mut c3, &g, s, t).expect("honest clique");
    assert_eq!(tr.value, optimal);
    println!(
        "trivial gather:  value {} | rounds {:>8}",
        tr.value,
        c3.ledger().total_rounds(),
    );

    println!("\nIPM round breakdown:\n{}", c1.ledger().report());
    println!(
        "note: at toy sizes the trivial algorithm wins — the paper's point is the\n\
         asymptotic shape; run `cargo run -p cc-bench --release --bin exp_tables -- e6`\n\
         for the crossover sweep."
    );
}
