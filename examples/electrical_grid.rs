//! Electrical grid scenario: effective resistances and current flows on a
//! power-grid-like mesh, computed entirely in the congested clique.
//!
//! ```text
//! cargo run --release --example electrical_grid
//! ```
//!
//! The Laplacian paradigm's motivating application: a grid operator wants
//! the current distribution when injecting power at a plant and drawing it
//! at a city. Each junction is a processor knowing only its own lines; the
//! deterministic solver of Theorem 1.1 answers network-analysis queries in
//! `n^{o(1)} log(1/ε)` rounds.

use laplacian_clique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 6×8 mesh grid with a few long-distance transmission lines.
    let rows = 6;
    let cols = 8;
    let mut g = generators::grid(rows, cols);
    // Transmission lines have low resistance = high conductance weight.
    g.add_edge(0, rows * cols - 1, 4.0);
    g.add_edge(cols - 1, (rows - 1) * cols, 4.0);
    let n = g.n();
    println!(
        "grid: {rows}x{cols} mesh + 2 transmission lines, n = {n}, m = {}",
        g.m()
    );

    let mut clique = Clique::new(n);
    // Resistance of a line = 1 / conductance weight.
    let resistances: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .map(|e| (e.u, e.v, 1.0 / e.weight))
        .collect();
    let net = ElectricalNetwork::build(&mut clique, n, &resistances, &SolverOptions::default())?;

    let plant = 0;
    let city = n - 1;
    let r_eff = net.effective_resistance(&mut clique, plant, city, 1e-9)?;
    println!("effective resistance plant -> city: {r_eff:.6}");

    // Unit current injection: where does the current actually go?
    let mut chi = vec![0.0; n];
    chi[plant] = 1.0;
    chi[city] = -1.0;
    let flow = net.flow(&mut clique, &chi, 1e-9)?;
    println!(
        "dissipated energy: {:.6} (equals R_eff for unit current)",
        flow.energy
    );

    // The five most loaded lines.
    let mut loads: Vec<(usize, f64)> = flow
        .flows
        .iter()
        .enumerate()
        .map(|(i, &f)| (i, f.abs()))
        .collect();
    loads.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    println!("\nmost loaded lines:");
    for &(i, load) in loads.iter().take(5) {
        let e = g.edge(i);
        println!("  line ({:>2} - {:>2}): |current| = {load:.4}", e.u, e.v);
    }

    // Verify the parallel/series physics on a corner of the mesh:
    // R_eff between adjacent junctions must be < 1 (parallel paths).
    let r_adjacent = net.effective_resistance(&mut clique, 0, 1, 1e-9)?;
    println!("\nR_eff between adjacent junctions: {r_adjacent:.4} (< 1 thanks to mesh paths)");
    assert!(r_adjacent < 1.0);

    println!("\nround ledger:\n{}", clique.ledger().report());
    Ok(())
}
