//! DIMACS solver: feed standard benchmark instances to the congested
//! clique pipelines.
//!
//! ```text
//! cargo run --release --example dimacs_solver -- path/to/instance.max
//! cargo run --release --example dimacs_solver            # built-in demo
//! ```
//!
//! Reads a DIMACS max-flow file (`p max`), solves it with all three
//! deterministic congested clique algorithms plus the sequential Dinic
//! reference, verifies the min-cut certificate, and prints round counts.

use laplacian_clique::graph::io::{parse_dimacs_max_flow, MaxFlowInstance};
use laplacian_clique::maxflow::min_cut_from_max_flow;
use laplacian_clique::prelude::*;

const DEMO: &str = "\
c demo instance: 8 vertices, layered network
p max 8 11
n 1 s
n 8 t
a 1 2 5
a 1 3 7
a 2 4 4
a 2 5 3
a 3 5 6
a 3 6 2
a 4 7 5
a 5 7 4
a 5 8 3
a 6 8 6
a 7 8 9
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)?,
        None => {
            println!("(no file given — using the built-in demo instance)\n");
            DEMO.to_string()
        }
    };
    let MaxFlowInstance {
        graph,
        source,
        sink,
    } = parse_dimacs_max_flow(&text)?;
    println!(
        "instance: n = {}, m = {}, U = {}, s = {}, t = {}",
        graph.n(),
        graph.m(),
        graph.max_capacity(),
        source + 1,
        sink + 1
    );

    let (reference_flow, want) = dinic(&graph, source, sink);
    println!("reference max flow (Dinic): {want}");
    let cut = min_cut_from_max_flow(&graph, &reference_flow, source, sink);
    assert_eq!(cut.capacity, want);
    println!(
        "min-cut certificate: {} crossing edges, capacity {} (= flow value ✓)\n",
        cut.edges.len(),
        cut.capacity
    );

    let n = graph.n();
    let mut c1 = Clique::new(n.max(2));
    let ipm =
        max_flow_ipm(&mut c1, &graph, source, sink, &IpmOptions::default()).expect("honest clique");
    assert_eq!(ipm.value, want);
    println!(
        "IPM pipeline   : value {:>4} | {:>8} rounds | {} repair paths",
        ipm.value,
        c1.ledger().total_rounds(),
        ipm.stats.repair_paths
    );

    let mut c2 = Clique::new(n.max(2));
    let ff = max_flow_ford_fulkerson(&mut c2, &graph, source, sink, RoundModel::FastMatMul)
        .expect("honest clique");
    assert_eq!(ff.value, want);
    println!(
        "Ford-Fulkerson : value {:>4} | {:>8} rounds | {} augmentations",
        ff.value,
        c2.ledger().total_rounds(),
        ff.stats.repair_paths
    );

    let mut c3 = Clique::new(n.max(2));
    let tr = max_flow_trivial(&mut c3, &graph, source, sink).expect("honest clique");
    assert_eq!(tr.value, want);
    println!(
        "trivial gather : value {:>4} | {:>8} rounds |",
        tr.value,
        c3.ledger().total_rounds()
    );
    Ok(())
}
