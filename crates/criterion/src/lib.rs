//! Dependency-free stand-in for the subset of the `criterion` 0.5 API
//! used by this workspace's benches.
//!
//! The build environment has no access to crates.io, so `cargo bench`
//! runs on this vendored harness: per benchmark it performs a short
//! warm-up, collects `sample_size` wall-time samples, and prints
//! min/median/mean. No statistical regression analysis, no HTML reports —
//! just reproducible numbers on stdout (and the machinery `bench_snapshot`
//! reuses to produce `BENCH_baseline.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value (e.g. an input size).
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample wall times (one sample = one closure call).
    pub(crate) times: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly: a few warm-up calls, then `sample_size` timed
    /// samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples.div_ceil(10).min(3) {
            black_box(f());
        }
        self.times.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            self.times.push(t0.elapsed());
        }
    }
}

/// Summary statistics of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    /// Fastest sample.
    pub min: Duration,
    /// Median sample.
    pub median: Duration,
    /// Mean of all samples.
    pub mean: Duration,
}

fn summarize(times: &mut [Duration]) -> Summary {
    assert!(!times.is_empty(), "no samples collected");
    times.sort_unstable();
    let total: Duration = times.iter().sum();
    Summary {
        min: times[0],
        median: times[times.len() / 2],
        mean: total / times.len() as u32,
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let s = summarize(&mut bencher.times);
        println!(
            "{}/{:<24} min {:>12}   median {:>12}   mean {:>12}",
            self.name,
            id,
            fmt_duration(s.min),
            fmt_duration(s.median),
            fmt_duration(s.mean),
        );
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), &mut |b| f(b, input));
        self
    }

    /// Benchmarks `f` under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run(name, &mut f);
        self
    }

    /// Ends the group (printing happens eagerly; provided for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group runner, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: 7,
            times: Vec::new(),
        };
        b.iter(|| 1 + 1);
        assert_eq!(b.times.len(), 7);
    }

    #[test]
    fn summary_orders_durations() {
        let mut times = vec![
            Duration::from_nanos(30),
            Duration::from_nanos(10),
            Duration::from_nanos(20),
        ];
        let s = summarize(&mut times);
        assert_eq!(s.min, Duration::from_nanos(10));
        assert_eq!(s.median, Duration::from_nanos(20));
        assert_eq!(s.mean, Duration::from_nanos(20));
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(0)));
        g.finish();
    }
}
