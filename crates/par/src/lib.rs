//! # cc-par — deterministic fixed-chunk data parallelism
//!
//! The repository's premise is *deterministic* algorithms with
//! bit-reproducible floating-point summation order, so this crate's
//! parallel primitives are designed around one invariant:
//!
//! > **The work decomposition depends only on the problem size, never on
//! > the thread count.** Each chunk is processed sequentially, chunks
//! > write disjoint outputs (or are reduced in chunk-index order), and
//! > therefore the result is bitwise identical for 1, 2, or 64 threads —
//! > and identical to a plain serial loop over the same chunks.
//!
//! The execution engine is a persistent [`WorkerPool`] (the container has
//! no crates.io access, so `rayon` itself is not available; this is the
//! rayon-shaped layer the workspace codes against): jobs are dispatched
//! over per-worker channels and synchronized with a [`RoundBarrier`]
//! instead of paying a thread spawn + join per call. Threads pick up
//! contiguous *groups* of chunks, which only affects scheduling, not
//! results.
//!
//! Thread count resolution order:
//! 1. a [`with_threads`] override on the current thread (used by the
//!    determinism tests to pin 1/2/8 threads),
//! 2. the `RAYON_NUM_THREADS` environment variable (kept for
//!    compatibility with rayon-based tooling),
//! 3. the `CC_NUM_THREADS` environment variable,
//! 4. [`std::thread::available_parallelism`].

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod pool;

pub use pool::{global_pool, in_worker, watchdog_timeout, Hang, Job, RoundBarrier, WorkerPool};

use std::cell::Cell;
use std::ops::Range;
use std::sync::{Mutex, OnceLock};

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// A contiguous group of `(chunk_index, payload)` tasks handed to one
/// thread, wrapped so exactly one worker can take ownership of it.
type TaskGroup<P> = Mutex<Option<Vec<(usize, P)>>>;

fn env_threads() -> Option<usize> {
    for var in ["RAYON_NUM_THREADS", "CC_NUM_THREADS"] {
        if let Ok(v) = std::env::var(var) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// The configured thread budget (ignoring any [`with_threads`] override).
pub fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    })
}

/// The thread budget in effect for the current thread.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(max_threads)
}

/// Runs `f` with the thread budget pinned to `n` on the current thread.
///
/// Nested calls stack; the previous budget is restored on exit (also on
/// panic). Used by tests proving bitwise equality across thread counts,
/// and by `bench_snapshot` to time the serial path (`n = 1`) without a
/// rebuild.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n > 0, "thread budget must be positive");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// Splits `data` into chunks of `chunk` elements (the last may be short)
/// and calls `f(chunk_index, chunk_slice)` for every chunk, possibly from
/// several threads.
///
/// Chunks are disjoint `&mut` windows, so any write pattern is
/// deterministic; the element at global index `i` lives in chunk
/// `i / chunk` at offset `i % chunk`.
///
/// # Panics
///
/// Panics if `chunk == 0`, or propagates a panic from `f`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let threads = current_threads();
    let nchunks = data.len().div_ceil(chunk).max(1);
    if threads <= 1 || nchunks <= 1 || pool::in_worker() {
        for (idx, sl) in data.chunks_mut(chunk).enumerate() {
            f(idx, sl);
        }
        return;
    }
    let groups = threads.min(nchunks);
    let per_group = nchunks.div_ceil(groups);
    let mut grouped: Vec<Vec<(usize, &mut [T])>> = (0..groups).map(|_| Vec::new()).collect();
    for (idx, sl) in data.chunks_mut(chunk).enumerate() {
        grouped[(idx / per_group).min(groups - 1)].push((idx, sl));
    }
    let mut iter = grouped.into_iter();
    let own = iter.next();
    let rest: Vec<TaskGroup<&mut [T]>> = iter.map(|g| Mutex::new(Some(g))).collect();
    let f = &f;
    let pool = pool::global_pool(rest.len());
    pool.scoped(
        rest.len(),
        |t| {
            let group = rest[t]
                .lock()
                .expect("group slot poisoned")
                .take()
                .expect("group dispatched twice");
            for (idx, sl) in group {
                f(idx, sl);
            }
        },
        || {
            // The dispatching thread works too, on the first group.
            if let Some(group) = own {
                for (idx, sl) in group {
                    f(idx, sl);
                }
            }
        },
    );
}

/// Evaluates `f` on every chunk-range of `0..len` (fixed chunking by
/// `chunk`) and returns the per-chunk results **in chunk order**,
/// regardless of which thread computed what.
///
/// A deterministic reduction is then a plain sequential fold over the
/// returned vector.
///
/// # Panics
///
/// Panics if `chunk == 0`, or propagates a panic from `f`.
pub fn par_map_chunks<R, F>(len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let ranges: Vec<Range<usize>> = (0..len)
        .step_by(chunk)
        .map(|lo| lo..(lo + chunk).min(len))
        .collect();
    let threads = current_threads();
    if threads <= 1 || ranges.len() <= 1 || pool::in_worker() {
        return ranges.into_iter().map(f).collect();
    }
    let groups = threads.min(ranges.len());
    let per_group = ranges.len().div_ceil(groups);
    let mut grouped: Vec<Vec<(usize, Range<usize>)>> = (0..groups).map(|_| Vec::new()).collect();
    for (idx, r) in ranges.into_iter().enumerate() {
        grouped[(idx / per_group).min(groups - 1)].push((idx, r));
    }
    let mut iter = grouped.into_iter();
    let own = iter.next();
    let work: Vec<TaskGroup<Range<usize>>> = iter.map(|g| Mutex::new(Some(g))).collect();
    let done: Vec<Mutex<Vec<(usize, R)>>> =
        (0..work.len()).map(|_| Mutex::new(Vec::new())).collect();
    let mut own_results: Vec<(usize, R)> = Vec::new();
    let f = &f;
    let pool = pool::global_pool(work.len());
    pool.scoped(
        work.len(),
        |t| {
            let group = work[t]
                .lock()
                .expect("group slot poisoned")
                .take()
                .expect("group dispatched twice");
            let results: Vec<(usize, R)> = group.into_iter().map(|(idx, r)| (idx, f(r))).collect();
            *done[t].lock().expect("result slot poisoned") = results;
        },
        || {
            // The dispatching thread works too, on the first group.
            if let Some(group) = own {
                own_results.extend(group.into_iter().map(|(idx, r)| (idx, f(r))));
            }
        },
    );
    let mut tagged: Vec<(usize, R)> = own_results;
    for slot in done {
        tagged.extend(slot.into_inner().expect("result slot poisoned"));
    }
    tagged.sort_by_key(|&(idx, _)| idx);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Maps `f` over `items` (one logical task per item, grouped contiguously
/// across threads) and returns the results in item order.
///
/// Convenience wrapper over [`par_map_chunks`] with chunk size 1, for
/// coarse-grained task fan-out (sparsifier clusters, per-leaf solves).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut nested = par_map_chunks(items.len(), 1, |r| f(&items[r.start]));
    // par_map_chunks already returns one result per chunk == per item.
    debug_assert_eq!(nested.len(), items.len());
    nested.shrink_to_fit();
    nested
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_all_elements_exactly_once() {
        let mut data = vec![0u32; 1000];
        par_chunks_mut(&mut data, 64, |_, sl| {
            for x in sl.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn chunk_indices_match_offsets() {
        let mut data = vec![0usize; 500];
        par_chunks_mut(&mut data, 37, |idx, sl| {
            for (k, x) in sl.iter_mut().enumerate() {
                *x = idx * 37 + k;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i);
        }
    }

    #[test]
    fn map_chunks_results_in_chunk_order() {
        for threads in [1, 2, 3, 8] {
            let sums = with_threads(threads, || {
                par_map_chunks(100, 9, |r| r.clone().sum::<usize>())
            });
            let expected: Vec<usize> = (0..100)
                .step_by(9)
                .map(|lo| (lo..(lo + 9).min(100)).sum())
                .collect();
            assert_eq!(sums, expected, "threads={threads}");
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let work = |threads: usize| {
            with_threads(threads, || {
                let mut data: Vec<f64> = (0..4096).map(|i| i as f64 * 0.1).collect();
                par_chunks_mut(&mut data, 128, |idx, sl| {
                    for x in sl.iter_mut() {
                        *x = x.sin() + idx as f64;
                    }
                });
                data
            })
        };
        let base = work(1);
        for threads in [2, 3, 8] {
            let got = work(threads);
            assert!(
                base.iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads} not bitwise equal"
            );
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(5, || assert_eq!(current_threads(), 5));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..50).collect();
        let out = with_threads(4, || par_map(&items, |&x| x * 2));
        assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn all_threads_actually_run_work() {
        // With 4 threads and 4 chunks each thread gets one chunk; count
        // distinct invocations.
        let calls = AtomicUsize::new(0);
        let mut data = vec![0u8; 4 * 16];
        with_threads(4, || {
            par_chunks_mut(&mut data, 16, |_, _| {
                calls.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn empty_input_is_harmless() {
        let mut data: Vec<u64> = vec![];
        par_chunks_mut(&mut data, 8, |_, _| panic!("no chunks expected"));
        let out: Vec<u64> = par_map_chunks(0, 8, |_| 1u64);
        assert!(out.is_empty());
    }
}
