//! Persistent worker pool and barrier — the execution substrate for
//! round-synchronized transports and for the fork-join kernels.
//!
//! [`crate::par_chunks_mut`] and [`crate::par_map_chunks`] used to spawn a
//! fresh `std::thread::scope` per call; hot loops (a Chebyshev iteration
//! calls into the kernel layer thousands of times) paid a thread spawn +
//! join per call. The [`WorkerPool`] keeps its threads alive across calls:
//! jobs are sent over per-worker channels and completion is synchronized
//! with a [`RoundBarrier`].
//!
//! Two dispatch paths, with different safety stories:
//!
//! * [`WorkerPool::run_owned`] takes `'static` boxed jobs (all captured
//!   state is owned or `Arc`-shared). This path supports a **watchdog
//!   timeout**: if the barrier does not collect all arrivals within the
//!   deadline, the caller gets [`Hang`] back and can panic with
//!   diagnostics instead of deadlocking forever. Leaking a job on the
//!   hang path is safe precisely because the jobs own their state.
//!   `ThreadedComm` rounds run here.
//! * [`WorkerPool::scoped`] dispatches a *borrowed* task closure to the
//!   workers (the rayon-style scoped pattern). The pointer to the closure
//!   is only valid until `scoped` returns, so this path **always blocks
//!   until every dispatched task has completed** — no timeout, and a
//!   drop guard keeps that wait in place even when the frame unwinds
//!   (the caller-supplied `own` closure runs user code and may panic) —
//!   and is the one place in the crate that needs `unsafe` (a lifetime
//!   erasure, see module `erase`). The fork-join kernels run here.
//!
//! Nested dispatch from inside a pool worker would deadlock a fully
//! loaded pool, so both paths detect re-entry ([`in_worker`]) and run the
//! jobs inline on the calling worker instead.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A dispatchable unit of work: owned closure, executed once on a worker.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True when the current thread is a [`WorkerPool`] worker executing a
/// job. Dispatch paths use this to run nested parallelism inline instead
/// of deadlocking on a fully loaded pool.
pub fn in_worker() -> bool {
    IN_WORKER.with(|f| f.get())
}

/// Returned by [`WorkerPool::run_owned`] when the watchdog deadline
/// elapses before all jobs arrive at the round barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hang {
    /// Jobs that had not acknowledged completion at the deadline.
    pub pending: usize,
    /// Jobs dispatched in this round.
    pub total: usize,
    /// How long the caller waited.
    pub waited: Duration,
}

impl std::fmt::Display for Hang {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker pool hang: {}/{} jobs pending after {:?}",
            self.pending, self.total, self.waited
        )
    }
}

/// A reusable generation-counting barrier with balanced-arrival asserts.
///
/// `parties` participants call [`RoundBarrier::arrive`] (workers) or
/// [`RoundBarrier::arrive_and_wait`] (the round driver); when the last
/// participant arrives the generation advances and all waiters wake. The
/// barrier asserts that no generation ever collects more than `parties`
/// arrivals — an unbalanced barrier is a protocol bug, not a timing
/// accident, and must fail loudly.
pub struct RoundBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

#[derive(Debug)]
struct BarrierState {
    arrived: usize,
    generation: u64,
}

impl RoundBarrier {
    /// A barrier for `parties` participants (must be positive).
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties,
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Number of participants per generation.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed generations so far.
    pub fn generation(&self) -> u64 {
        self.state.lock().expect("barrier poisoned").generation
    }

    /// Arrive without waiting (worker side).
    pub fn arrive(&self) {
        let mut st = self.state.lock().expect("barrier poisoned");
        assert!(
            st.arrived < self.parties,
            "unbalanced barrier: more than {} arrivals in generation {}",
            self.parties,
            st.generation
        );
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Arrive and wait for the generation to complete, with an optional
    /// deadline. Returns the number of arrivals still missing on timeout.
    ///
    /// # Errors
    ///
    /// `Err(pending)` if `timeout` elapsed before the generation closed.
    pub fn arrive_and_wait(&self, timeout: Option<Duration>) -> Result<(), usize> {
        let mut st = self.state.lock().expect("barrier poisoned");
        assert!(
            st.arrived < self.parties,
            "unbalanced barrier: more than {} arrivals in generation {}",
            self.parties,
            st.generation
        );
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let target = st.generation + 1;
        let start = Instant::now();
        while st.generation < target {
            match timeout {
                None => st = self.cv.wait(st).expect("barrier poisoned"),
                Some(limit) => {
                    let elapsed = start.elapsed();
                    if elapsed >= limit {
                        return Err(self.parties - st.arrived);
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(st, limit - elapsed)
                        .expect("barrier poisoned");
                    st = guard;
                }
            }
        }
        Ok(())
    }
}

/// Completion latch for the scoped dispatch path: counts tasks
/// successfully handed to workers against tasks that have finished, and
/// lets the dispatching frame block until the two balance.
///
/// Unlike [`RoundBarrier`], the expected count is discovered *during*
/// dispatch — so if dispatch itself panics partway (a `send` to a dead
/// worker), the wait covers exactly the tasks that were sent, never ones
/// that were not. Locking ignores mutex poisoning: the latch is waited on
/// during unwind, where a second panic would abort the process, and its
/// critical sections are bare counter updates that cannot leave the state
/// inconsistent.
struct ScopedLatch {
    state: Mutex<LatchState>,
    cv: Condvar,
}

#[derive(Debug)]
struct LatchState {
    dispatched: usize,
    completed: usize,
}

impl ScopedLatch {
    fn new() -> Self {
        Self {
            state: Mutex::new(LatchState {
                dispatched: 0,
                completed: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records one successfully dispatched task. Called *after* the
    /// channel send, so a failed send is never waited on.
    fn note_dispatched(&self) {
        self.lock().dispatched += 1;
    }

    /// Records one finished task and wakes the waiter (worker side).
    fn complete(&self) {
        self.lock().completed += 1;
        self.cv.notify_all();
    }

    /// Blocks until every dispatched task has completed. A task may
    /// complete before its dispatch is recorded (the worker races the
    /// dispatch loop), so `completed` can transiently exceed
    /// `dispatched`; by the time anyone waits, dispatch has stopped and
    /// the final counts balance.
    fn wait_all(&self) {
        let mut st = self.lock();
        while st.completed < st.dispatched {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Blocks on the latch when dropped — on the normal path and during
/// unwind alike. This is the guarantee that makes the lifetime erasure in
/// [`erase`] sound: no exit from [`WorkerPool::scoped`]'s frame (normal
/// return, a panic in the caller's `own` closure, or a panicking send
/// mid-dispatch) can precede the completion of every dispatched task.
struct ScopedWaitGuard<'a> {
    latch: &'a ScopedLatch,
}

impl Drop for ScopedWaitGuard<'_> {
    fn drop(&mut self) {
        self.latch.wait_all();
    }
}

/// A pool of persistent worker threads consuming [`Job`]s from per-worker
/// channels. See the module docs for the two dispatch paths.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` persistent threads (must be positive).
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "worker pool needs at least one worker");
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cc-par-worker-{idx}"))
                    .spawn(move || {
                        IN_WORKER.with(|f| f.set(true));
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn pool worker"),
            );
        }
        Self { senders, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Runs owned jobs across the workers (round-robin), synchronizing
    /// completion on a [`RoundBarrier`] of `jobs.len() + 1` parties.
    ///
    /// Panics from jobs are caught on the workers (so the pool survives)
    /// and re-raised on the calling thread after the barrier closes, with
    /// the original message preserved. Called from inside a pool worker,
    /// the jobs run inline (nested dispatch would deadlock a loaded pool).
    ///
    /// # Errors
    ///
    /// [`Hang`] if `watchdog` elapses before every job arrives at the
    /// barrier. The round state owned by the jobs is leaked safely (all
    /// `'static`); the caller should treat this as a deadlock and panic
    /// with diagnostics.
    pub fn run_owned(&self, jobs: Vec<Job>, watchdog: Option<Duration>) -> Result<(), Hang> {
        if jobs.is_empty() {
            return Ok(());
        }
        if in_worker() {
            for job in jobs {
                job();
            }
            return Ok(());
        }
        let total = jobs.len();
        let barrier = Arc::new(RoundBarrier::new(total + 1));
        let panics: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let start = Instant::now();
        for (idx, job) in jobs.into_iter().enumerate() {
            let barrier = Arc::clone(&barrier);
            let panics = Arc::clone(&panics);
            let wrapped: Job = Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(job)) {
                    panics
                        .lock()
                        .expect("panic log poisoned")
                        .push(panic_message(payload));
                }
                barrier.arrive();
            });
            self.senders[idx % self.senders.len()]
                .send(wrapped)
                .expect("pool worker hung up");
        }
        if let Err(pending) = barrier.arrive_and_wait(watchdog) {
            return Err(Hang {
                pending,
                total,
                waited: start.elapsed(),
            });
        }
        let messages = panics.lock().expect("panic log poisoned");
        if let Some(first) = messages.first() {
            panic!("pool job panicked: {first}");
        }
        Ok(())
    }

    /// Runs `tasks` invocations of a *borrowed* closure on the workers
    /// while the calling thread runs `own` concurrently, then blocks until
    /// every dispatched task has completed (no timeout — the borrow must
    /// not outlive this call, even on unwind). Task `t` is invoked as
    /// `f(t)`.
    ///
    /// Panics from tasks are re-raised on the calling thread after all
    /// tasks finish. A panic in `own` still waits for all tasks before
    /// propagating. Called from inside a pool worker, everything runs
    /// inline.
    pub fn scoped<F, G>(&self, tasks: usize, f: F, own: G)
    where
        F: Fn(usize) + Sync,
        G: FnOnce(),
    {
        if tasks == 0 || in_worker() {
            for t in 0..tasks {
                f(t);
            }
            own();
            return;
        }
        let latch = ScopedLatch::new();
        let panics: Mutex<Vec<String>> = Mutex::new(Vec::new());
        // Declared after the state it protects, so it drops (and blocks)
        // first on every exit from this frame — including unwinds from
        // `own` (caller code) or from a panicking send mid-dispatch,
        // which would otherwise free `f`/`latch`/`panics` while workers
        // still hold erased pointers into them.
        let guard = ScopedWaitGuard { latch: &latch };
        erase::dispatch_borrowed(self, tasks, &f, &latch, &panics);
        own();
        drop(guard); // normal path: block until every task is done
        let messages = panics.lock().expect("panic log poisoned");
        if let Some(first) = messages.first() {
            panic!("pool task panicked: {first}");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.senders.clear(); // workers see a closed channel and exit
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The single unsafe corner of the crate: lifetime erasure for the scoped
/// dispatch path (the pattern rayon and crossbeam use for scoped tasks).
///
/// # Safety argument
///
/// `dispatch_borrowed` sends raw pointers to stack-owned state (`f`, the
/// latch, the panic log) into `'static` jobs. This is sound because the
/// [`ScopedWaitGuard`] in [`WorkerPool::scoped`] blocks on the latch on
/// *every* exit from that frame — normal return or unwind (a panic in the
/// caller's `own` closure, or a panicking send here) — until every
/// dispatched task has completed, so the pointers cannot outlive the
/// borrow they were erased from. The latch counts only *successful* sends
/// (recorded after each send), so a send that fails and drops its job
/// unrun is never waited on and cannot deadlock the guard. Workers catch
/// task panics, so a panicking task still completes the latch; and the
/// scoped path has no timeout, so the wait cannot be abandoned early.
#[allow(unsafe_code)]
mod erase {
    use super::{Job, Mutex, ScopedLatch, WorkerPool};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    struct ErasedTask {
        f: *const (dyn Fn(usize) + Sync + 'static),
        latch: *const ScopedLatch,
        panics: *const Mutex<Vec<String>>,
    }
    // SAFETY: the pointees are Sync (Fn + Sync, ScopedLatch, Mutex) and
    // outlive every use — see the module safety argument.
    unsafe impl Send for ErasedTask {}

    pub(super) fn dispatch_borrowed(
        pool: &WorkerPool,
        tasks: usize,
        f: &(dyn Fn(usize) + Sync),
        latch: &ScopedLatch,
        panics: &Mutex<Vec<String>>,
    ) {
        // SAFETY: fat-pointer lifetime erasure; validity is guaranteed by
        // the guard's latch wait in `scoped` (module docs above).
        let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        for t in 0..tasks {
            let erased = ErasedTask {
                f: f_static as *const _,
                latch: latch as *const _,
                panics: panics as *const _,
            };
            let job: Job = Box::new(move || {
                let erased = erased;
                // SAFETY: scoped()'s guard blocks until this task calls
                // complete(), so all three pointers are live here.
                let (f, latch, panics) = unsafe { (&*erased.f, &*erased.latch, &*erased.panics) };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(t))) {
                    panics
                        .lock()
                        .expect("panic log poisoned")
                        .push(super::panic_message(payload));
                }
                latch.complete();
            });
            pool.senders[t % pool.senders.len()]
                .send(job)
                .expect("pool worker hung up");
            latch.note_dispatched();
        }
    }
}

static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);
static WATCHDOG: OnceLock<Option<Duration>> = OnceLock::new();

/// The shared process-wide pool, grown on demand: returns a pool with at
/// least `min_workers` workers (and at least [`crate::max_threads`]`- 1`,
/// so the fork-join kernels always find enough lanes). Growing replaces
/// the shared handle with a bigger pool; existing `Arc`s keep the old pool
/// alive until their last round finishes.
pub fn global_pool(min_workers: usize) -> Arc<WorkerPool> {
    let want = min_workers.max(1);
    let mut slot = GLOBAL.lock().expect("global pool poisoned");
    match slot.as_ref() {
        Some(pool) if pool.workers() >= want => Arc::clone(pool),
        _ => {
            let pool = Arc::new(WorkerPool::new(
                want.max(crate::max_threads().saturating_sub(1).max(1)),
            ));
            *slot = Some(Arc::clone(&pool));
            pool
        }
    }
}

/// The hang-watchdog deadline for round-synchronized dispatch, read from
/// `CC_WATCHDOG_SECS`: unset → 120 s, `0` → disabled (wait forever), any
/// other non-negative integer → that many seconds. A value that does not
/// parse as an integer falls back to the 120 s default.
///
/// The variable is read **once per process** and cached; set it in the
/// environment before the first round runs (as the CI jobs do). Changing
/// it later — e.g. per-test inside one binary — has no effect. The
/// threaded test suites rely on CI exporting a low value so a deadlocked
/// barrier fails fast.
pub fn watchdog_timeout() -> Option<Duration> {
    *WATCHDOG.get_or_init(|| match std::env::var("CC_WATCHDOG_SECS") {
        Ok(v) => match v.trim().parse::<u64>() {
            Ok(0) => None,
            Ok(secs) => Some(Duration::from_secs(secs)),
            Err(_) => Some(Duration::from_secs(120)),
        },
        Err(_) => Some(Duration::from_secs(120)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owned_jobs_all_run() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job> = (0..37)
            .map(|_| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job
            })
            .collect();
        pool.run_owned(jobs, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let boom: Vec<Job> = vec![Box::new(|| panic!("intentional test panic"))];
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_owned(boom, Some(Duration::from_secs(30)))
        }));
        assert!(caught.is_err());
        // The pool is still usable after a job panic.
        let ok: Vec<Job> = vec![Box::new(|| {})];
        pool.run_owned(ok, Some(Duration::from_secs(30))).unwrap();
    }

    #[test]
    fn watchdog_reports_hang() {
        let pool = WorkerPool::new(1);
        let jobs: Vec<Job> = vec![Box::new(|| {
            std::thread::sleep(Duration::from_millis(400));
        })];
        let err = pool
            .run_owned(jobs, Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(err.total, 1);
        assert!(err.pending >= 1);
        // Drain: give the sleeper time to finish so Drop joins cleanly.
        std::thread::sleep(Duration::from_millis(500));
    }

    #[test]
    fn scoped_runs_all_tasks_and_own_work() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        let own_ran = AtomicUsize::new(0);
        pool.scoped(
            10,
            |_| {
                hits.fetch_add(1, Ordering::SeqCst);
            },
            || {
                own_ran.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(hits.load(Ordering::SeqCst), 10);
        assert_eq!(own_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn own_panic_still_waits_for_tasks() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(
                8,
                |_| {
                    std::thread::sleep(Duration::from_millis(30));
                    hits.fetch_add(1, Ordering::SeqCst);
                },
                || panic!("own work panicked"),
            );
        }));
        assert!(caught.is_err());
        // The drop guard blocked the unwind until every task completed:
        // all increments through the borrowed counter are already visible.
        assert_eq!(hits.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn scoped_task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scoped(4, |t| assert_ne!(t, 2, "intentional task panic"), || {});
        }));
        assert!(caught.is_err());
        // The pool is still usable after a task panic.
        let ran = AtomicUsize::new(0);
        pool.scoped(
            3,
            |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            },
            || {},
        );
        assert_eq!(ran.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn scoped_sees_borrowed_state() {
        let pool = WorkerPool::new(4);
        let data: Vec<usize> = (0..100).collect();
        let slots: Vec<Mutex<usize>> = (0..10).map(|_| Mutex::new(0)).collect();
        pool.scoped(
            10,
            |t| {
                let sum: usize = data[t * 10..(t + 1) * 10].iter().sum();
                *slots[t].lock().unwrap() = sum;
            },
            || {},
        );
        let total: usize = slots.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, (0..100).sum());
    }

    #[test]
    fn barrier_generations_advance() {
        let barrier = Arc::new(RoundBarrier::new(4));
        for round in 1..=5u64 {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&barrier);
                    std::thread::spawn(move || b.arrive())
                })
                .collect();
            barrier
                .arrive_and_wait(Some(Duration::from_secs(30)))
                .unwrap();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(barrier.generation(), round);
        }
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner = Arc::clone(&pool);
        let ran = Arc::new(AtomicUsize::new(0));
        let ran2 = Arc::clone(&ran);
        let jobs: Vec<Job> = vec![Box::new(move || {
            assert!(in_worker());
            // With one worker busy on this very job, nested dispatch must
            // run inline instead of deadlocking.
            let ran3 = Arc::clone(&ran2);
            inner
                .run_owned(
                    vec![Box::new(move || {
                        ran3.fetch_add(1, Ordering::SeqCst);
                    }) as Job],
                    Some(Duration::from_secs(5)),
                )
                .unwrap();
        })];
        pool.run_owned(jobs, Some(Duration::from_secs(30))).unwrap();
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn global_pool_grows_on_demand() {
        let small = global_pool(1);
        let big = global_pool(small.workers() + 2);
        assert!(big.workers() >= small.workers() + 2);
        let again = global_pool(2);
        assert!(again.workers() >= big.workers());
    }
}
