//! Proves the barrier engine's solve hot path is allocation-free in
//! steady state.
//!
//! A counting global allocator wraps `System`; after one warm-up
//! iteration (which sizes the resistance buffer, the solve workspace
//! and the stats stages), the armed region re-runs the per-iteration
//! path an IPM drives — [`BarrierEngine::resistances_into`],
//! [`BarrierEngine::flow_into`], [`BarrierEngine::norm_roundtrip`] and
//! [`BarrierEngine::record_residual`] — and asserts the allocation
//! counter did not move. `build_network` is excluded by design: each
//! build factorizes a fresh preconditioner, so it allocates per call
//! and is audited by round counts instead.
//!
//! Threads are pinned to 1: the fixed-chunk fan-out machinery itself
//! allocates when it spawns (and results are bitwise identical either
//! way, so the serial path is the right one to audit). A single
//! `#[test]` keeps the counter free of harness noise from concurrent
//! tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cc_core::ElectricalFlow;
use cc_ipm::{BarrierEngine, EngineOptions};
use cc_linalg::par;
use cc_model::Clique;

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn armed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCATIONS.load(Ordering::SeqCst))
}

/// A connected resistor network on `N` vertices: a ring plus chords,
/// with resistances a pure function of the edge index (so re-filling
/// after a "step" reproduces the shape the IPM adapters use).
const N: usize = 16;
const M: usize = N + N / 2;

fn fill(scale: f64) -> impl Fn(usize, &mut [(usize, usize, f64)]) + Sync {
    move |base, slots| {
        for (j, slot) in slots.iter_mut().enumerate() {
            let i = base + j;
            let (a, b) = if i < N {
                (i, (i + 1) % N)
            } else {
                (i - N, i - N + N / 2)
            };
            *slot = (a, b, scale * (1.0 + ((i * 13) % 7) as f64));
        }
    }
}

#[test]
fn steady_state_iteration_performs_zero_heap_allocations() {
    par::with_threads(1, || {
        let mut clique = Clique::new(N);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(N, EngineOptions::default());

        let mut chi = vec![0.0; N];
        chi[0] = 1.0;
        chi[N - 1] = -1.0;
        let mut out = ElectricalFlow::default();

        // Warm-up: size the resistance buffer, capture the sparsifier
        // template, size the solve workspace and the stats stages.
        engine.resistances_into(M, fill(1.0), |i| 1.0 + i as f64);
        let net = engine.build_network(&mut clique, "steady").unwrap();
        engine
            .flow_into(&mut clique, "steady", &net, &chi, &mut out)
            .unwrap();
        engine.norm_roundtrip(&mut clique).unwrap();
        engine.record_residual("steady", 0.5);

        let (min_gap, count) = armed(|| engine.resistances_into(M, fill(1.5), |i| 1.0 + i as f64));
        assert_eq!(min_gap, 1.0);
        assert_eq!(count, 0, "resistances_into allocated in steady state");

        let ((), count) = armed(|| {
            engine
                .flow_into(&mut clique, "steady", &net, &chi, &mut out)
                .unwrap();
        });
        assert!(out.flows.iter().all(|f| f.is_finite()));
        assert_eq!(count, 0, "flow_into allocated in steady state");

        let (r, count) = armed(|| engine.norm_roundtrip(&mut clique));
        r.unwrap();
        assert_eq!(count, 0, "norm_roundtrip allocated in steady state");

        let ((), count) = armed(|| engine.record_residual("steady", 0.25));
        assert_eq!(count, 0, "record_residual allocated in steady state");

        // Sanity: the armed calls were accounted like any others.
        let stage = engine.stats().stage("steady");
        assert_eq!(stage.solves, 2);
        assert!(clique.ledger().total_rounds() > 0);
    });
}
