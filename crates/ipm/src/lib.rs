//! # cc-ipm — the shared barrier engine of the flow IPMs
//!
//! Theorems 1.2 and 1.3 of Forster & de Vos (PODC 2023) are both
//! instances of one pattern: a central-path interior point method that
//! issues hundreds of Theorem 1.1 electrical-flow solves, each preceded
//! by a barrier-resistance update on a *fixed* edge support. This crate
//! extracts that pattern into a [`BarrierEngine`] the problem adapters
//! (`cc-maxflow`, `cc-mcf`) plug into:
//!
//! * **Electrical builds with template reuse** — the first
//!   [`BarrierEngine::build_network`] captures a
//!   [`cc_sparsify::SparsifierTemplate`]; later builds on the same edge
//!   support skip the expander re-decomposition and only recompute the
//!   per-cluster certificates (exactly, deterministically).
//! * **Allocation-free solve paths** — the engine owns one
//!   [`cc_core::SolveWorkspace`] plus reusable resistance/broadcast
//!   buffers, so the steady-state iteration (resistance fan-out,
//!   [`BarrierEngine::flow_into`], norm round-trip) performs zero heap
//!   allocations (`tests/alloc_free.rs`).
//! * **Per-stage statistics** — every build and solve is accounted in an
//!   [`EngineStats`] record (solve counts, Chebyshev iterations, ledger
//!   rounds, residual norms) with a deterministic JSON export for the
//!   bench tables.
//! * **Typed errors** — malformed resistances and solver construction
//!   failures surface as [`IpmError`] instead of library-path panics.
//!
//! The adapters keep what is genuinely problem-specific: the barrier
//! gradient (resistance formula), the step rule, and the
//! rounding/repair hooks. See `DESIGN.md` §8 for the layer diagram.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod stats;

pub use engine::{BarrierEngine, EngineOptions, EDGE_CHUNK};
pub use error::IpmError;
pub use stats::{EngineStats, StageStats};
