//! The central-path driver both flow IPMs plug into.

use std::marker::PhantomData;

use cc_core::{CoreError, ElectricalFlow, ElectricalNetwork, SolveWorkspace, SolverOptions};
use cc_model::Communicator;
use cc_sparsify::{SparsifierTemplate, TemplateCache, TemplateKey};

use crate::{EngineStats, IpmError};

/// Fixed chunk size of the engine's per-edge fan-outs. Decomposition
/// depends only on the edge count, never the thread count, so results
/// are bitwise identical at any parallelism level.
pub const EDGE_CHUNK: usize = 2048;

/// Solver-facing options of a [`BarrierEngine`] (the problem adapters
/// carry the step rule and budgets themselves).
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Accuracy of every Laplacian solve (`Ω(1/poly m)` per the paper).
    pub solver_eps: f64,
    /// Laplacian solver (sparsifier) options.
    pub solver: SolverOptions,
    /// Reuse one expander decomposition across the engine's electrical
    /// builds (fixed edge support; per-cluster certificates recomputed
    /// exactly per build — see [`cc_sparsify::SparsifierTemplate`]).
    pub reuse_sparsifier: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            solver_eps: 1e-10,
            solver: SolverOptions {
                // The IPMs never read the exact reference solution; skip
                // its O(n³) factorization per electrical solve.
                skip_reference: true,
                ..SolverOptions::default()
            },
            reuse_sparsifier: true,
        }
    }
}

/// A reusable central-path driver: owns the electrical-network build
/// (with sparsifier-template capture/reuse), the solve workspace, and
/// the per-stage statistics. One engine serves one fixed edge support;
/// phases on a different support (e.g. the cleanup pass on the original
/// graph) use their own engine.
///
/// The adapter supplies the barrier gradient as a fill closure to
/// [`BarrierEngine::resistances_into`], then builds and solves through
/// the engine. In steady state (after the first iteration has sized
/// every buffer) the resistance fan-out, [`BarrierEngine::flow_into`]
/// and [`BarrierEngine::norm_roundtrip`] perform no heap allocation.
#[derive(Debug, Clone)]
pub struct BarrierEngine<C: Communicator> {
    n: usize,
    options: EngineOptions,
    template: Option<SparsifierTemplate>,
    cache: Option<TemplateCache>,
    ws: SolveWorkspace,
    resist: Vec<(usize, usize, f64)>,
    zeros: Vec<u64>,
    echo: Vec<u64>,
    stats: EngineStats,
    _comm: PhantomData<fn(&mut C)>,
}

impl<C: Communicator> BarrierEngine<C> {
    /// Creates an engine for networks on `n` vertices.
    pub fn new(n: usize, options: EngineOptions) -> Self {
        Self {
            n,
            options,
            template: None,
            cache: None,
            ws: SolveWorkspace::new(),
            resist: Vec::new(),
            zeros: Vec::new(),
            echo: Vec::new(),
            stats: EngineStats::default(),
            _comm: PhantomData,
        }
    }

    /// Number of vertices the engine builds networks on.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The engine's options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Consumes the engine, returning its statistics.
    pub fn into_stats(self) -> EngineStats {
        self.stats
    }

    /// True once a sparsifier template has been captured.
    pub fn has_template(&self) -> bool {
        self.template.is_some()
    }

    /// Attaches a shared [`TemplateCache`] for **cross-instance**
    /// template reuse: before its first build the engine consults the
    /// cache (keyed by the resistance buffer's edge support), and any
    /// template it captures itself is published back. Within-run reuse
    /// ([`EngineOptions::reuse_sparsifier`]) is unchanged; the cache
    /// only replaces the *first* build of a run when another run on the
    /// same support already paid for the decomposition. Hits are counted
    /// per stage in [`crate::StageStats::template_cache_hits`].
    pub fn set_template_cache(&mut self, cache: TemplateCache) {
        self.cache = Some(cache);
    }

    /// The attached cross-instance cache, if any.
    pub fn template_cache(&self) -> Option<&TemplateCache> {
        self.cache.as_ref()
    }

    /// Recomputes the engine's resistance buffer from the adapter's
    /// barrier gradient and returns the minimum barrier gap.
    ///
    /// `fill(base, slots)` writes `(u, v, r)` for edges
    /// `base..base + slots.len()`; chunks are [`EDGE_CHUNK`]-sized and
    /// fanned out across cores (results are bitwise independent of the
    /// thread count because every slot is a pure function of its index).
    /// `gap(i)` returns edge `i`'s unclamped barrier gap; the fold uses
    /// the exact `min` in index order, matching a serial loop bitwise.
    ///
    /// The buffer is reused across calls — steady state allocates
    /// nothing.
    pub fn resistances_into<F, G>(&mut self, m: usize, fill: F, gap: G) -> f64
    where
        F: Fn(usize, &mut [(usize, usize, f64)]) + Sync,
        G: Fn(usize) -> f64,
    {
        self.resist.clear();
        self.resist.resize(m, (0, 0, 0.0));
        cc_linalg::par::par_chunks_mut(&mut self.resist, EDGE_CHUNK, |ci, slots| {
            fill(ci * EDGE_CHUNK, slots);
        });
        let mut min_gap = f64::INFINITY;
        for i in 0..m {
            min_gap = min_gap.min(gap(i));
        }
        min_gap
    }

    /// The resistance buffer the last [`BarrierEngine::resistances_into`]
    /// call produced.
    pub fn resistances(&self) -> &[(usize, usize, f64)] {
        &self.resist
    }

    /// Builds an electrical network from the current resistance buffer,
    /// capturing a sparsifier template on the first build and
    /// instantiating it on later ones (when
    /// [`EngineOptions::reuse_sparsifier`] is set). Rounds and build
    /// counts are attributed to `stage`.
    ///
    /// # Errors
    ///
    /// [`IpmError::InvalidResistance`] / [`IpmError::EndpointOutOfRange`]
    /// if the barrier gradient produced a malformed edge (reported
    /// instead of panicking in the library path), and [`IpmError::Core`]
    /// if solver construction fails.
    pub fn build_network(
        &mut self,
        clique: &mut C,
        stage: &'static str,
    ) -> Result<ElectricalNetwork, IpmError> {
        for (index, &(a, b, r)) in self.resist.iter().enumerate() {
            if !(r.is_finite() && r > 0.0) {
                return Err(IpmError::InvalidResistance { index, value: r });
            }
            let worst = a.max(b);
            if worst >= self.n {
                return Err(IpmError::EndpointOutOfRange {
                    index,
                    endpoint: worst,
                    n: self.n,
                });
            }
        }
        let before = clique.ledger().total_rounds();
        let (net, reused, cache_hit) = if !self.options.reuse_sparsifier {
            let net = ElectricalNetwork::build(clique, self.n, &self.resist, &self.options.solver)?;
            (net, false, false)
        } else if let Some(template) = &self.template {
            let net = ElectricalNetwork::build_from_template(
                clique,
                self.n,
                &self.resist,
                template,
                &self.options.solver,
            )?;
            (net, true, false)
        } else if let Some(template) = self
            .cache
            .as_ref()
            .and_then(|c| c.get(&TemplateKey::for_support(self.n, &self.resist)))
        {
            // Cross-instance hit: another run on the same support already
            // paid for the decomposition. Instantiation recertifies the
            // per-cluster bounds for the current weights, so correctness
            // never depends on what the cache holds.
            let net = ElectricalNetwork::build_from_template(
                clique,
                self.n,
                &self.resist,
                &template,
                &self.options.solver,
            )?;
            self.template = Some(template);
            (net, true, true)
        } else {
            let (net, template) = ElectricalNetwork::build_capturing(
                clique,
                self.n,
                &self.resist,
                &self.options.solver,
            )?;
            if let Some(cache) = &self.cache {
                cache.insert(
                    TemplateKey::for_support(self.n, &self.resist),
                    template.clone(),
                );
            }
            self.template = Some(template);
            (net, false, false)
        };
        let stage = self.stats.stage_mut(stage);
        if reused {
            stage.template_reuses += 1;
        } else {
            stage.builds += 1;
        }
        if cache_hit {
            stage.template_cache_hits += 1;
        }
        stage.rounds += clique.ledger().total_rounds() - before;
        Ok(net)
    }

    /// Computes the electrical flow for demand `chi` into the reused
    /// buffer `out`, through the engine's [`SolveWorkspace`] — the
    /// allocation-free twin of [`ElectricalNetwork::flow`], with rounds,
    /// solve count and Chebyshev iterations attributed to `stage`.
    ///
    /// # Errors
    ///
    /// [`IpmError::Core`] if the communication substrate rejects a solve
    /// iteration's broadcast. Rounds spent before the failure are still
    /// attributed to `stage`.
    ///
    /// # Panics
    ///
    /// Panics if `chi.len() != net.n()` or the engine's `solver_eps` is
    /// not positive (same contract as [`ElectricalNetwork::flow`]).
    pub fn flow_into(
        &mut self,
        clique: &mut C,
        stage: &'static str,
        net: &ElectricalNetwork,
        chi: &[f64],
        out: &mut ElectricalFlow,
    ) -> Result<(), IpmError> {
        let before = clique.ledger().total_rounds();
        let result = net.flow_into(clique, chi, self.options.solver_eps, out, &mut self.ws);
        let stage = self.stats.stage_mut(stage);
        stage.solves += 1;
        stage.chebyshev_iterations += out.iterations;
        stage.rounds += clique.ledger().total_rounds() - before;
        result?;
        Ok(())
    }

    /// One broadcast round aggregating the step's scalar norms — the
    /// communication the congestion accounting charges for computing
    /// `‖ρ‖` globally. Buffer-reusing twin of
    /// `clique.broadcast_all(&vec![0; n])`: identical round cost and
    /// tracing, zero steady-state allocations.
    ///
    /// # Errors
    ///
    /// [`IpmError::Core`] if the communication substrate rejects the
    /// broadcast.
    pub fn norm_roundtrip(&mut self, clique: &mut C) -> Result<(), IpmError> {
        self.zeros.clear();
        self.zeros.resize(clique.n(), 0);
        clique
            .broadcast_all_into(&self.zeros, &mut self.echo)
            .map_err(CoreError::from)?;
        Ok(())
    }

    /// Records the residual norm the adapter observed for `stage`
    /// (exported through [`EngineStats`]).
    pub fn record_residual(&mut self, stage: &'static str, norm: f64) {
        self.stats.stage_mut(stage).last_residual_norm = norm;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::Clique;

    /// A small connected resistor network on 6 vertices.
    fn ring_fill(base: usize, slots: &mut [(usize, usize, f64)]) {
        for (j, slot) in slots.iter_mut().enumerate() {
            let i = base + j;
            *slot = (i % 6, (i + 1) % 6, 1.0 + i as f64);
        }
    }

    #[test]
    fn template_captured_once_then_reused() {
        let mut clique = Clique::new(6);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        engine.resistances_into(6, ring_fill, |_| f64::INFINITY);
        assert!(!engine.has_template());
        let first = engine.build_network(&mut clique, "test").unwrap();
        assert!(engine.has_template());
        let second = engine.build_network(&mut clique, "test").unwrap();
        assert_eq!(first.resistances(), second.resistances());
        let stage = engine.stats().stage("test");
        assert_eq!(stage.builds, 1);
        assert_eq!(stage.template_reuses, 1);
        assert!(stage.rounds > 0);
    }

    #[test]
    fn shared_cache_skips_second_engines_build() {
        let cache = TemplateCache::new();
        // First engine: misses the cache, builds, publishes.
        let mut clique = Clique::new(6);
        let mut first: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        first.set_template_cache(cache.clone());
        first.resistances_into(6, ring_fill, |_| f64::INFINITY);
        let net_a = first.build_network(&mut clique, "test").unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        let s = first.stats().stage("test");
        assert_eq!(
            (s.builds, s.template_reuses, s.template_cache_hits),
            (1, 0, 0)
        );

        // Second engine, same support (reweighted): instantiates from the
        // cache instead of re-decomposing.
        let mut second: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        second.set_template_cache(cache.clone());
        second.resistances_into(
            6,
            |base, slots| {
                ring_fill(base, slots);
                for slot in slots.iter_mut() {
                    slot.2 *= 3.0;
                }
            },
            |_| f64::INFINITY,
        );
        let net_b = second.build_network(&mut clique, "test").unwrap();
        assert!(second.has_template());
        assert_eq!(cache.hits(), 1);
        let s = second.stats().stage("test");
        assert_eq!(
            (s.builds, s.template_reuses, s.template_cache_hits),
            (0, 1, 1)
        );
        assert_eq!(net_a.n(), net_b.n());

        // Subsequent builds reuse the now-local template: no more lookups.
        second.build_network(&mut clique, "test").unwrap();
        assert_eq!(cache.hits() + cache.misses(), 2);
        let s = second.stats().stage("test");
        assert_eq!((s.template_reuses, s.template_cache_hits), (2, 1));
    }

    #[test]
    fn reuse_disabled_always_rebuilds() {
        let mut clique = Clique::new(6);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(
            6,
            EngineOptions {
                reuse_sparsifier: false,
                ..EngineOptions::default()
            },
        );
        engine.resistances_into(6, ring_fill, |_| f64::INFINITY);
        engine.build_network(&mut clique, "test").unwrap();
        engine.build_network(&mut clique, "test").unwrap();
        assert!(!engine.has_template());
        assert_eq!(engine.stats().stage("test").builds, 2);
    }

    #[test]
    fn malformed_resistances_are_typed_errors() {
        let mut clique = Clique::new(6);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        engine.resistances_into(
            6,
            |base, slots| {
                ring_fill(base, slots);
                if base == 0 {
                    slots[2].2 = f64::NAN;
                }
            },
            |_| f64::INFINITY,
        );
        match engine.build_network(&mut clique, "test") {
            Err(IpmError::InvalidResistance { index: 2, .. }) => {}
            other => panic!("expected InvalidResistance, got {other:?}"),
        }
        engine.resistances_into(
            6,
            |base, slots| {
                ring_fill(base, slots);
                if base == 0 {
                    slots[4].0 = 99;
                }
            },
            |_| f64::INFINITY,
        );
        match engine.build_network(&mut clique, "test") {
            Err(IpmError::EndpointOutOfRange {
                index: 4,
                endpoint: 99,
                n: 6,
            }) => {}
            other => panic!("expected EndpointOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn min_gap_fold_matches_serial_min() {
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        let gaps: Vec<f64> = (0..5000).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        let got = engine.resistances_into(
            gaps.len(),
            |base, slots| {
                for (j, slot) in slots.iter_mut().enumerate() {
                    let i = base + j;
                    *slot = (i % 6, (i + 1) % 6, 1.0);
                }
            },
            |i| gaps[i],
        );
        let want = gaps.iter().fold(f64::INFINITY, |m, &g| m.min(g));
        assert_eq!(got.to_bits(), want.to_bits());
    }

    #[test]
    fn flow_into_accounts_rounds_and_iterations() {
        let mut clique = Clique::new(6);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        engine.resistances_into(6, ring_fill, |_| f64::INFINITY);
        let net = engine.build_network(&mut clique, "build").unwrap();
        let mut chi = vec![0.0; 6];
        chi[0] = 1.0;
        chi[3] = -1.0;
        let mut out = ElectricalFlow::default();
        let before = clique.ledger().total_rounds();
        engine
            .flow_into(&mut clique, "solve", &net, &chi, &mut out)
            .unwrap();
        let expected = clique.ledger().total_rounds() - before;
        let reference = net
            .flow(&mut clique, &chi, engine.options().solver_eps)
            .unwrap();
        assert_eq!(out.flows, reference.flows);
        assert_eq!(out.potentials, reference.potentials);
        let stage = engine.stats().stage("solve");
        assert_eq!(stage.solves, 1);
        assert_eq!(stage.chebyshev_iterations, out.iterations);
        assert_eq!(stage.rounds, expected);
        engine.record_residual("solve", 0.125);
        assert_eq!(engine.stats().stage("solve").last_residual_norm, 0.125);
    }

    #[test]
    fn norm_roundtrip_costs_one_round() {
        let mut clique = Clique::new(6);
        let mut engine: BarrierEngine<Clique> = BarrierEngine::new(6, EngineOptions::default());
        let before = clique.ledger().total_rounds();
        engine.norm_roundtrip(&mut clique).unwrap();
        assert_eq!(clique.ledger().total_rounds() - before, 1);
    }
}
