use std::error::Error;
use std::fmt;

use cc_core::CoreError;

/// Typed failures of the barrier engine's build/solve paths.
///
/// The interior point methods treat every variant as "hand the instance
/// over to the exact repair phase" — the engine never panics on
/// numerically degenerate barrier states.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IpmError {
    /// A resistance handed to [`crate::BarrierEngine::build_network`] was
    /// not finite and strictly positive (the barrier gradient produced a
    /// NaN or the clamp was bypassed).
    InvalidResistance {
        /// Index of the offending edge in the resistance buffer.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An edge endpoint is out of range for the engine's vertex count.
    EndpointOutOfRange {
        /// Index of the offending edge in the resistance buffer.
        index: usize,
        /// The offending endpoint.
        endpoint: usize,
        /// Number of vertices the engine was built for.
        n: usize,
    },
    /// Laplacian solver construction failed (degenerate sparsifier
    /// factorization, infeasible demand, ...).
    Core(CoreError),
}

impl fmt::Display for IpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpmError::InvalidResistance { index, value } => {
                write!(f, "resistance {index} is not finite positive: {value}")
            }
            IpmError::EndpointOutOfRange { index, endpoint, n } => {
                write!(f, "edge {index} endpoint {endpoint} out of range for n={n}")
            }
            IpmError::Core(e) => write!(f, "electrical build failed: {e}"),
        }
    }
}

impl Error for IpmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IpmError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for IpmError {
    fn from(e: CoreError) -> Self {
        IpmError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = IpmError::InvalidResistance {
            index: 3,
            value: f64::NAN,
        };
        assert!(e.to_string().contains('3'));
        let e = IpmError::from(CoreError::RhsLength {
            got: 1,
            expected: 2,
        });
        assert!(Error::source(&e).is_some());
    }
}
