use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accounting of one engine stage (e.g. `"augmentation"`, `"fixing"`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageStats {
    /// Electrical solves issued ([`crate::BarrierEngine::flow_into`]).
    pub solves: usize,
    /// Preconditioned Chebyshev iterations (= broadcast rounds) those
    /// solves spent in total.
    pub chebyshev_iterations: usize,
    /// Full sparsifier constructions (no template available, or reuse
    /// disabled).
    pub builds: usize,
    /// Builds that instantiated a captured template instead of
    /// re-decomposing.
    pub template_reuses: usize,
    /// Template reuses whose template came from a shared cross-instance
    /// [`cc_sparsify::TemplateCache`] rather than this engine's own
    /// first build (a subset of [`StageStats::template_reuses`]).
    pub template_cache_hits: usize,
    /// Ledger rounds the stage's builds and solves cost.
    pub rounds: u64,
    /// Most recent residual norm the adapter reported for this stage
    /// (0.0 until [`crate::BarrierEngine::record_residual`] is called).
    pub last_residual_norm: f64,
}

/// Unified per-stage solver statistics of a [`crate::BarrierEngine`] run.
///
/// Stages are keyed by the `&'static str` names the adapter passes to the
/// engine; iteration and the JSON export are in lexicographic key order,
/// so the record is deterministic for the bench tables and
/// `TracingComm`-style diffing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineStats {
    stages: BTreeMap<String, StageStats>,
}

impl EngineStats {
    /// Statistics of one stage (default-zero if the stage never ran).
    pub fn stage(&self, name: &str) -> StageStats {
        self.stages.get(name).copied().unwrap_or_default()
    }

    /// All stages in lexicographic order.
    pub fn stages(&self) -> impl Iterator<Item = (&str, &StageStats)> {
        self.stages.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Electrical solves across all stages.
    pub fn total_solves(&self) -> usize {
        self.stages.values().map(|s| s.solves).sum()
    }

    /// Chebyshev iterations across all stages.
    pub fn total_chebyshev_iterations(&self) -> usize {
        self.stages.values().map(|s| s.chebyshev_iterations).sum()
    }

    /// Ledger rounds attributed to builds and solves across all stages.
    pub fn total_rounds(&self) -> u64 {
        self.stages.values().map(|s| s.rounds).sum()
    }

    /// Sparsifier template reuses across all stages.
    pub fn total_template_reuses(&self) -> usize {
        self.stages.values().map(|s| s.template_reuses).sum()
    }

    /// Cross-instance template-cache hits across all stages.
    pub fn total_template_cache_hits(&self) -> usize {
        self.stages.values().map(|s| s.template_cache_hits).sum()
    }

    /// Folds another run's counters into this record (used to combine the
    /// IPM core's engine with the cleanup phase's).
    pub fn merge(&mut self, other: &EngineStats) {
        for (name, theirs) in &other.stages {
            if !self.stages.contains_key(name.as_str()) {
                self.stages.insert(name.clone(), StageStats::default());
            }
            let ours = self
                .stages
                .get_mut(name.as_str())
                .expect("stage just ensured");
            ours.solves += theirs.solves;
            ours.chebyshev_iterations += theirs.chebyshev_iterations;
            ours.builds += theirs.builds;
            ours.template_reuses += theirs.template_reuses;
            ours.template_cache_hits += theirs.template_cache_hits;
            ours.rounds += theirs.rounds;
            if theirs.solves > 0 || theirs.last_residual_norm != 0.0 {
                ours.last_residual_norm = theirs.last_residual_norm;
            }
        }
    }

    /// Deterministic JSON export (stages in lexicographic order, fixed
    /// field order) for bench snapshots and experiment tables.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"solves\":{},\"chebyshev_iterations\":{},\"builds\":{},\
                 \"template_reuses\":{},\"template_cache_hits\":{},\"rounds\":{},\
                 \"last_residual_norm\":{:?}}}",
                s.solves,
                s.chebyshev_iterations,
                s.builds,
                s.template_reuses,
                s.template_cache_hits,
                s.rounds,
                s.last_residual_norm,
            );
        }
        out.push('}');
        out
    }

    /// Mutable per-stage slot; allocates the key only on first touch so
    /// the steady-state path stays allocation-free.
    pub(crate) fn stage_mut(&mut self, name: &'static str) -> &mut StageStats {
        if !self.stages.contains_key(name) {
            self.stages.insert(name.to_string(), StageStats::default());
        }
        self.stages.get_mut(name).expect("stage just ensured")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters() {
        let mut a = EngineStats::default();
        a.stage_mut("augmentation").solves = 2;
        a.stage_mut("augmentation").rounds = 10;
        let mut b = EngineStats::default();
        b.stage_mut("augmentation").solves = 3;
        b.stage_mut("cleanup").builds = 1;
        a.merge(&b);
        assert_eq!(a.stage("augmentation").solves, 5);
        assert_eq!(a.stage("augmentation").rounds, 10);
        assert_eq!(a.stage("cleanup").builds, 1);
        assert_eq!(a.stage("never"), StageStats::default());
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut s = EngineStats::default();
        s.stage_mut("fixing").solves = 1;
        s.stage_mut("augmentation").solves = 2;
        let j = s.to_json();
        assert_eq!(j, s.clone().to_json());
        let a = j.find("augmentation").unwrap();
        let f = j.find("fixing").unwrap();
        assert!(a < f, "lexicographic stage order: {j}");
        assert!(j.contains("\"solves\":2"));
    }

    #[test]
    fn totals_aggregate_stages() {
        let mut s = EngineStats::default();
        s.stage_mut("a").solves = 2;
        s.stage_mut("a").chebyshev_iterations = 40;
        s.stage_mut("b").solves = 1;
        s.stage_mut("b").rounds = 7;
        assert_eq!(s.total_solves(), 3);
        assert_eq!(s.total_chebyshev_iterations(), 40);
        assert_eq!(s.total_rounds(), 7);
    }
}
