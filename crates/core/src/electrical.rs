//! Electrical flows on top of the Laplacian solver.
//!
//! Both interior point methods (Appendix B and C of the paper) reduce each
//! iteration to an *electrical flow* computation: given per-edge
//! resistances `r_e` and a demand vector `χ`, find vertex potentials
//! `φ = L† χ` for the Laplacian of conductances `1/r_e`, and route
//! `f_e = (φ_u − φ_v)/r_e` on every edge. This module packages that
//! reduction over [`crate::LaplacianSolver`].

use cc_graph::Graph;
use cc_model::Communicator;
use cc_sparsify::{build_sparsifier_with_template, SparsifierTemplate};

use crate::{CoreError, LaplacianSolver, SolveWorkspace, SolverOptions};

/// An undirected network with positive edge resistances, ready to answer
/// electrical flow queries in the congested clique.
#[derive(Debug, Clone)]
pub struct ElectricalNetwork {
    edges: Vec<(usize, usize, f64)>,
    resistances: Vec<f64>,
    solver: LaplacianSolver,
}

/// Result of an electrical flow computation.
///
/// Implements `Default` (empty buffers) so one instance can be reused as
/// the output slot of many [`ElectricalNetwork::flow_into`] calls.
#[derive(Debug, Clone, Default)]
pub struct ElectricalFlow {
    /// Vertex potentials `φ ≈ L†χ` (zero mean per component).
    pub potentials: Vec<f64>,
    /// Edge flows `f_e = (φ_u − φ_v)/r_e`, oriented `u → v` per the edge
    /// list passed to [`ElectricalNetwork::build`].
    pub flows: Vec<f64>,
    /// Energy `Σ_e r_e f_e²` of the computed flow.
    pub energy: f64,
    /// Chebyshev iterations (= broadcast rounds) the solve used.
    pub iterations: usize,
}

impl ElectricalNetwork {
    /// Builds the network from `(u, v, resistance)` triples on `n`
    /// vertices, constructing the deterministic sparsifier of the
    /// conductance graph in `clique`.
    ///
    /// # Errors
    ///
    /// Propagates solver construction failures.
    ///
    /// # Panics
    ///
    /// Panics if a resistance is not strictly positive or an endpoint is
    /// out of range.
    pub fn build<C: Communicator>(
        clique: &mut C,
        n: usize,
        edges: &[(usize, usize, f64)],
        options: &SolverOptions,
    ) -> Result<Self, CoreError> {
        let g = conductance_graph(n, edges);
        let solver = LaplacianSolver::build(clique, &g, options)?;
        Ok(Self {
            edges: edges.iter().map(|&(u, v, _)| (u, v, 0.0)).collect(),
            resistances: edges.iter().map(|&(_, _, r)| r).collect(),
            solver,
        })
    }

    /// Like [`ElectricalNetwork::build`], additionally returning a
    /// [`SparsifierTemplate`] so later networks on the *same edge support*
    /// (the interior point methods change only resistances) can skip the
    /// expander re-decomposition via
    /// [`ElectricalNetwork::build_from_template`].
    ///
    /// # Errors
    ///
    /// Propagates solver construction failures.
    ///
    /// # Panics
    ///
    /// Same conditions as [`ElectricalNetwork::build`].
    pub fn build_capturing<C: Communicator>(
        clique: &mut C,
        n: usize,
        edges: &[(usize, usize, f64)],
        options: &SolverOptions,
    ) -> Result<(Self, SparsifierTemplate), CoreError> {
        let g = conductance_graph(n, edges);
        let (sparsifier, template) = build_sparsifier_with_template(clique, &g, &options.sparsify)?;
        let solver = LaplacianSolver::with_sparsifier(&g, sparsifier, options)?;
        Ok((
            Self {
                edges: edges.iter().map(|&(u, v, _)| (u, v, 0.0)).collect(),
                resistances: edges.iter().map(|&(_, _, r)| r).collect(),
                solver,
            },
            template,
        ))
    }

    /// Builds the network by instantiating a previously captured
    /// [`SparsifierTemplate`] for the new resistances — no expander
    /// re-decomposition, per-cluster certificates recomputed exactly.
    ///
    /// # Errors
    ///
    /// Propagates solver construction failures.
    ///
    /// # Panics
    ///
    /// Panics if the template's edge support differs from `edges`.
    pub fn build_from_template<C: Communicator>(
        clique: &mut C,
        n: usize,
        edges: &[(usize, usize, f64)],
        template: &SparsifierTemplate,
        options: &SolverOptions,
    ) -> Result<Self, CoreError> {
        let g = conductance_graph(n, edges);
        let sparsifier = template.instantiate(clique, &g)?;
        let solver = LaplacianSolver::with_sparsifier(&g, sparsifier, options)?;
        Ok(Self {
            edges: edges.iter().map(|&(u, v, _)| (u, v, 0.0)).collect(),
            resistances: edges.iter().map(|&(_, _, r)| r).collect(),
            solver,
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.solver.n()
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The per-edge resistances.
    pub fn resistances(&self) -> &[f64] {
        &self.resistances
    }

    /// Computes the electrical flow for demand `chi` to solver accuracy
    /// `eps` (relative `L`-norm error, Theorem 1.1), charging rounds to
    /// `clique`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects a solve
    /// iteration's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `chi.len() != n` or `eps ≤ 0`.
    pub fn flow<C: Communicator>(
        &self,
        clique: &mut C,
        chi: &[f64],
        eps: f64,
    ) -> Result<ElectricalFlow, CoreError> {
        let mut out = ElectricalFlow::default();
        let mut ws = SolveWorkspace::new();
        self.flow_into(clique, chi, eps, &mut out, &mut ws)?;
        Ok(out)
    }

    /// [`ElectricalNetwork::flow`] into caller-owned buffers: identical
    /// round accounting and bitwise-identical result, but `out` and `ws`
    /// are reused, so the steady-state call performs no heap allocation —
    /// the per-iteration path of the interior point methods (`cc-ipm`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects a solve
    /// iteration's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `chi.len() != n` or `eps ≤ 0`.
    pub fn flow_into<C: Communicator>(
        &self,
        clique: &mut C,
        chi: &[f64],
        eps: f64,
        out: &mut ElectricalFlow,
        ws: &mut SolveWorkspace,
    ) -> Result<(), CoreError> {
        out.iterations = self
            .solver
            .solve_into(clique, chi, eps, &mut out.potentials, ws)?;
        out.flows.clear();
        out.flows.reserve(self.edges.len());
        let mut energy = 0.0;
        for (&(u, v, _), &r) in self.edges.iter().zip(&self.resistances) {
            let f = (out.potentials[u] - out.potentials[v]) / r;
            energy += r * f * f;
            out.flows.push(f);
        }
        out.energy = energy;
        Ok(())
    }

    /// Approximate effective resistance between `s` and `t`:
    /// `R_eff = φ_s − φ_t` for the unit `s`-`t` electrical flow.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects a solve
    /// iteration's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either vertex is out of range.
    pub fn effective_resistance<C: Communicator>(
        &self,
        clique: &mut C,
        s: usize,
        t: usize,
        eps: f64,
    ) -> Result<f64, CoreError> {
        assert!(s != t && s < self.n() && t < self.n(), "bad terminals");
        let mut chi = vec![0.0; self.n()];
        chi[s] = 1.0;
        chi[t] = -1.0;
        let flow = self.flow(clique, &chi, eps)?;
        Ok(flow.potentials[s] - flow.potentials[t])
    }
}

/// Conductance graph of a resistor list (weight = 1/r).
fn conductance_graph(n: usize, edges: &[(usize, usize, f64)]) -> Graph {
    let mut g = Graph::new(n);
    for &(u, v, r) in edges {
        assert!(r > 0.0, "resistances must be positive, got {r}");
        assert!(r.is_finite(), "resistances must be finite");
        g.add_edge(u, v, 1.0 / r);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::Clique;

    fn unit_resistances(edges: &[(usize, usize)]) -> Vec<(usize, usize, f64)> {
        edges.iter().map(|&(u, v)| (u, v, 1.0)).collect()
    }

    #[test]
    fn series_resistors_add() {
        // 0 -1Ω- 1 -2Ω- 2: R_eff(0,2) = 3.
        let mut clique = Clique::new(3);
        let net = ElectricalNetwork::build(
            &mut clique,
            3,
            &[(0, 1, 1.0), (1, 2, 2.0)],
            &SolverOptions::default(),
        )
        .unwrap();
        let r = net.effective_resistance(&mut clique, 0, 2, 1e-10).unwrap();
        assert!((r - 3.0).abs() < 1e-8, "got {r}");
    }

    #[test]
    fn parallel_resistors_combine() {
        // Two 1Ω edges in parallel: R_eff = 1/2.
        let mut clique = Clique::new(2);
        let net = ElectricalNetwork::build(
            &mut clique,
            2,
            &[(0, 1, 1.0), (0, 1, 1.0)],
            &SolverOptions::default(),
        )
        .unwrap();
        let r = net.effective_resistance(&mut clique, 0, 1, 1e-10).unwrap();
        assert!((r - 0.5).abs() < 1e-8, "got {r}");
    }

    #[test]
    fn flow_conservation_holds() {
        let edges = unit_resistances(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let mut clique = Clique::new(4);
        let net =
            ElectricalNetwork::build(&mut clique, 4, &edges, &SolverOptions::default()).unwrap();
        let mut chi = vec![0.0; 4];
        chi[0] = 2.0;
        chi[3] = -2.0;
        let flow = net.flow(&mut clique, &chi, 1e-10).unwrap();
        // Net outflow at every vertex matches the demand.
        let mut net_out = [0.0; 4];
        for (i, &(u, v, _)) in net.edges.iter().enumerate() {
            net_out[u] += flow.flows[i];
            net_out[v] -= flow.flows[i];
        }
        for (got, want) in net_out.iter().zip(&chi) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn energy_equals_chi_dot_phi() {
        // Thomson principle bookkeeping: E = χᵀφ for the exact flow.
        let edges = unit_resistances(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let mut clique = Clique::new(4);
        let net =
            ElectricalNetwork::build(&mut clique, 4, &edges, &SolverOptions::default()).unwrap();
        let mut chi = vec![0.0; 4];
        chi[1] = 1.0;
        chi[3] = -1.0;
        let flow = net.flow(&mut clique, &chi, 1e-11).unwrap();
        let chi_phi: f64 = chi.iter().zip(&flow.potentials).map(|(a, b)| a * b).sum();
        assert!((flow.energy - chi_phi).abs() < 1e-7);
    }

    #[test]
    fn template_reuse_answers_match_fresh_builds() {
        // IPM-style loop: same support, resistances drifting each step.
        let base: Vec<(usize, usize, f64)> = vec![
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 0, 1.0),
            (0, 2, 1.0),
        ];
        let mut clique = Clique::new(4);
        let (_, template) =
            ElectricalNetwork::build_capturing(&mut clique, 4, &base, &SolverOptions::default())
                .unwrap();
        let mut chi = vec![0.0; 4];
        chi[0] = 1.0;
        chi[3] = -1.0;
        for step in 1..4 {
            let edges: Vec<(usize, usize, f64)> = base
                .iter()
                .enumerate()
                .map(|(i, &(u, v, r))| (u, v, r * (1.0 + 0.5 * (step * (i + 1)) as f64)))
                .collect();
            let fresh = ElectricalNetwork::build(&mut clique, 4, &edges, &SolverOptions::default())
                .unwrap();
            let reused = ElectricalNetwork::build_from_template(
                &mut clique,
                4,
                &edges,
                &template,
                &SolverOptions::default(),
            )
            .unwrap();
            let a = fresh.flow(&mut clique, &chi, 1e-10).unwrap();
            let b = reused.flow(&mut clique, &chi, 1e-10).unwrap();
            for (x, y) in a.flows.iter().zip(&b.flows) {
                assert!((x - y).abs() < 1e-7, "step {step}: {x} vs {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_resistance() {
        let mut clique = Clique::new(2);
        let _ = ElectricalNetwork::build(&mut clique, 2, &[(0, 1, 0.0)], &SolverOptions::default());
    }
}
