use std::error::Error;
use std::fmt;

use cc_linalg::LinalgError;
use cc_model::ModelError;
use cc_sparsify::SparsifyError;

/// Errors raised by the Laplacian solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The sparsifier's internal factorization failed (numerically
    /// degenerate weights).
    Factorization(LinalgError),
    /// The communication substrate rejected a primitive call (congestion
    /// under a tightened budget, or an injected fault).
    Comm(ModelError),
    /// The sparsifier construction failed.
    Sparsify(SparsifyError),
    /// The right-hand side has the wrong length.
    RhsLength {
        /// Entries supplied.
        got: usize,
        /// Entries expected (`n`).
        expected: usize,
    },
    /// The graph has no edges incident to a vertex with nonzero demand —
    /// no flow/potential can satisfy it (reported, not silently projected,
    /// when strict feasibility is requested).
    InfeasibleDemand {
        /// The offending vertex.
        vertex: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Factorization(e) => write!(f, "sparsifier factorization failed: {e}"),
            CoreError::Comm(e) => write!(f, "communication failure during solve: {e}"),
            CoreError::Sparsify(e) => write!(f, "sparsifier construction failed: {e}"),
            CoreError::RhsLength { got, expected } => {
                write!(f, "rhs has {got} entries, expected {expected}")
            }
            CoreError::InfeasibleDemand { vertex } => {
                write!(f, "demand at isolated vertex {vertex} cannot be routed")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Factorization(e) => Some(e),
            CoreError::Comm(e) => Some(e),
            CoreError::Sparsify(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Factorization(e)
    }
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Comm(e)
    }
}

impl From<SparsifyError> for CoreError {
    fn from(e: SparsifyError) -> Self {
        CoreError::Sparsify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::RhsLength {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3'));
        let e = CoreError::Factorization(LinalgError::NotPositiveDefinite {
            index: 0,
            pivot: -1.0,
        });
        assert!(Error::source(&e).is_some());
    }
}
