//! # cc-core — the deterministic congested clique Laplacian solver
//!
//! The primary contribution of Forster & de Vos (PODC 2023), Theorem 1.1:
//!
//! > There is a deterministic algorithm in the congested clique that, given
//! > an undirected graph `G` with positive real weights bounded by `U` and
//! > a vector `b ∈ ℝⁿ`, computes `x` with
//! > `‖x − L†b‖_{L_G} ≤ ε·‖L†b‖_{L_G}` in `n^{o(1)} log(U/ε)` rounds.
//!
//! The implementation follows the paper exactly:
//!
//! 1. build a deterministic spectral sparsifier `H` of `G` and make it
//!    known to every node (`cc-sparsify`, Theorem 3.3);
//! 2. run preconditioned Chebyshev iteration (Theorem 2.2 / Corollary 2.3)
//!    with `A = L_G` and `B = α·S_H`:
//!    * the multiplication by `L_G` is **one broadcast round** — every node
//!      broadcasts its coordinate, then computes its Laplacian row product
//!      locally;
//!    * the solve with `B` is **zero rounds** — `H` is globally known, so
//!      every node runs the same grounded Cholesky solve internally;
//!    * vector operations are local.
//!
//! Total: `O(√κ · log(1/ε))` rounds of iteration with `κ = α²`, plus the
//! sparsifier construction.
//!
//! ```
//! use cc_model::Clique;
//! use cc_graph::generators;
//! use cc_core::{LaplacianSolver, SolverOptions};
//!
//! let g = generators::expander(32);
//! let mut clique = Clique::new(32);
//! let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default())?;
//! let mut b = vec![0.0; 32];
//! b[0] = 1.0;
//! b[17] = -1.0;
//! let out = solver.solve(&mut clique, &b, 1e-8)?;
//! assert!(out.relative_error().unwrap() <= 1e-8);
//! # Ok::<(), cc_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod electrical;
mod error;
mod session;
mod solver;

pub use electrical::{ElectricalFlow, ElectricalNetwork};
pub use error::CoreError;
pub use session::SolverSession;
pub use solver::{solve_laplacian, LaplacianSolver, SolveOutcome, SolveWorkspace, SolverOptions};
