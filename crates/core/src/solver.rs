//! The Theorem 1.1 solver.

use cc_graph::Graph;
use cc_linalg::{chebyshev_iteration_bound, laplacian_from_edges, CsrMatrix, LaplacianNorm};
use cc_model::{decode_f64, encode_f64, Communicator, ModelError};
use cc_sparsify::{build_sparsifier, SparsifierSolver, SparsifyParams, SpectralSparsifier};

use crate::CoreError;

/// Options of [`LaplacianSolver::build`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverOptions {
    /// Parameters of the sparsifier construction (Theorem 3.3).
    pub sparsify: SparsifyParams,
    /// Quantize every broadcast scalar to this many fractional fixed-point
    /// bits — the strict `O(log n)`-bit word regime (paper footnote 2).
    /// `None` (default) ships full `f64` payloads, one word each.
    pub message_frac_bits: Option<u32>,
    /// Skip computing the exact reference solution per solve.
    /// [`SolveOutcome::relative_error`] then returns `None`. The interior
    /// point methods enable this: they issue hundreds of solves and never
    /// read the reference, whose `O(n³)` factorization would dominate
    /// wall-clock (not rounds — the reference is a measurement artifact).
    pub skip_reference: bool,
}

/// Result of one [`LaplacianSolver::solve`] call.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The approximate solution `x ≈ L†b` (zero mean per component).
    pub x: Vec<f64>,
    /// Chebyshev iterations executed (each is one broadcast round).
    pub iterations: usize,
    /// The `κ = α²` condition bound used.
    pub kappa: f64,
    /// Laplacian seminorm evaluator of the input graph, for error checks.
    norm: LaplacianNorm,
    /// Exact reference solution (internal, for [`SolveOutcome::relative_error`];
    /// absent when the solver was built with `skip_reference`).
    x_star: Option<Vec<f64>>,
}

impl SolveOutcome {
    /// The achieved relative error `‖x − L†b‖_{L_G} / ‖L†b‖_{L_G}`
    /// (the error functional of Theorem 1.1), computed against an exact
    /// internal reference solve of the same right-hand side. Returns
    /// `None` when the solver was built with
    /// [`SolverOptions::skip_reference`] (no reference exists to compare
    /// against).
    pub fn relative_error(&self) -> Option<f64> {
        let x_star = self.x_star.as_ref()?;
        let denom = self.norm.norm(x_star);
        if denom == 0.0 {
            return Some(0.0);
        }
        Some(self.norm.distance(&self.x, x_star) / denom)
    }
}

/// Reusable buffers of [`LaplacianSolver::solve_into`].
///
/// One workspace serves any number of solves (buffers are sized on first
/// use and kept), so the steady-state per-solve hot path performs no heap
/// allocation — the discipline the counting-allocator tests pin down. The
/// projected right-hand side of the most recent solve is retained in the
/// workspace for callers that need it (e.g. the reference solve of
/// [`LaplacianSolver::solve`]).
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    /// `b` projected onto `range(L_G)` (the actual system solved).
    b_proj: Vec<f64>,
    /// Per-component sums of the projection.
    comp_sums: Vec<f64>,
    /// Per-component vertex counts of the projection.
    comp_counts: Vec<usize>,
    /// Encoded broadcast words (one per clique node).
    words: Vec<u64>,
    /// Shared broadcast view received back.
    view: Vec<u64>,
    /// Decoded shared iterate.
    shared: Vec<f64>,
    /// Chebyshev iteration vectors.
    cheby: cc_linalg::ChebyshevWorkspace,
    /// Batched Chebyshev iteration vectors (multi-RHS solves).
    batch: cc_linalg::BatchWorkspace,
    /// Preconditioner (sparsifier Cholesky) scratch.
    scratch: cc_sparsify::SparsifierSolveScratch,
}

impl SolveWorkspace {
    /// Creates an empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// The deterministic congested clique Laplacian solver (Theorem 1.1),
/// reusable across right-hand sides for a fixed graph.
#[derive(Debug, Clone)]
pub struct LaplacianSolver {
    n: usize,
    message_frac_bits: Option<u32>,
    laplacian: CsrMatrix,
    edges: Vec<(usize, usize, f64)>,
    components: Vec<usize>,
    comp_count: usize,
    sparsifier: SpectralSparsifier,
    inner: SparsifierSolver,
    /// Lazily factored exact Laplacian (only built when a reference
    /// solution is requested).
    exact: std::cell::OnceCell<cc_linalg::GroundedCholesky>,
    skip_reference: bool,
    kappa: f64,
}

impl LaplacianSolver {
    /// Builds the solver: constructs the deterministic spectral sparsifier
    /// in the clique (charging its rounds to `clique`) and factors it
    /// internally at every node.
    ///
    /// # Errors
    ///
    /// [`CoreError::Factorization`] if the gadget Laplacian cannot be
    /// factored (degenerate weights); [`CoreError::Sparsify`] if the
    /// sparsifier construction itself fails (e.g. a fault-injecting
    /// substrate rejects its broadcasts).
    ///
    /// # Panics
    ///
    /// Panics if `clique.n() < g.n()`.
    pub fn build<C: Communicator>(
        clique: &mut C,
        g: &Graph,
        options: &SolverOptions,
    ) -> Result<Self, CoreError> {
        let sparsifier = build_sparsifier(clique, g, &options.sparsify)?;
        let inner = sparsifier.solver()?;
        let edges = g.edge_triples();
        let laplacian = laplacian_from_edges(g.n(), &edges);
        let components = g.components();
        let comp_count = components.iter().copied().max().map_or(0, |c| c + 1);
        Ok(Self {
            n: g.n(),
            message_frac_bits: options.message_frac_bits,
            skip_reference: options.skip_reference,
            kappa: sparsifier.kappa(),
            laplacian,
            edges,
            components,
            comp_count,
            sparsifier,
            inner,
            exact: std::cell::OnceCell::new(),
        })
    }

    /// Builds the solver around a *prebuilt* sparsifier (e.g. the
    /// randomized effective-resistance sampler of
    /// `cc_sparsify::build_randomized_sparsifier`) instead of running the
    /// deterministic Theorem 3.3 construction. The sparsifier's certified
    /// `α` drives the Chebyshev condition bound exactly as in
    /// Corollary 2.3.
    ///
    /// # Errors
    ///
    /// [`CoreError::Factorization`] if the sparsifier cannot be factored.
    ///
    /// # Panics
    ///
    /// Panics if the sparsifier was built for a different vertex count.
    pub fn with_sparsifier(
        g: &Graph,
        sparsifier: SpectralSparsifier,
        options: &SolverOptions,
    ) -> Result<Self, CoreError> {
        assert_eq!(sparsifier.n(), g.n(), "sparsifier vertex count mismatch");
        let inner = sparsifier.solver()?;
        let edges = g.edge_triples();
        let laplacian = laplacian_from_edges(g.n(), &edges);
        let components = g.components();
        let comp_count = components.iter().copied().max().map_or(0, |c| c + 1);
        Ok(Self {
            n: g.n(),
            message_frac_bits: options.message_frac_bits,
            skip_reference: options.skip_reference,
            kappa: sparsifier.kappa(),
            laplacian,
            edges,
            components,
            comp_count,
            sparsifier,
            inner,
            exact: std::cell::OnceCell::new(),
        })
    }

    /// Number of vertices of the solved graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sparsifier backing the preconditioner.
    pub fn sparsifier(&self) -> &SpectralSparsifier {
        &self.sparsifier
    }

    /// The certified condition bound `κ = α²` of Corollary 2.3.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// Iterations (= broadcast rounds) a solve at accuracy `eps` will use.
    pub fn iterations_for(&self, eps: f64) -> usize {
        chebyshev_iteration_bound(self.kappa, eps.clamp(f64::MIN_POSITIVE, 0.5))
    }

    /// Projects `x` onto `range(L_G)` in place (removes the per-component
    /// mean) — free internally: connectivity is known from the globally
    /// known sparsifier. `sums`/`counts` are caller-owned scratch.
    fn project_in_place(&self, x: &mut [f64], sums: &mut Vec<f64>, counts: &mut Vec<usize>) {
        sums.clear();
        sums.resize(self.comp_count, 0.0);
        counts.clear();
        counts.resize(self.comp_count, 0);
        for (v, &xv) in x.iter().enumerate() {
            sums[self.components[v]] += xv;
            counts[self.components[v]] += 1;
        }
        for (v, xv) in x.iter_mut().enumerate() {
            *xv -= sums[self.components[v]] / counts[self.components[v]] as f64;
        }
    }

    /// Multi-column twin of [`LaplacianSolver::project_in_place`]:
    /// removes the per-component mean of every interleaved column
    /// (`xs[v*k + j]` is entry `v` of column `j`). Column `j` undergoes
    /// exactly the floating-point operations of the single-column
    /// projection — vertices accumulate in the same ascending order — so
    /// the result is bitwise identical per column.
    fn project_multi_in_place(
        &self,
        xs: &mut [f64],
        k: usize,
        sums: &mut Vec<f64>,
        counts: &mut Vec<usize>,
    ) {
        sums.clear();
        sums.resize(self.comp_count * k, 0.0);
        counts.clear();
        counts.resize(self.comp_count, 0);
        for v in 0..self.n {
            let c = self.components[v];
            counts[c] += 1;
            for j in 0..k {
                sums[c * k + j] += xs[v * k + j];
            }
        }
        for v in 0..self.n {
            let c = self.components[v];
            let cnt = counts[c] as f64;
            for j in 0..k {
                xs[v * k + j] -= sums[c * k + j] / cnt;
            }
        }
    }

    /// Solves `L_G x = b` to relative `L_G`-norm error `eps` (Theorem 1.1).
    ///
    /// Rounds charged to `clique`: one broadcast round per Chebyshev
    /// iteration (the `L_G` mat-vec; `B`-solves and vector operations are
    /// internal). The returned solution is the zero-mean-per-component
    /// pseudo-inverse representative.
    ///
    /// This is a convenience wrapper over [`LaplacianSolver::solve_into`]
    /// that allocates a fresh workspace per call and (unless built with
    /// [`SolverOptions::skip_reference`]) attaches the exact reference
    /// solution. Hot paths issuing many solves should call `solve_into`
    /// with a reused [`SolveWorkspace`] instead.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects an
    /// iteration's broadcast (injected faults surface here, never as
    /// panics).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `eps ≤ 0`.
    pub fn solve<C: Communicator>(
        &self,
        clique: &mut C,
        b: &[f64],
        eps: f64,
    ) -> Result<SolveOutcome, CoreError> {
        let mut ws = SolveWorkspace::new();
        let mut x = Vec::new();
        let spent = self.solve_into(clique, b, eps, &mut x, &mut ws)?;
        let x_star = if self.skip_reference {
            None
        } else {
            let exact = self.exact.get_or_init(|| {
                cc_linalg::GroundedCholesky::new(&self.laplacian)
                    .expect("Laplacian of positive weights factors")
            });
            Some(exact.solve(&ws.b_proj))
        };
        Ok(SolveOutcome {
            x,
            iterations: spent,
            kappa: self.kappa,
            norm: LaplacianNorm::new(self.edges.clone()),
            x_star,
        })
    }

    /// [`LaplacianSolver::solve`] into caller-owned buffers: writes the
    /// solution into `x` (resized to `n`) and returns the Chebyshev
    /// iterations spent. Identical round accounting and bitwise-identical
    /// solution to `solve`; no reference solution is computed. With a
    /// reused [`SolveWorkspace`] the steady-state call performs no heap
    /// allocation — this is the per-iteration path of the interior point
    /// methods (`cc-ipm`).
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects an
    /// iteration's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `eps ≤ 0`.
    pub fn solve_into<C: Communicator>(
        &self,
        clique: &mut C,
        b: &[f64],
        eps: f64,
        x: &mut Vec<f64>,
        ws: &mut SolveWorkspace,
    ) -> Result<usize, CoreError> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert!(eps > 0.0, "eps must be positive");
        let eps = eps.min(0.5);
        ws.b_proj.clear();
        ws.b_proj.extend_from_slice(b);
        {
            // Split borrows: the projection target and its scratch live in
            // the same workspace.
            let SolveWorkspace {
                ref mut b_proj,
                ref mut comp_sums,
                ref mut comp_counts,
                ..
            } = *ws;
            self.project_in_place(b_proj, comp_sums, comp_counts);
        }
        let kappa = self.kappa;
        let alpha = self.sparsifier.alpha();
        let iterations = chebyshev_iteration_bound(kappa, eps);
        x.clear();
        x.resize(self.n, 0.0);

        let mut comm_err: Option<ModelError> = None;
        let spent = clique.phase("laplacian_solve", |clique| {
            let frac_bits = self.message_frac_bits;
            let encode = |x: f64| match frac_bits {
                Some(b) => cc_model::encode_f64_fixed(x, b),
                None => encode_f64(x),
            };
            let decode = |w: u64| match frac_bits {
                Some(b) => cc_model::decode_f64_fixed(w, b),
                None => decode_f64(w),
            };
            let SolveWorkspace {
                ref b_proj,
                ref mut words,
                ref mut view,
                ref mut shared,
                ref mut cheby,
                ref mut scratch,
                ..
            } = *ws;
            // Encode/decode staging buffers, reused across all iterations
            // (and across solves sharing this workspace).
            words.clear();
            words.resize(clique.n(), 0);
            shared.clear();
            shared.resize(self.n, 0.0);
            let comm_err = &mut comm_err;
            let apply_a = |v: &[f64], out: &mut [f64]| {
                // One broadcast round: every node ships its coordinate to
                // everyone, then evaluates its Laplacian row locally. A
                // substrate failure latches in `comm_err`; the remaining
                // (abandoned) iterations run on a zeroed view and the
                // caller returns the error after the loop unwinds.
                for (w, &x) in words.iter_mut().zip(v.iter()) {
                    *w = encode(x);
                }
                if comm_err.is_none() {
                    if let Err(e) = clique.broadcast_all_into(words, view) {
                        *comm_err = Some(e);
                    }
                }
                if comm_err.is_some() {
                    view.clear();
                    view.resize(words.len(), 0);
                }
                for (s, &w) in shared.iter_mut().zip(view[..self.n].iter()) {
                    *s = decode(w);
                }
                self.laplacian.matvec_into(shared, out);
            };
            // B = α·S_H  ⇒  B-solve = (1/α)·S_H†; internal, zero rounds.
            let solve_b = |r: &[f64], z: &mut [f64]| {
                self.inner.solve_into(r, z, scratch);
                for zi in z.iter_mut() {
                    *zi /= alpha;
                }
            };
            cc_linalg::chebyshev_solve_fixed_into(
                apply_a, solve_b, b_proj, kappa, iterations, x, cheby,
            )
        });
        if let Some(e) = comm_err {
            return Err(CoreError::Comm(e));
        }
        // Canonical representative: zero mean per component (free).
        self.project_in_place(x, &mut ws.comp_sums, &mut ws.comp_counts);
        Ok(spent)
    }

    /// Batched [`LaplacianSolver::solve_into`] over `k` interleaved
    /// right-hand sides (`bs[v*k + j]` is entry `v` of column `j`), all at
    /// accuracy `eps`. Writes the interleaved solutions into `xs` (resized
    /// to `n·k`) and returns the Chebyshev iterations spent.
    ///
    /// Rounds charged: `k` broadcast rounds per Chebyshev iteration (one
    /// per column — every column's mat-vec ships the same payload a
    /// single solve would), so the total round cost equals `k` separate
    /// `solve_into` calls exactly. The amortization is wall-clock: the
    /// Laplacian, the preconditioner factor and the Chebyshev vectors
    /// stream through the cache once per iteration instead of `k` times
    /// ([`cc_linalg::chebyshev_solve_multi_into`]).
    ///
    /// Column `j` of the result is **bitwise identical** to a single
    /// `solve_into` of column `j`: the Chebyshev coefficients depend only
    /// on `κ` and the iteration index, every vector update is
    /// elementwise, and the mat-vec / preconditioner kernels are
    /// bitwise-per-column by construction.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects any
    /// column's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `bs.len() != n·k`, or `eps ≤ 0`.
    pub fn solve_multi_into<C: Communicator>(
        &self,
        clique: &mut C,
        bs: &[f64],
        k: usize,
        eps: f64,
        xs: &mut Vec<f64>,
        ws: &mut SolveWorkspace,
    ) -> Result<usize, CoreError> {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(bs.len(), self.n * k, "rhs batch length mismatch");
        assert!(eps > 0.0, "eps must be positive");
        let eps = eps.min(0.5);
        let n = self.n;
        ws.b_proj.clear();
        ws.b_proj.extend_from_slice(bs);
        {
            let SolveWorkspace {
                ref mut b_proj,
                ref mut comp_sums,
                ref mut comp_counts,
                ..
            } = *ws;
            self.project_multi_in_place(b_proj, k, comp_sums, comp_counts);
        }
        let kappa = self.kappa;
        let alpha = self.sparsifier.alpha();
        let iterations = chebyshev_iteration_bound(kappa, eps);
        xs.clear();
        xs.resize(n * k, 0.0);

        let mut comm_err: Option<ModelError> = None;
        let spent = clique.phase("laplacian_solve", |clique| {
            let frac_bits = self.message_frac_bits;
            let encode = |x: f64| match frac_bits {
                Some(b) => cc_model::encode_f64_fixed(x, b),
                None => encode_f64(x),
            };
            let decode = |w: u64| match frac_bits {
                Some(b) => cc_model::decode_f64_fixed(w, b),
                None => decode_f64(w),
            };
            let SolveWorkspace {
                ref b_proj,
                ref mut words,
                ref mut view,
                ref mut shared,
                ref mut batch,
                ref mut scratch,
                ..
            } = *ws;
            words.clear();
            words.resize(clique.n(), 0);
            shared.clear();
            shared.resize(n * k, 0.0);
            let comm_err = &mut comm_err;
            let apply_a = |v: &[f64], out: &mut [f64]| {
                // One broadcast round per column: column `j` ships exactly
                // the words its single solve would, so the decoded view —
                // and hence every downstream bit — matches the unbatched
                // path. A substrate failure latches in `comm_err`; the
                // remaining broadcasts are abandoned (zeroed views) and
                // the caller returns the error after the loop unwinds.
                for j in 0..k {
                    for (i, w) in words[..n].iter_mut().enumerate() {
                        *w = encode(v[i * k + j]);
                    }
                    if comm_err.is_none() {
                        if let Err(e) = clique.broadcast_all_into(words, view) {
                            *comm_err = Some(e);
                        }
                    }
                    if comm_err.is_some() {
                        view.clear();
                        view.resize(words.len(), 0);
                    }
                    for (i, &w) in view[..n].iter().enumerate() {
                        shared[i * k + j] = decode(w);
                    }
                }
                self.laplacian.matvec_multi_into(shared, k, out);
            };
            // B = α·S_H  ⇒  B-solve = (1/α)·S_H†; internal, zero rounds.
            let solve_b = |r: &[f64], z: &mut [f64]| {
                self.inner.solve_multi_into(r, k, z, scratch);
                for zi in z.iter_mut() {
                    *zi /= alpha;
                }
            };
            cc_linalg::chebyshev_solve_multi_into(
                apply_a, solve_b, b_proj, k, kappa, iterations, xs, batch,
            )
        });
        if let Some(e) = comm_err {
            return Err(CoreError::Comm(e));
        }
        self.project_multi_in_place(xs, k, &mut ws.comp_sums, &mut ws.comp_counts);
        Ok(spent)
    }
}

/// One-shot convenience: build the solver and solve a single system,
/// charging all rounds (sparsifier + iterations) to `clique`.
///
/// # Errors
///
/// Propagates [`LaplacianSolver::build`] errors.
///
/// # Panics
///
/// Panics under the same conditions as [`LaplacianSolver::solve`].
pub fn solve_laplacian<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    b: &[f64],
    eps: f64,
    options: &SolverOptions,
) -> Result<SolveOutcome, CoreError> {
    let solver = LaplacianSolver::build(clique, g, options)?;
    solver.solve(clique, b, eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    fn st_rhs(n: usize, s: usize, t: usize) -> Vec<f64> {
        let mut b = vec![0.0; n];
        b[s] = 1.0;
        b[t] = -1.0;
        b
    }

    #[test]
    fn meets_requested_accuracy_across_eps() {
        let g = generators::random_connected(24, 60, 8, 1);
        let mut clique = Clique::new(24);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let b = st_rhs(24, 0, 23);
        for &eps in &[1e-1, 1e-4, 1e-8] {
            let out = solver.solve(&mut clique, &b, eps).unwrap();
            let err = out.relative_error().expect("reference enabled");
            assert!(
                err <= eps * 1.05,
                "eps={eps} err={err} iters={}",
                out.iterations
            );
        }
    }

    #[test]
    fn iteration_count_scales_with_log_eps() {
        let g = generators::expander(32);
        let mut clique = Clique::new(32);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let i2 = solver.iterations_for(1e-2);
        let i8 = solver.iterations_for(1e-8);
        assert!(i8 > i2);
        // log-linear shape: quadrupling the digits should not blow up more
        // than ~5x the iterations.
        assert!(i8 <= 5 * i2.max(1));
    }

    #[test]
    fn each_iteration_is_one_broadcast_round() {
        let g = generators::expander(16);
        let mut clique = Clique::new(16);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let before = clique.ledger().total_rounds();
        let out = solver.solve(&mut clique, &st_rhs(16, 0, 8), 1e-6).unwrap();
        let spent = clique.ledger().total_rounds() - before;
        assert_eq!(spent, out.iterations as u64);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(3, 4, 1.0);
        let mut clique = Clique::new(6);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        // Demand inside each component.
        let mut b = vec![0.0; 6];
        b[0] = 1.0;
        b[2] = -1.0;
        b[3] = 2.0;
        b[4] = -2.0;
        let out = solver.solve(&mut clique, &b, 1e-9).unwrap();
        assert!(out.relative_error().unwrap() <= 1e-8);
        // Isolated vertex keeps zero.
        assert_eq!(out.x[5], 0.0);
    }

    #[test]
    fn weighted_graph_with_large_u() {
        let g = generators::random_connected(20, 50, 1 << 12, 3);
        let mut clique = Clique::new(20);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let out = solver.solve(&mut clique, &st_rhs(20, 0, 19), 1e-7).unwrap();
        assert!(out.relative_error().unwrap() <= 1e-7 * 1.05);
    }

    #[test]
    fn one_shot_helper_works() {
        let g = generators::grid(4, 5);
        let mut clique = Clique::new(20);
        let b = st_rhs(20, 0, 19);
        let out = solve_laplacian(&mut clique, &g, &b, 1e-6, &SolverOptions::default()).unwrap();
        assert!(out.relative_error().unwrap() <= 1e-6 * 1.05);
        assert!(clique.ledger().phase_prefix_total("sparsify") > 0);
        assert!(clique.ledger().phase_prefix_total("laplacian_solve") > 0);
    }

    #[test]
    fn nonzero_mean_rhs_is_projected() {
        let g = generators::cycle(8);
        let mut clique = Clique::new(8);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let b = vec![1.0; 8]; // entirely in the nullspace
        let out = solver.solve(&mut clique, &b, 1e-6).unwrap();
        assert!(out.x.iter().all(|&x| x.abs() < 1e-9));
        assert_eq!(out.relative_error(), Some(0.0));
    }

    #[test]
    fn fixed_point_messages_degrade_gracefully() {
        // Paper footnote 2: O(log n)-bit words suffice up to polylog
        // factors. With generous fractional bits the solver still meets a
        // moderate ε; with very few bits the error visibly degrades.
        let g = generators::expander(24);
        let b = st_rhs(24, 0, 12);
        let run = |bits: Option<u32>, eps: f64| {
            let mut clique = Clique::new(24);
            let solver = LaplacianSolver::build(
                &mut clique,
                &g,
                &SolverOptions {
                    message_frac_bits: bits,
                    ..Default::default()
                },
            )
            .unwrap();
            solver
                .solve(&mut clique, &b, eps)
                .unwrap()
                .relative_error()
                .unwrap()
        };
        assert!(
            run(Some(44), 1e-6) <= 1e-6 * 1.5,
            "44 bits must suffice for 1e-6"
        );
        let coarse = run(Some(8), 1e-10);
        let fine = run(None, 1e-10);
        assert!(
            coarse > fine,
            "8-bit quantization must be visible: {coarse} vs {fine}"
        );
    }

    #[test]
    fn randomized_sparsifier_plugs_into_the_solver() {
        let g = generators::random_connected(24, 100, 4, 6);
        let mut clique = Clique::new(24);
        let h = cc_sparsify::build_randomized_sparsifier(&mut clique, &g, 3, None).unwrap();
        let solver = LaplacianSolver::with_sparsifier(&g, h, &SolverOptions::default()).unwrap();
        let b = st_rhs(24, 0, 23);
        let out = solver.solve(&mut clique, &b, 1e-7).unwrap();
        assert!(out.relative_error().unwrap() <= 1e-7 * 1.05);
    }

    #[test]
    fn skip_reference_returns_no_error_but_same_solution() {
        let g = generators::expander(16);
        let b = st_rhs(16, 0, 8);
        let mut c1 = Clique::new(16);
        let with_ref = LaplacianSolver::build(&mut c1, &g, &SolverOptions::default()).unwrap();
        let mut c2 = Clique::new(16);
        let without_ref = LaplacianSolver::build(
            &mut c2,
            &g,
            &SolverOptions {
                skip_reference: true,
                ..Default::default()
            },
        )
        .unwrap();
        let a = with_ref.solve(&mut c1, &b, 1e-8).unwrap();
        let z = without_ref.solve(&mut c2, &b, 1e-8).unwrap();
        assert_eq!(
            a.x, z.x,
            "reference computation must not affect the solution"
        );
        assert!(a.relative_error().expect("reference enabled").is_finite());
        assert!(z.relative_error().is_none());
    }

    #[test]
    fn deterministic_solutions() {
        let g = generators::random_connected(16, 40, 4, 9);
        let run = || {
            let mut clique = Clique::new(16);
            let solver =
                LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
            solver
                .solve(&mut clique, &st_rhs(16, 2, 13), 1e-8)
                .unwrap()
                .x
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn solve_into_matches_solve_bitwise_and_reuses_workspace() {
        let g = generators::random_connected(20, 48, 6, 4);
        let mut c1 = Clique::new(20);
        let solver = LaplacianSolver::build(&mut c1, &g, &SolverOptions::default()).unwrap();
        let mut ws = SolveWorkspace::new();
        let mut x = Vec::new();
        // One workspace across several right-hand sides; every solve must
        // match the allocating path bitwise and charge identical rounds.
        for (s, t) in [(0usize, 19usize), (3, 11), (7, 2)] {
            let b = st_rhs(20, s, t);
            let before = c1.ledger().total_rounds();
            let out = solver.solve(&mut c1, &b, 1e-8).unwrap();
            let solve_rounds = c1.ledger().total_rounds() - before;
            let before = c1.ledger().total_rounds();
            let spent = solver
                .solve_into(&mut c1, &b, 1e-8, &mut x, &mut ws)
                .unwrap();
            let into_rounds = c1.ledger().total_rounds() - before;
            assert_eq!(spent, out.iterations);
            assert_eq!(solve_rounds, into_rounds);
            assert_eq!(out.x.len(), x.len());
            for (a, b) in out.x.iter().zip(&x) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn solve_multi_into_matches_singles_bitwise_and_in_rounds() {
        let g = generators::random_connected(18, 44, 5, 8);
        let mut clique = Clique::new(18);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let pairs = [(0usize, 17usize), (2, 9), (5, 13)];
        let k = pairs.len();
        let mut ws = SolveWorkspace::new();
        let mut singles = Vec::new();
        let before = clique.ledger().total_rounds();
        for &(s, t) in &pairs {
            let mut x = Vec::new();
            let b = st_rhs(18, s, t);
            solver
                .solve_into(&mut clique, &b, 1e-8, &mut x, &mut ws)
                .unwrap();
            singles.push(x);
        }
        let single_rounds = clique.ledger().total_rounds() - before;

        // Interleaved batch of the same right-hand sides.
        let mut bs = vec![0.0; 18 * k];
        for (j, &(s, t)) in pairs.iter().enumerate() {
            bs[s * k + j] = 1.0;
            bs[t * k + j] = -1.0;
        }
        let mut xs = Vec::new();
        let before = clique.ledger().total_rounds();
        let spent = solver
            .solve_multi_into(&mut clique, &bs, k, 1e-8, &mut xs, &mut ws)
            .unwrap();
        let batch_rounds = clique.ledger().total_rounds() - before;
        assert_eq!(spent, solver.iterations_for(1e-8));
        assert_eq!(
            batch_rounds, single_rounds,
            "batch must charge exactly k single solves' rounds"
        );
        for (j, x) in singles.iter().enumerate() {
            for v in 0..18 {
                assert_eq!(
                    x[v].to_bits(),
                    xs[v * k + j].to_bits(),
                    "column {j} entry {v} must match the single solve bitwise"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "rhs length mismatch")]
    fn rejects_wrong_rhs_length() {
        let g = generators::cycle(4);
        let mut clique = Clique::new(4);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let _ = solver.solve(&mut clique, &[1.0, -1.0], 1e-3);
    }
}
