//! Reentrant solver sessions: one solver, one workspace, many requests.
//!
//! [`crate::LaplacianSolver`] is already reusable across right-hand
//! sides, but every hot caller has to thread its own
//! [`crate::SolveWorkspace`] (and, for batches, output buffers) through
//! each call. A [`SolverSession`] bundles the two into a single
//! reentrant object: build once per graph, then call
//! [`SolverSession::solve_into`] / [`SolverSession::solve_multi_into`]
//! any number of times — steady state performs no heap allocation, and
//! results are bitwise identical to the underlying solver methods. This
//! is the bottom layer of the service architecture (`DESIGN.md` §11):
//! `cc-service` keeps one session per registered graph and replays
//! request streams against it.

use cc_graph::Graph;
use cc_model::Communicator;

use crate::solver::{LaplacianSolver, SolveWorkspace, SolverOptions};
use crate::CoreError;

/// A reentrant Laplacian-solve session: a built [`LaplacianSolver`] plus
/// the reusable [`SolveWorkspace`] its hot paths need. The one-shot entry
/// points ([`crate::solve_laplacian`], [`LaplacianSolver::solve`]) are
/// thin wrappers over the same reentrant methods this session exposes.
#[derive(Debug, Clone)]
pub struct SolverSession {
    solver: LaplacianSolver,
    ws: SolveWorkspace,
}

impl SolverSession {
    /// Builds the solver in the clique (charging its rounds) and wraps it
    /// with a fresh workspace.
    ///
    /// # Errors
    ///
    /// Propagates [`LaplacianSolver::build`] errors.
    ///
    /// # Panics
    ///
    /// Panics if `clique.n() < g.n()`.
    pub fn build<C: Communicator>(
        clique: &mut C,
        g: &Graph,
        options: &SolverOptions,
    ) -> Result<Self, CoreError> {
        Ok(Self::from_solver(LaplacianSolver::build(
            clique, g, options,
        )?))
    }

    /// Wraps an already-built solver (e.g. one constructed through
    /// [`LaplacianSolver::with_sparsifier`] from a cached template).
    pub fn from_solver(solver: LaplacianSolver) -> Self {
        Self {
            solver,
            ws: SolveWorkspace::new(),
        }
    }

    /// The wrapped solver.
    pub fn solver(&self) -> &LaplacianSolver {
        &self.solver
    }

    /// Number of vertices of the solved graph.
    pub fn n(&self) -> usize {
        self.solver.n()
    }

    /// The certified condition bound `κ = α²`.
    pub fn kappa(&self) -> f64 {
        self.solver.kappa()
    }

    /// Iterations (= broadcast rounds) a solve at accuracy `eps` will use.
    pub fn iterations_for(&self, eps: f64) -> usize {
        self.solver.iterations_for(eps)
    }

    /// [`LaplacianSolver::solve_into`] through the session's workspace:
    /// bitwise-identical solution and identical round accounting, zero
    /// steady-state allocations.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects an
    /// iteration's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `eps ≤ 0`.
    pub fn solve_into<C: Communicator>(
        &mut self,
        clique: &mut C,
        b: &[f64],
        eps: f64,
        x: &mut Vec<f64>,
    ) -> Result<usize, CoreError> {
        self.solver.solve_into(clique, b, eps, x, &mut self.ws)
    }

    /// [`LaplacianSolver::solve_multi_into`] through the session's
    /// workspace: `k` interleaved right-hand sides, each column bitwise
    /// identical to its single solve, total rounds equal to `k` single
    /// solves.
    ///
    /// # Errors
    ///
    /// [`CoreError::Comm`] if the communication substrate rejects any
    /// column's broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `bs.len() != n·k`, or `eps ≤ 0`.
    pub fn solve_multi_into<C: Communicator>(
        &mut self,
        clique: &mut C,
        bs: &[f64],
        k: usize,
        eps: f64,
        xs: &mut Vec<f64>,
    ) -> Result<usize, CoreError> {
        self.solver
            .solve_multi_into(clique, bs, k, eps, xs, &mut self.ws)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn session_matches_raw_solver_bitwise() {
        let g = generators::random_connected(16, 40, 4, 2);
        let mut clique = Clique::new(16);
        let mut session = SolverSession::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let solver =
            LaplacianSolver::build(&mut Clique::new(16), &g, &SolverOptions::default()).unwrap();
        let mut b = vec![0.0; 16];
        b[1] = 2.0;
        b[14] = -2.0;
        let mut x = Vec::new();
        let mut ws = SolveWorkspace::new();
        let mut want = Vec::new();
        // Reentrancy: several solves through one session, each matching a
        // raw-solver call bitwise.
        for eps in [1e-4, 1e-8, 1e-8] {
            session.solve_into(&mut clique, &b, eps, &mut x).unwrap();
            solver
                .solve_into(&mut Clique::new(16), &b, eps, &mut want, &mut ws)
                .unwrap();
            assert_eq!(x.len(), want.len());
            for (a, w) in x.iter().zip(&want) {
                assert_eq!(a.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn session_batch_matches_singles() {
        let g = generators::expander(12);
        let mut clique = Clique::new(12);
        let mut session = SolverSession::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let k = 2;
        let mut bs = vec![0.0; 12 * k];
        bs[k] = 1.0; // b0: e_1 - e_7
        bs[7 * k] = -1.0;
        bs[3 * k + 1] = 1.0; // b1: e_3 - e_9
        bs[9 * k + 1] = -1.0;
        let mut xs = Vec::new();
        session
            .solve_multi_into(&mut clique, &bs, k, 1e-7, &mut xs)
            .unwrap();
        for j in 0..k {
            let mut b = vec![0.0; 12];
            for v in 0..12 {
                b[v] = bs[v * k + j];
            }
            let mut x = Vec::new();
            session.solve_into(&mut clique, &b, 1e-7, &mut x).unwrap();
            for v in 0..12 {
                assert_eq!(x[v].to_bits(), xs[v * k + j].to_bits());
            }
        }
    }
}
