//! Node-centric programming: write congested clique algorithms as
//! per-node state machines instead of driver-style global code.
//!
//! The algorithms of this repository are driven globally (the driver holds
//! all node states and issues the exact message pattern, which is what the
//! round ledger charges). For users who want the *strict* distributed
//! discipline — a node computes its next messages only from its own state
//! and inbox — this module runs a [`NodeProgram`] per node in synchronous
//! super-rounds:
//!
//! 1. every non-halted node is offered its inbox and returns an outbox;
//! 2. the message set is delivered through [`Clique::route`] (rounds
//!    charged by the model's rules);
//! 3. repeat until every node halts.
//!
//! ```
//! use cc_model::{Clique, Envelope, NodeCtx, NodeProgram, NodeId, Words, run_node_programs};
//!
//! /// Every node learns the minimum of all inputs in one broadcast round.
//! struct MinConsensus { value: u64, best: u64, done: bool }
//!
//! impl NodeProgram for MinConsensus {
//!     type Output = u64;
//!     fn round(&mut self, ctx: &NodeCtx, inbox: &[Envelope]) -> Vec<(NodeId, Words)> {
//!         if ctx.round == 0 {
//!             return (0..ctx.n).filter(|&v| v != ctx.id).map(|v| (v, vec![self.value])).collect();
//!         }
//!         self.best = inbox.iter().map(|e| e.payload[0]).chain([self.value]).min().unwrap();
//!         self.done = true;
//!         Vec::new()
//!     }
//!     fn halted(&self) -> bool { self.done }
//!     fn output(self) -> u64 { self.best }
//! }
//!
//! let mut clique = Clique::new(4);
//! let programs = [7u64, 3, 9, 5].map(|v| MinConsensus { value: v, best: v, done: false });
//! let outs = run_node_programs(&mut clique, programs.into_iter().collect(), 10).unwrap();
//! assert_eq!(outs, vec![3, 3, 3, 3]);
//! ```

use crate::{Communicator, Envelope, ModelError, NodeId, Words};

/// Per-node execution context handed to every [`NodeProgram::round`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's id.
    pub id: NodeId,
    /// Number of nodes in the clique.
    pub n: usize,
    /// Zero-based super-round counter.
    pub round: usize,
}

/// A per-node state machine executed by [`run_node_programs`].
pub trait NodeProgram {
    /// What the node outputs once the run terminates.
    type Output;

    /// One synchronous super-round: consume the inbox, emit the outbox.
    /// A halted node is not called again (and sends nothing).
    fn round(&mut self, ctx: &NodeCtx, inbox: &[Envelope]) -> Vec<(NodeId, Words)>;

    /// True once this node has terminated. The run ends when all nodes
    /// have halted.
    fn halted(&self) -> bool;

    /// Extracts the node's output.
    fn output(self) -> Self::Output;
}

/// Executes one [`NodeProgram`] per node until all halt (or the round
/// budget runs out), delivering messages through
/// [`Communicator::route`] so every super-round's communication is
/// charged by the substrate's rules.
///
/// # Errors
///
/// Propagates routing errors (e.g. [`ModelError::BroadcastOnly`] in
/// broadcast mode, invalid destinations) and reports
/// [`ModelError::WrongOutboxCount`]-style misuse via panics; returns
/// the per-node outputs on success.
///
/// # Panics
///
/// Panics if `programs.len() != clique.n()` or the programs fail to halt
/// within `max_rounds` super-rounds.
pub fn run_node_programs<C: Communicator, P: NodeProgram>(
    clique: &mut C,
    mut programs: Vec<P>,
    max_rounds: usize,
) -> Result<Vec<P::Output>, ModelError> {
    assert_eq!(
        programs.len(),
        clique.n(),
        "one program per clique node required"
    );
    let n = clique.n();
    let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
    for round in 0..max_rounds {
        if programs.iter().all(|p| p.halted()) {
            return Ok(programs.into_iter().map(|p| p.output()).collect());
        }
        let mut outboxes: Vec<Vec<(NodeId, Words)>> = Vec::with_capacity(n);
        for (id, program) in programs.iter_mut().enumerate() {
            if program.halted() {
                outboxes.push(Vec::new());
                continue;
            }
            let ctx = NodeCtx { id, n, round };
            outboxes.push(program.round(&ctx, &inboxes[id]));
        }
        inboxes = clique.route(outboxes)?;
    }
    if programs.iter().all(|p| p.halted()) {
        return Ok(programs.into_iter().map(|p| p.output()).collect());
    }
    panic!("node programs failed to halt within {max_rounds} super-rounds");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    /// Distributed BFS layering: node 0 is the root; every node learns its
    /// hop distance in the (arbitrary) communication graph given by
    /// `neighbors`. Demonstrates multi-round programs.
    struct Bfs {
        neighbors: Vec<NodeId>,
        dist: Option<u64>,
        announced: bool,
    }

    impl NodeProgram for Bfs {
        type Output = Option<u64>;
        fn round(&mut self, ctx: &NodeCtx, inbox: &[Envelope]) -> Vec<(NodeId, Words)> {
            if ctx.round == 0 && ctx.id == 0 {
                self.dist = Some(0);
            }
            if self.dist.is_none() {
                if let Some(d) = inbox.iter().map(|e| e.payload[0]).min() {
                    self.dist = Some(d + 1);
                }
            }
            match (self.dist, self.announced) {
                (Some(d), false) => {
                    self.announced = true;
                    self.neighbors.iter().map(|&v| (v, vec![d])).collect()
                }
                _ => {
                    // Quiescence detection is global in a real system; for
                    // the test we halt once announced (or unreachable after
                    // the caller's round budget elapses via max_rounds).
                    Vec::new()
                }
            }
        }
        fn halted(&self) -> bool {
            self.announced
        }
        fn output(self) -> Option<u64> {
            self.dist
        }
    }

    #[test]
    fn bfs_layers_on_a_path_topology() {
        let n = 6;
        let mut clique = Clique::new(n);
        let programs: Vec<Bfs> = (0..n)
            .map(|v| {
                let mut neighbors = Vec::new();
                if v > 0 {
                    neighbors.push(v - 1);
                }
                if v + 1 < n {
                    neighbors.push(v + 1);
                }
                Bfs {
                    neighbors,
                    dist: None,
                    announced: false,
                }
            })
            .collect();
        let out = run_node_programs(&mut clique, programs, 20).unwrap();
        for (v, d) in out.iter().enumerate() {
            assert_eq!(*d, Some(v as u64));
        }
        // One routed super-round per BFS layer.
        assert!(clique.ledger().total_rounds() >= n as u64 - 1);
    }

    struct Echo {
        sent: bool,
        got: usize,
    }

    impl NodeProgram for Echo {
        type Output = usize;
        fn round(&mut self, ctx: &NodeCtx, inbox: &[Envelope]) -> Vec<(NodeId, Words)> {
            self.got += inbox.len();
            if !self.sent {
                self.sent = true;
                vec![((ctx.id + 1) % ctx.n, vec![ctx.id as u64])]
            } else {
                Vec::new()
            }
        }
        fn halted(&self) -> bool {
            self.sent && self.got > 0
        }
        fn output(self) -> usize {
            self.got
        }
    }

    #[test]
    fn ring_echo_delivers_every_message() {
        let mut clique = Clique::new(5);
        let programs = (0..5)
            .map(|_| Echo {
                sent: false,
                got: 0,
            })
            .collect();
        let out = run_node_programs(&mut clique, programs, 5).unwrap();
        assert_eq!(out, vec![1; 5]);
    }

    #[test]
    #[should_panic(expected = "failed to halt")]
    fn nontermination_is_detected() {
        struct Forever;
        impl NodeProgram for Forever {
            type Output = ();
            fn round(&mut self, _: &NodeCtx, _: &[Envelope]) -> Vec<(NodeId, Words)> {
                Vec::new()
            }
            fn halted(&self) -> bool {
                false
            }
            fn output(self) {}
        }
        let mut clique = Clique::new(2);
        let _ = run_node_programs(&mut clique, vec![Forever, Forever], 3);
    }

    #[test]
    fn broadcast_mode_rejects_node_programs_that_unicast() {
        use crate::{CliqueConfig, CommunicationMode};
        struct OneShot;
        impl NodeProgram for OneShot {
            type Output = ();
            fn round(&mut self, ctx: &NodeCtx, _: &[Envelope]) -> Vec<(NodeId, Words)> {
                vec![((ctx.id + 1) % ctx.n, vec![1])]
            }
            fn halted(&self) -> bool {
                false
            }
            fn output(self) {}
        }
        let mut clique = Clique::with_config(
            2,
            CliqueConfig {
                mode: CommunicationMode::Broadcast,
                ..CliqueConfig::default()
            },
        );
        let err = run_node_programs(&mut clique, vec![OneShot, OneShot], 3).unwrap_err();
        assert_eq!(err, ModelError::BroadcastOnly);
    }
}
