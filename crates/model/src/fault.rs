//! [`FaultComm`]: a wrapping transport with deterministic, seeded fault
//! injection for bandwidth-bound testing.
//!
//! The simulator is forgiving by design: [`crate::Clique::route`] batches
//! overloaded message sets instead of failing, and the broadcast
//! primitives charge however many rounds the payload needs. That is right
//! for measuring, but wrong for *proving* a bandwidth bound — an
//! algorithm that quietly ships twice the words its theorem allows just
//! charges extra rounds and nobody notices. Wrapping the substrate in a
//! [`FaultComm`] makes such violations loud:
//!
//! * **word-budget tightening** — a [`FaultPlan::routing_capacity_factor`]
//!   below the substrate's own makes every point-to-point call (including
//!   plain [`route`](Communicator::route) and
//!   [`exchange`](Communicator::exchange), which would otherwise batch
//!   silently) fail with [`ModelError::CongestionExceeded`] when a node
//!   exceeds the tightened per-call budget;
//! * **forced faults at chosen phases** — every fallible primitive under
//!   a phase path matching [`FaultPlan::fail_phases`] fails with a
//!   synthesized `CongestionExceeded` (capacity 0 marks it as injected),
//!   exercising the caller's error path deterministically; this includes
//!   the broadcast family ([`Communicator::broadcast_all`] and friends),
//!   which honest substrates only fail structurally but this transport
//!   fails on demand;
//! * **seeded random faults** — [`FaultPlan::failure_rate`] injects the
//!   same failures on every run with the same seed (SplitMix64 stream);
//! * **payload-size assertions** — [`FaultPlan::max_message_words`] turns
//!   an oversized single message into a panic at the send site, pinning
//!   the `O(log n)`-bit word discipline.

use crate::{CliqueConfig, Communicator, Envelope, ModelError, NodeId, RoundLedger, Words};

/// Configuration of a [`FaultComm`]. The default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic fault stream (SplitMix64).
    pub seed: u64,
    /// Tightened per-call routing budget, as a multiple of `n` (compare
    /// [`CliqueConfig::routing_capacity_factor`]). `None` leaves the
    /// substrate's own budget in force (and plain `route`/`exchange`
    /// unchecked).
    pub routing_capacity_factor: Option<usize>,
    /// Phase-path fragments: a fallible primitive whose current phase
    /// path contains any of these strings fails with an injected
    /// [`ModelError::CongestionExceeded`] (capacity 0).
    pub fail_phases: Vec<String>,
    /// Probability in `[0, 1]` that any fallible primitive call fails
    /// with an injected fault, drawn from the seeded stream.
    pub failure_rate: f64,
    /// Maximum words a single message payload may carry; a larger payload
    /// panics (assertion, not error — an oversized message is a model
    /// violation, not a runtime condition).
    pub max_message_words: Option<usize>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            routing_capacity_factor: None,
            fail_phases: Vec::new(),
            failure_rate: 0.0,
            max_message_words: None,
        }
    }
}

/// A [`Communicator`] decorator injecting deterministic faults per a
/// [`FaultPlan`].
///
/// # Example
///
/// ```
/// use cc_model::{Clique, Communicator, FaultComm, FaultPlan, ModelError};
///
/// // Tighten the routing budget to 1·n words per call: a 9-word burst
/// // into one node of a 4-clique now fails loudly instead of batching.
/// let plan = FaultPlan {
///     routing_capacity_factor: Some(1),
///     ..FaultPlan::default()
/// };
/// let mut comm = FaultComm::new(Clique::new(4), plan);
/// let outboxes = vec![vec![(1, (0..9).collect())], vec![], vec![], vec![]];
/// assert!(matches!(
///     comm.route(outboxes),
///     Err(ModelError::CongestionExceeded { .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct FaultComm<C: Communicator> {
    inner: C,
    plan: FaultPlan,
    rng_state: u64,
    injected: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<C: Communicator> FaultComm<C> {
    /// Wraps `inner` under the given plan.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        let mut rng_state = plan.seed ^ 0x9E37_79B9_7F4A_7C15;
        let _ = splitmix64(&mut rng_state);
        Self {
            inner,
            plan,
            rng_state,
            injected: 0,
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding the plan.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Number of faults injected so far (forced-phase plus seeded).
    pub fn injected_faults(&self) -> u64 {
        self.injected
    }

    /// An injected fault, distinguishable from a genuine congestion error
    /// by its zero capacity.
    fn injected_error(&mut self) -> ModelError {
        self.injected += 1;
        ModelError::CongestionExceeded {
            node: 0,
            words: 0,
            capacity: 0,
            sending: true,
        }
    }

    /// Checks the forced-phase list and the seeded stream; `Err` if this
    /// call must fail.
    fn preflight(&mut self) -> Result<(), ModelError> {
        let phase = self.inner.ledger().current_phase();
        if self
            .plan
            .fail_phases
            .iter()
            .any(|frag| !frag.is_empty() && phase.contains(frag.as_str()))
        {
            return Err(self.injected_error());
        }
        if self.plan.failure_rate > 0.0 {
            let draw = (splitmix64(&mut self.rng_state) >> 11) as f64 / (1u64 << 53) as f64;
            if draw < self.plan.failure_rate {
                return Err(self.injected_error());
            }
        }
        Ok(())
    }

    fn assert_payload(&self, words: usize) {
        if let Some(max) = self.plan.max_message_words {
            assert!(
                words <= max,
                "fault plan violated: message of {words} words exceeds the \
                 {max}-word payload budget"
            );
        }
    }

    fn check_outbox_payloads(&self, outboxes: &[Vec<(NodeId, Words)>]) {
        if self.plan.max_message_words.is_some() {
            for per_node in outboxes {
                for (_, payload) in per_node {
                    self.assert_payload(payload.len());
                }
            }
        }
    }

    /// Tightened per-call budget check (send and receive loads against
    /// `routing_capacity_factor · n`).
    fn check_budget(&self, outboxes: &[Vec<(NodeId, Words)>]) -> Result<(), ModelError> {
        let Some(factor) = self.plan.routing_capacity_factor else {
            return Ok(());
        };
        let n = self.inner.n();
        let cap = factor * n;
        let mut send = vec![0usize; n];
        let mut recv = vec![0usize; n];
        for (src, per_node) in outboxes.iter().enumerate() {
            for (dst, payload) in per_node {
                if src < n && *dst < n {
                    send[src] += payload.len();
                    recv[*dst] += payload.len();
                }
            }
        }
        for node in 0..n {
            if send[node] > cap {
                return Err(ModelError::CongestionExceeded {
                    node,
                    words: send[node],
                    capacity: cap,
                    sending: true,
                });
            }
            if recv[node] > cap {
                return Err(ModelError::CongestionExceeded {
                    node,
                    words: recv[node],
                    capacity: cap,
                    sending: false,
                });
            }
        }
        Ok(())
    }
}

impl<C: Communicator> Communicator for FaultComm<C> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn config(&self) -> CliqueConfig {
        self.inner.config()
    }

    fn ledger(&self) -> &RoundLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        self.inner.ledger_mut()
    }

    fn faults_observed(&self) -> u64 {
        self.injected + self.inner.faults_observed()
    }

    fn push_phase(&mut self, name: &str) {
        self.inner.push_phase(name);
    }

    fn pop_phase(&mut self) {
        self.inner.pop_phase();
    }

    fn charge_oracle(&mut self, rounds: u64) {
        self.inner.charge_oracle(rounds);
    }

    fn charge_implemented(&mut self, rounds: u64) {
        self.inner.charge_implemented(rounds);
    }

    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.preflight()?;
        self.check_outbox_payloads(&outboxes);
        self.check_budget(&outboxes)?;
        self.inner.exchange(outboxes)
    }

    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.preflight()?;
        self.check_outbox_payloads(&outboxes);
        self.check_budget(&outboxes)?;
        self.inner.route(outboxes)
    }

    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.preflight()?;
        self.check_outbox_payloads(&outboxes);
        self.check_budget(&outboxes)?;
        self.inner.route_strict(outboxes)
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        self.preflight()?;
        self.inner.broadcast_all(values)
    }

    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        self.preflight()?;
        self.inner.broadcast_all_into(values, out)
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.preflight()?;
        if self.plan.max_message_words.is_some() {
            for words in per_node {
                self.assert_payload(words.len());
            }
        }
        self.inner.broadcast_all_words(per_node)
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        self.preflight()?;
        self.assert_payload(words.len());
        self.inner.broadcast_from(src, words)
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        self.preflight()?;
        if self.plan.max_message_words.is_some() {
            for words in per_node {
                self.assert_payload(words.len());
            }
        }
        self.inner.allgather(per_node)
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.preflight()?;
        self.inner.sort(per_node)
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.preflight()?;
        if self.plan.max_message_words.is_some() {
            for words in per_node {
                self.assert_payload(words.len());
            }
        }
        self.inner.gather_to(dst, per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    #[test]
    fn default_plan_is_transparent() {
        let mut bare = Clique::new(4);
        let mut wrapped = FaultComm::new(Clique::new(4), FaultPlan::default());
        let outboxes = || vec![vec![(1, vec![1, 2, 3])], vec![], vec![], vec![]];
        let a = bare.route(outboxes()).unwrap();
        let b = wrapped.route(outboxes()).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            bare.ledger().total_rounds(),
            wrapped.ledger().total_rounds()
        );
        assert_eq!(wrapped.injected_faults(), 0);
    }

    #[test]
    fn tightened_budget_makes_silent_batching_loud() {
        // Bare route batches a 9-word burst (charging 3 batches); the
        // fault transport with a 1·n budget rejects it instead.
        let plan = FaultPlan {
            routing_capacity_factor: Some(1),
            ..FaultPlan::default()
        };
        let mut comm = FaultComm::new(Clique::new(4), plan);
        let outboxes = vec![vec![(1, (0..9).collect())], vec![], vec![], vec![]];
        let err = comm.route(outboxes).unwrap_err();
        match err {
            ModelError::CongestionExceeded {
                node,
                words,
                capacity,
                sending,
            } => {
                assert_eq!((node, words, capacity, sending), (0, 9, 4, true));
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Nothing was charged for the rejected call.
        assert_eq!(comm.ledger().total_rounds(), 0);
    }

    #[test]
    fn forced_phase_fault_fires_only_in_matching_phases() {
        let plan = FaultPlan {
            fail_phases: vec!["doomed".into()],
            ..FaultPlan::default()
        };
        let mut comm = FaultComm::new(Clique::new(4), plan);
        let outboxes = || vec![vec![(1, vec![1])], vec![], vec![], vec![]];
        assert!(comm.route(outboxes()).is_ok());
        let err = comm
            .phase("doomed", |comm| comm.route(outboxes()))
            .unwrap_err();
        assert_eq!(
            err,
            ModelError::CongestionExceeded {
                node: 0,
                words: 0,
                capacity: 0,
                sending: true
            }
        );
        // Nested phases match by path fragment.
        let err = comm
            .phase("outer", |comm| {
                comm.phase("doomed", |comm| {
                    comm.sort(&[vec![1], vec![], vec![], vec![]])
                })
            })
            .unwrap_err();
        assert_eq!(comm.injected_faults(), 2);
        assert!(matches!(err, ModelError::CongestionExceeded { .. }));
    }

    #[test]
    fn seeded_faults_are_deterministic() {
        let run = |seed: u64| {
            let plan = FaultPlan {
                seed,
                failure_rate: 0.5,
                ..FaultPlan::default()
            };
            let mut comm = FaultComm::new(Clique::new(4), plan);
            let pattern: Vec<bool> = (0..32)
                .map(|_| {
                    comm.route(vec![vec![(1, vec![1])], vec![], vec![], vec![]])
                        .is_ok()
                })
                .collect();
            pattern
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must differ");
        let oks = run(7).iter().filter(|&&ok| ok).count();
        assert!((4..=28).contains(&oks), "rate 0.5 wildly off: {oks}/32");
    }

    #[test]
    #[should_panic(expected = "payload budget")]
    fn oversized_payload_panics() {
        let plan = FaultPlan {
            max_message_words: Some(2),
            ..FaultPlan::default()
        };
        let mut comm = FaultComm::new(Clique::new(4), plan);
        let _ = comm.broadcast_from(0, &vec![1, 2, 3]);
    }
}
