//! [`AdversaryComm`]: a wrapping transport simulating *node-level*
//! adversaries — silent nodes, crash–recover nodes, and value-corrupting
//! nodes — under a seeded deterministic [`AdversarySchedule`].
//!
//! [`crate::FaultComm`] perturbs *calls* (a primitive fails, the caller
//! sees a typed error); this transport perturbs *nodes*, the
//! honest/faulty/malicious taxonomy of Byzantine-tolerant protocol
//! suites. Three strategies, all deterministic:
//!
//! * **silent** ([`AdversaryStrategy::Silent`]) — the node drops every
//!   outbound payload, forever. The congested clique is synchronous, so
//!   an expected-but-missing message is observable the round it fails to
//!   arrive: any primitive in which a silent node would have sent a
//!   nonempty payload returns [`ModelError::NodeSilenced`] instead of
//!   delivering partial data. Omission faults are therefore *detectable
//!   by construction* — they can never silently corrupt a result.
//! * **crash–recover** ([`AdversaryStrategy::CrashRecover`]) — silent
//!   exactly while the ledger's total round count lies inside the
//!   scheduled `[from_round, until_round)` window, honest otherwise.
//!   Because round accounting is bitwise identical across substrates,
//!   the crash window opens and closes at the same calls on a
//!   [`crate::Clique`] and a [`crate::ThreadedComm`].
//! * **value-corrupting** ([`AdversaryStrategy::Corrupt`]) — the node's
//!   payloads are delivered with one deterministically chosen word
//!   bit-flipped (low bit, drawn from a SplitMix64 stream keyed by the
//!   schedule seed). Payload *lengths* never change, so congestion
//!   accounting and round charges are untouched — the corruption is
//!   invisible to the transport layer, exactly the fault a differential
//!   oracle (not the model) must catch.
//!
//! Every perturbation is recorded in a per-node, per-phase adversary
//! ledger exported as deterministic JSON ([`AdversaryComm::events_json`],
//! mirroring [`crate::TracingComm`]'s style), and the wrapper stacks
//! cleanly with `TracingComm`/`FaultComm` over any substrate.

use std::collections::BTreeMap;

use crate::{CliqueConfig, Communicator, Envelope, ModelError, NodeId, RoundLedger, Words};

/// Per-node behavior under an [`AdversarySchedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryStrategy {
    /// Follows the protocol (the default for unscheduled nodes).
    Honest,
    /// Drops every outbound payload, forever. Detectable: the first
    /// primitive expecting the node to send fails with
    /// [`ModelError::NodeSilenced`].
    Silent,
    /// Dead (as [`AdversaryStrategy::Silent`]) while the ledger's total
    /// rounds lie in `[from_round, until_round)`; honest otherwise.
    CrashRecover {
        /// First ledger round (inclusive) of the crash window.
        from_round: u64,
        /// First ledger round past the crash window (exclusive).
        until_round: u64,
    },
    /// Delivers payloads with one deterministically drawn word
    /// bit-flipped per primitive call — same word counts, same rounds,
    /// silently wrong data. Undetectable at the transport layer.
    Corrupt,
}

impl AdversaryStrategy {
    /// Short stable label used by the events ledger and its JSON export.
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryStrategy::Honest => "honest",
            AdversaryStrategy::Silent => "silent",
            AdversaryStrategy::CrashRecover { .. } => "crash_recover",
            AdversaryStrategy::Corrupt => "corrupt",
        }
    }
}

/// A seeded deterministic assignment of [`AdversaryStrategy`]s to nodes.
/// Nodes without an entry are honest. Two equal schedules drive two
/// bitwise-identical adversary runs, on any substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversarySchedule {
    /// Seed of the corruption word-draw stream (SplitMix64).
    pub seed: u64,
    strategies: BTreeMap<NodeId, AdversaryStrategy>,
}

impl AdversarySchedule {
    /// An all-honest schedule with the given corruption-stream seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            strategies: BTreeMap::new(),
        }
    }

    /// Builder: assigns `strategy` to `node` (replacing any previous
    /// assignment; [`AdversaryStrategy::Honest`] removes the entry).
    pub fn with(mut self, node: NodeId, strategy: AdversaryStrategy) -> Self {
        if strategy == AdversaryStrategy::Honest {
            self.strategies.remove(&node);
        } else {
            self.strategies.insert(node, strategy);
        }
        self
    }

    /// The strategy assigned to `node` (honest when unscheduled).
    pub fn strategy(&self, node: NodeId) -> &AdversaryStrategy {
        self.strategies
            .get(&node)
            .unwrap_or(&AdversaryStrategy::Honest)
    }

    /// The scheduled (non-honest) nodes with their strategies, in node
    /// order.
    pub fn scheduled(&self) -> impl Iterator<Item = (NodeId, &AdversaryStrategy)> {
        self.strategies.iter().map(|(&n, s)| (n, s))
    }

    /// True if every node is honest.
    pub fn is_honest(&self) -> bool {
        self.strategies.is_empty()
    }
}

/// What an adversarial node did in one primitive call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdversaryAction {
    /// The node withheld a scheduled payload; the primitive failed with
    /// [`ModelError::NodeSilenced`].
    Omission,
    /// One payload word was bit-flipped before delivery.
    Corruption {
        /// Index of the flipped word within the node's payloads of this
        /// call (message-major, word-minor).
        word_index: usize,
    },
}

impl AdversaryAction {
    fn label(&self) -> &'static str {
        match self {
            AdversaryAction::Omission => "omission",
            AdversaryAction::Corruption { .. } => "corruption",
        }
    }
}

/// One recorded adversary event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryEvent {
    /// Position in the global event order (0-based).
    pub seq: usize,
    /// The adversarial node.
    pub node: NodeId,
    /// Strategy label of the node at the time of the event.
    pub strategy: &'static str,
    /// What the node did.
    pub action: AdversaryAction,
    /// Primitive the event occurred in.
    pub primitive: &'static str,
    /// `/`-joined ledger phase path the event is nested under.
    pub phase: String,
    /// Ledger total rounds when the event fired.
    pub round: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A [`Communicator`] decorator executing a node-level
/// [`AdversarySchedule`] deterministically.
///
/// The perturbation sequence is a pure function of the schedule and the
/// call sequence (payload shapes and ledger rounds) — never of the
/// substrate — so an adversary run over [`crate::Clique`] and over
/// [`crate::ThreadedComm`] at any worker count produces bitwise
/// identical results, events, and [`AdversaryComm::events_json`].
///
/// # Example
///
/// ```
/// use cc_model::{
///     AdversaryComm, AdversarySchedule, AdversaryStrategy, Clique, Communicator, ModelError,
/// };
///
/// let schedule = AdversarySchedule::new(7).with(2, AdversaryStrategy::Silent);
/// let mut comm = AdversaryComm::new(Clique::new(4), schedule);
/// // Node 2 must broadcast but is silent: detected, not corrupted.
/// assert!(matches!(
///     comm.broadcast_all(&[1, 2, 3, 4]),
///     Err(ModelError::NodeSilenced { node: 2, .. })
/// ));
/// assert_eq!(comm.faults_observed(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct AdversaryComm<C: Communicator> {
    inner: C,
    schedule: AdversarySchedule,
    rng_state: u64,
    events: Vec<AdversaryEvent>,
    /// Event counts per `/`-joined phase path, per node.
    phases: BTreeMap<String, BTreeMap<NodeId, u64>>,
    omissions: u64,
    corruptions: u64,
}

impl<C: Communicator> AdversaryComm<C> {
    /// Wraps `inner` under the given schedule.
    pub fn new(inner: C, schedule: AdversarySchedule) -> Self {
        let mut rng_state = schedule.seed ^ 0x9E37_79B9_7F4A_7C15;
        let _ = splitmix64(&mut rng_state);
        Self {
            inner,
            schedule,
            rng_state,
            events: Vec::new(),
            phases: BTreeMap::new(),
            omissions: 0,
            corruptions: 0,
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding the schedule and events.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &AdversarySchedule {
        &self.schedule
    }

    /// The recorded adversary events, in call order.
    pub fn events(&self) -> &[AdversaryEvent] {
        &self.events
    }

    /// Omission events recorded so far (silenced sends).
    pub fn omissions(&self) -> u64 {
        self.omissions
    }

    /// Corruption events recorded so far (bit-flipped words).
    pub fn corruptions(&self) -> u64 {
        self.corruptions
    }

    /// Serializes the adversary ledger — schedule, totals, per-phase
    /// per-node event counts, and the event list — as deterministic JSON
    /// (byte-identical across runs and substrates of a deterministic
    /// workload, mirroring [`crate::TracingComm::trace_json`]).
    pub fn events_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"cc-model/adversary-v1\",\n");
        out.push_str(&format!("  \"n\": {},\n", self.inner.n()));
        out.push_str(&format!("  \"seed\": {},\n", self.schedule.seed));
        let strategies: Vec<String> = self
            .schedule
            .scheduled()
            .map(|(node, s)| format!("{{\"node\": {node}, \"strategy\": \"{}\"}}", s.label()))
            .collect();
        out.push_str(&format!("  \"strategies\": [{}],\n", strategies.join(", ")));
        out.push_str(&format!(
            "  \"events_total\": {},\n  \"omissions\": {},\n  \"corruptions\": {},\n",
            self.events.len(),
            self.omissions,
            self.corruptions
        ));
        out.push_str("  \"phases\": [\n");
        let rows: Vec<String> = self
            .phases
            .iter()
            .map(|(phase, nodes)| {
                let per_node: Vec<String> = nodes
                    .iter()
                    .map(|(node, count)| format!("{{\"node\": {node}, \"events\": {count}}}"))
                    .collect();
                format!(
                    "    {{\"phase\": \"{}\", \"nodes\": [{}]}}",
                    json_escape(phase),
                    per_node.join(", ")
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n");
        out.push_str("  \"events\": [\n");
        let rows: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                let word = match e.action {
                    AdversaryAction::Corruption { word_index } => word_index as i64,
                    AdversaryAction::Omission => -1,
                };
                format!(
                    "    {{\"seq\": {}, \"node\": {}, \"strategy\": \"{}\", \"action\": \"{}\", \
                     \"primitive\": \"{}\", \"phase\": \"{}\", \"round\": {}, \"word_index\": {}}}",
                    e.seq,
                    e.node,
                    e.strategy,
                    e.action.label(),
                    e.primitive,
                    json_escape(&e.phase),
                    e.round,
                    word
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// True if `node` is currently withholding messages (silent, or
    /// crash–recover inside its window at the current ledger round).
    fn withholding(&self, node: NodeId) -> bool {
        match self.schedule.strategy(node) {
            AdversaryStrategy::Silent => true,
            AdversaryStrategy::CrashRecover {
                from_round,
                until_round,
            } => {
                let round = self.inner.ledger().total_rounds();
                round >= *from_round && round < *until_round
            }
            _ => false,
        }
    }

    fn corrupting(&self, node: NodeId) -> bool {
        *self.schedule.strategy(node) == AdversaryStrategy::Corrupt
    }

    fn record(&mut self, node: NodeId, action: AdversaryAction, primitive: &'static str) {
        let phase = self.inner.ledger().current_phase().to_string();
        let round = self.inner.ledger().total_rounds();
        match action {
            AdversaryAction::Omission => self.omissions += 1,
            AdversaryAction::Corruption { .. } => self.corruptions += 1,
        }
        *self
            .phases
            .entry(phase.clone())
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
        self.events.push(AdversaryEvent {
            seq: self.events.len(),
            node,
            strategy: self.schedule.strategy(node).label(),
            action,
            primitive,
            phase,
            round,
        });
    }

    /// Fails the call with the detected omission of `node`.
    fn silenced(&mut self, node: NodeId, primitive: &'static str) -> ModelError {
        let round = self.inner.ledger().total_rounds();
        self.record(node, AdversaryAction::Omission, primitive);
        ModelError::NodeSilenced { node, round }
    }

    /// Flips the low bit of one deterministically drawn word among
    /// `node`'s nonempty payloads of this call. `payloads` indexes the
    /// node's messages (message-major); lengths are never changed, so
    /// congestion accounting is untouched.
    fn corrupt_payloads(
        &mut self,
        node: NodeId,
        payloads: &mut [&mut Words],
        primitive: &'static str,
    ) {
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        if total == 0 {
            return;
        }
        let word_index = (splitmix64(&mut self.rng_state) % total as u64) as usize;
        let mut remaining = word_index;
        for payload in payloads.iter_mut() {
            if remaining < payload.len() {
                payload[remaining] ^= 1;
                break;
            }
            remaining -= payload.len();
        }
        self.record(node, AdversaryAction::Corruption { word_index }, primitive);
    }

    /// Screens an outbox-style message set: a withholding node with any
    /// nonempty payload detects as an omission; corrupting nodes get one
    /// word flipped in place.
    fn screen_outboxes(
        &mut self,
        outboxes: &mut [Vec<(NodeId, Words)>],
        primitive: &'static str,
    ) -> Result<(), ModelError> {
        if self.schedule.is_honest() {
            return Ok(());
        }
        for (src, outbox) in outboxes.iter_mut().enumerate() {
            let sends = outbox.iter().any(|(_, p)| !p.is_empty());
            if !sends {
                continue;
            }
            if self.withholding(src) {
                return Err(self.silenced(src, primitive));
            }
            if self.corrupting(src) {
                let mut payloads: Vec<&mut Words> = outbox
                    .iter_mut()
                    .map(|(_, p)| p)
                    .filter(|p| !p.is_empty())
                    .collect();
                self.corrupt_payloads(src, &mut payloads, primitive);
            }
        }
        Ok(())
    }

    /// Screens a per-node word-vector set (broadcast family, allgather,
    /// sort, gather): returns the possibly corrupted rows to pass down,
    /// or the detected omission.
    fn screen_vectors(
        &mut self,
        per_node: &[Words],
        primitive: &'static str,
    ) -> Result<Option<Vec<Words>>, ModelError> {
        if self.schedule.is_honest() {
            return Ok(None);
        }
        let mut owned: Option<Vec<Words>> = None;
        for (node, words) in per_node.iter().enumerate() {
            if words.is_empty() {
                continue;
            }
            if self.withholding(node) {
                return Err(self.silenced(node, primitive));
            }
            if self.corrupting(node) {
                let rows = owned.get_or_insert_with(|| per_node.to_vec());
                let mut payloads = vec![&mut rows[node]];
                self.corrupt_payloads(node, &mut payloads, primitive);
            }
        }
        Ok(owned)
    }
}

impl<C: Communicator> Communicator for AdversaryComm<C> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn config(&self) -> CliqueConfig {
        self.inner.config()
    }

    fn ledger(&self) -> &RoundLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        self.inner.ledger_mut()
    }

    fn faults_observed(&self) -> u64 {
        self.events.len() as u64 + self.inner.faults_observed()
    }

    fn push_phase(&mut self, name: &str) {
        self.inner.push_phase(name);
    }

    fn pop_phase(&mut self) {
        self.inner.pop_phase();
    }

    fn charge_oracle(&mut self, rounds: u64) {
        self.inner.charge_oracle(rounds);
    }

    fn charge_implemented(&mut self, rounds: u64) {
        self.inner.charge_implemented(rounds);
    }

    fn exchange(
        &mut self,
        mut outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.screen_outboxes(&mut outboxes, "exchange")?;
        self.inner.exchange(outboxes)
    }

    fn route(
        &mut self,
        mut outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.screen_outboxes(&mut outboxes, "route")?;
        self.inner.route(outboxes)
    }

    fn route_strict(
        &mut self,
        mut outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.screen_outboxes(&mut outboxes, "route_strict")?;
        self.inner.route_strict(outboxes)
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        // Every node is a one-word sender here, so a withholding node is
        // always detected, regardless of its value.
        if !self.schedule.is_honest() {
            let mut owned: Option<Vec<u64>> = None;
            for node in 0..values.len().min(self.inner.n()) {
                if self.withholding(node) {
                    return Err(self.silenced(node, "broadcast_all"));
                }
                if self.corrupting(node) {
                    let vals = owned.get_or_insert_with(|| values.to_vec());
                    let _ = splitmix64(&mut self.rng_state); // one-word draw
                    vals[node] ^= 1;
                    self.record(
                        node,
                        AdversaryAction::Corruption { word_index: 0 },
                        "broadcast_all",
                    );
                }
            }
            if let Some(vals) = owned {
                return self.inner.broadcast_all(&vals);
            }
        }
        self.inner.broadcast_all(values)
    }

    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        // Route through `broadcast_all` so screening, events, and the
        // corruption stream are identical to the allocating variant.
        let view = self.broadcast_all(values)?;
        out.clear();
        out.extend_from_slice(&view);
        Ok(())
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        match self.screen_vectors(per_node, "broadcast_all_words")? {
            Some(rows) => self.inner.broadcast_all_words(&rows),
            None => self.inner.broadcast_all_words(per_node),
        }
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        if !words.is_empty() && self.withholding(src) {
            return Err(self.silenced(src, "broadcast_from"));
        }
        if !words.is_empty() && self.corrupting(src) {
            let mut row = words.clone();
            let mut payloads = vec![&mut row];
            self.corrupt_payloads(src, &mut payloads, "broadcast_from");
            return self.inner.broadcast_from(src, &row);
        }
        self.inner.broadcast_from(src, words)
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        match self.screen_vectors(per_node, "allgather")? {
            Some(rows) => self.inner.allgather(&rows),
            None => self.inner.allgather(per_node),
        }
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        match self.screen_vectors(per_node, "sort")? {
            Some(rows) => self.inner.sort(&rows),
            None => self.inner.sort(per_node),
        }
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        match self.screen_vectors(per_node, "gather_to")? {
            Some(rows) => self.inner.gather_to(dst, &rows),
            None => self.inner.gather_to(dst, per_node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    fn one_word_outboxes(n: usize, src: NodeId) -> Vec<Vec<(NodeId, Words)>> {
        let mut out = vec![Vec::new(); n];
        out[src].push(((src + 1) % n, vec![42]));
        out
    }

    #[test]
    fn honest_schedule_is_transparent() {
        let mut bare = Clique::new(4);
        let mut wrapped = AdversaryComm::new(Clique::new(4), AdversarySchedule::new(3));
        let a = bare.broadcast_all(&[1, 2, 3, 4]).unwrap();
        let b = wrapped.broadcast_all(&[1, 2, 3, 4]).unwrap();
        assert_eq!(a, b);
        assert_eq!(
            bare.ledger().total_rounds(),
            wrapped.ledger().total_rounds()
        );
        assert_eq!(wrapped.faults_observed(), 0);
        assert!(wrapped.events().is_empty());
    }

    #[test]
    fn silent_node_is_detected_when_it_must_send() {
        let schedule = AdversarySchedule::new(1).with(2, AdversaryStrategy::Silent);
        let mut comm = AdversaryComm::new(Clique::new(4), schedule);
        // Node 2 has no payload: the call passes through untouched.
        assert!(comm.route(one_word_outboxes(4, 0)).is_ok());
        assert_eq!(comm.omissions(), 0);
        // Node 2 must send: detected as a typed omission.
        let err = comm.route(one_word_outboxes(4, 2)).unwrap_err();
        assert!(matches!(err, ModelError::NodeSilenced { node: 2, .. }));
        assert_eq!(comm.omissions(), 1);
        // broadcast_all makes every node a sender: always detected.
        let err = comm.broadcast_all(&[0, 0, 0, 0]).unwrap_err();
        assert!(matches!(err, ModelError::NodeSilenced { node: 2, .. }));
        assert_eq!(comm.faults_observed(), 2);
    }

    #[test]
    fn crash_recover_is_dead_only_inside_its_window() {
        let schedule = AdversarySchedule::new(1).with(
            1,
            AdversaryStrategy::CrashRecover {
                from_round: 0,
                until_round: 2,
            },
        );
        let mut comm = AdversaryComm::new(Clique::new(4), schedule);
        // Round 0: inside the window — dead.
        assert!(comm.broadcast_all(&[9, 9, 9, 9]).is_err());
        // Charging rounds moves time forward past the window.
        comm.charge_implemented(2);
        assert_eq!(comm.broadcast_all(&[9, 9, 9, 9]).unwrap(), vec![9; 4]);
        assert_eq!(comm.omissions(), 1);
    }

    #[test]
    fn corruption_flips_one_low_bit_and_keeps_lengths() {
        let schedule = AdversarySchedule::new(5).with(0, AdversaryStrategy::Corrupt);
        let mut comm = AdversaryComm::new(Clique::new(4), schedule);
        let view = comm.broadcast_all(&[4, 5, 6, 7]).unwrap();
        assert_eq!(view[0], 5, "node 0's word has its low bit flipped");
        assert_eq!(&view[1..], &[5, 6, 7], "honest words untouched");
        assert_eq!(comm.corruptions(), 1);

        // Multi-word payloads: exactly one word differs, length equal.
        let out = comm
            .route(vec![vec![(1, vec![10, 20, 30])], vec![], vec![], vec![]])
            .unwrap();
        let got = &out[1][0].payload;
        assert_eq!(got.len(), 3);
        let diffs = got
            .iter()
            .zip(&[10u64, 20, 30])
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1, "exactly one word corrupted: {got:?}");
        assert_eq!(comm.faults_observed(), 2);
    }

    #[test]
    fn corruption_stream_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let schedule = AdversarySchedule::new(seed).with(0, AdversaryStrategy::Corrupt);
            let mut comm = AdversaryComm::new(Clique::new(4), schedule);
            let mut words = Vec::new();
            for k in 0..8u64 {
                let out = comm
                    .route(vec![
                        vec![(1, vec![k, k + 100, k + 200, k + 300, k + 400])],
                        vec![],
                        vec![],
                        vec![],
                    ])
                    .unwrap();
                words.extend(out[1][0].payload.clone());
            }
            (words, comm.events_json())
        };
        assert_eq!(run(11), run(11), "same seed, same corruption");
        assert_ne!(run(11).0, run(12).0, "different seeds differ");
    }

    #[test]
    fn events_json_is_deterministic_and_structured() {
        let run = || {
            let schedule = AdversarySchedule::new(5)
                .with(0, AdversaryStrategy::Corrupt)
                .with(3, AdversaryStrategy::Silent);
            let mut comm = AdversaryComm::new(Clique::new(4), schedule);
            comm.phase("demo", |comm| {
                comm.broadcast_all(&[1, 2, 3, 4]).unwrap_err();
            });
            comm.events_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"schema\": \"cc-model/adversary-v1\""));
        assert!(a.contains("\"phase\": \"demo\""));
        assert!(a.contains("\"action\": \"omission\""));
        assert!(a.contains("\"strategy\": \"silent\""));
    }

    #[test]
    fn empty_payloads_from_withholding_nodes_are_tolerated() {
        let schedule = AdversarySchedule::new(1).with(1, AdversaryStrategy::Silent);
        let mut comm = AdversaryComm::new(Clique::new(4), schedule);
        // Node 1 contributes an empty vector everywhere: nothing to drop.
        let rows = vec![vec![7], vec![], vec![8], vec![9]];
        assert!(comm.broadcast_all_words(&rows).is_ok());
        assert!(comm.allgather(&rows).is_ok());
        assert!(comm.gather_to(0, &rows).is_ok());
        assert!(comm.broadcast_from(0, &vec![1, 2]).is_ok());
        assert_eq!(comm.faults_observed(), 0);
        // But a nonempty contribution from node 1 detects.
        let rows = vec![vec![7], vec![1], vec![8], vec![9]];
        assert!(matches!(
            comm.broadcast_all_words(&rows),
            Err(ModelError::NodeSilenced { node: 1, .. })
        ));
    }
}
