use std::collections::BTreeMap;
use std::fmt;

/// How a batch of rounds was accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostKind {
    /// Rounds of communication the simulator actually performed
    /// (message sets checked against the model's bandwidth rules).
    Implemented,
    /// Rounds charged by formula for an oracle subroutine that is
    /// substituted rather than executed distributedly (see `DESIGN.md` §2),
    /// e.g. the \[CS20\] expander decomposition or fast-matrix-multiplication
    /// APSP accounting.
    Charged,
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostKind::Implemented => write!(f, "implemented"),
            CostKind::Charged => write!(f, "charged"),
        }
    }
}

/// Rounds attributed to one named phase, split by [`CostKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Rounds of executed communication.
    pub implemented: u64,
    /// Rounds charged for oracle substitutions.
    pub charged: u64,
}

impl PhaseCost {
    /// Total rounds of the phase (implemented + charged).
    pub fn total(&self) -> u64 {
        self.implemented + self.charged
    }
}

/// Accumulates the round complexity of a simulated execution, attributed to
/// nested phases.
///
/// Phases form a stack: [`RoundLedger::push_phase`] /
/// [`RoundLedger::pop_phase`] (or the RAII-free helpers on
/// [`crate::Clique`]). Rounds are attributed to the *innermost* active phase
/// (and contribute to the grand total); the phase stack's joined name (e.g.
/// `"maxflow/augmentation/laplacian"`) is the attribution key.
#[derive(Debug, Clone, Default)]
pub struct RoundLedger {
    total: PhaseCost,
    phases: BTreeMap<String, PhaseCost>,
    /// `/`-joined name of the current phase stack — maintained incrementally
    /// so [`RoundLedger::charge`] never allocates in steady state (each
    /// phase key is cloned into `phases` once, on its first charge).
    path: String,
    /// `path.len()` snapshots taken before each push, so a pop is a
    /// truncation.
    depths: Vec<usize>,
}

impl RoundLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of rounds accounted so far (implemented + charged).
    pub fn total_rounds(&self) -> u64 {
        self.total.total()
    }

    /// Rounds of communication actually executed by the simulator.
    pub fn implemented_rounds(&self) -> u64 {
        self.total.implemented
    }

    /// Rounds charged for oracle substitutions.
    pub fn charged_rounds(&self) -> u64 {
        self.total.charged
    }

    /// Per-phase breakdown, keyed by `/`-joined phase stack names.
    pub fn phases(&self) -> &BTreeMap<String, PhaseCost> {
        &self.phases
    }

    /// Rounds of the phase whose joined name is exactly `name`
    /// ([`PhaseCost::default`] if the phase never ran).
    pub fn phase(&self, name: &str) -> PhaseCost {
        self.phases.get(name).copied().unwrap_or_default()
    }

    /// Sum of rounds over all phases whose joined name starts with `prefix`.
    pub fn phase_prefix_total(&self, prefix: &str) -> u64 {
        self.phases
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v.total())
            .sum()
    }

    /// Enters a nested phase named `name`.
    pub fn push_phase(&mut self, name: impl AsRef<str>) {
        self.depths.push(self.path.len());
        if self.depths.len() > 1 {
            self.path.push('/');
        }
        self.path.push_str(name.as_ref());
    }

    /// Leaves the innermost phase.
    ///
    /// A pop without a matching push is a programming error in the calling
    /// algorithm; it trips a debug assertion (and is ignored in release
    /// builds, where an unbalanced pop cannot corrupt the counters — only
    /// the attribution of later charges).
    pub fn pop_phase(&mut self) {
        let popped = self.depths.pop();
        debug_assert!(
            popped.is_some(),
            "RoundLedger::pop_phase called with empty phase stack"
        );
        if let Some(len) = popped {
            self.path.truncate(len);
        }
    }

    /// Name of the current phase stack, `/`-joined (empty string at top level).
    pub fn current_phase(&self) -> &str {
        &self.path
    }

    /// Records `rounds` rounds of the given kind against the current phase.
    ///
    /// Allocation-free once the phase has been charged before: the joined
    /// phase name is maintained incrementally and the key is only cloned on
    /// the first charge of a phase.
    pub fn charge(&mut self, rounds: u64, kind: CostKind) {
        if !self.phases.contains_key(self.path.as_str()) {
            self.phases.insert(self.path.clone(), PhaseCost::default());
        }
        if let Some(entry) = self.phases.get_mut(self.path.as_str()) {
            match kind {
                CostKind::Implemented => {
                    entry.implemented += rounds;
                    self.total.implemented += rounds;
                }
                CostKind::Charged => {
                    entry.charged += rounds;
                    self.total.charged += rounds;
                }
            }
        }
    }

    /// Resets all counters and the phase stack.
    pub fn reset(&mut self) {
        *self = RoundLedger::new();
    }

    /// Renders a human-readable table of the per-phase breakdown.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "total rounds: {} (implemented {}, charged {})\n",
            self.total_rounds(),
            self.total.implemented,
            self.total.charged
        ));
        for (name, cost) in &self.phases {
            let label = if name.is_empty() {
                "<top>"
            } else {
                name.as_str()
            };
            out.push_str(&format!(
                "  {label:<48} {:>10} (impl {:>8}, charged {:>8})\n",
                cost.total(),
                cost.implemented,
                cost.charged
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_zero() {
        let ledger = RoundLedger::new();
        assert_eq!(ledger.total_rounds(), 0);
        assert_eq!(ledger.phase("anything"), PhaseCost::default());
        assert!(ledger.phases().is_empty());
    }

    #[test]
    fn charges_accumulate_per_phase() {
        let mut ledger = RoundLedger::new();
        ledger.charge(2, CostKind::Implemented);
        ledger.push_phase("solve");
        ledger.charge(5, CostKind::Implemented);
        ledger.push_phase("inner");
        ledger.charge(7, CostKind::Charged);
        ledger.pop_phase();
        ledger.charge(1, CostKind::Implemented);
        ledger.pop_phase();
        assert_eq!(ledger.total_rounds(), 15);
        assert_eq!(ledger.implemented_rounds(), 8);
        assert_eq!(ledger.charged_rounds(), 7);
        assert_eq!(ledger.phase("").implemented, 2);
        assert_eq!(ledger.phase("solve").implemented, 6);
        assert_eq!(ledger.phase("solve/inner").charged, 7);
        assert_eq!(ledger.phase_prefix_total("solve"), 13);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "empty phase stack")]
    fn pop_without_push_is_a_debug_assertion() {
        let mut ledger = RoundLedger::new();
        ledger.pop_phase();
    }

    #[test]
    fn nested_push_pop_balance() {
        let mut ledger = RoundLedger::new();
        for depth in ["a", "b", "c"] {
            ledger.push_phase(depth);
        }
        assert_eq!(ledger.current_phase(), "a/b/c");
        ledger.pop_phase();
        ledger.push_phase("d");
        assert_eq!(ledger.current_phase(), "a/b/d");
        ledger.pop_phase();
        ledger.pop_phase();
        ledger.pop_phase();
        assert_eq!(ledger.current_phase(), "");
    }

    #[test]
    fn report_mentions_all_phases() {
        let mut ledger = RoundLedger::new();
        ledger.push_phase("alpha");
        ledger.charge(3, CostKind::Implemented);
        ledger.pop_phase();
        let report = ledger.report();
        assert!(report.contains("alpha"));
        assert!(report.contains("total rounds: 3"));
    }

    #[test]
    fn reset_clears_everything() {
        let mut ledger = RoundLedger::new();
        ledger.push_phase("p");
        ledger.charge(4, CostKind::Charged);
        ledger.pop_phase();
        ledger.reset();
        assert_eq!(ledger.total_rounds(), 0);
        assert!(ledger.phases().is_empty());
        assert_eq!(ledger.current_phase(), "");
    }
}
