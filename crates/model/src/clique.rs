use crate::{delivery, Communicator, CostKind, ModelError, NodeId, RoundLedger, Words};

/// Which communication primitives the simulated model admits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommunicationMode {
    /// The (unicast) congested clique \[LPSPP05\]: per round, every
    /// ordered pair may exchange one word. All primitives available.
    #[default]
    Unicast,
    /// The Broadcast Congested Clique \[DKO12\] (§2.1 of the paper): per
    /// round every node sends the *same* word to everyone. Point-to-point
    /// primitives ([`Clique::exchange`], [`Clique::route`]) are rejected —
    /// which operationalizes the paper's §1.1 observation that Eulerian
    /// orientation (and hence flow rounding) "seems to be a hard problem
    /// in the Broadcast Congested Clique", while the Laplacian solver's
    /// broadcast-only communication pattern still runs (cf. \[FV22\]).
    Broadcast,
}

/// Tunable accounting constants of the simulated model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CliqueConfig {
    /// Rounds charged per application of Lenzen's routing theorem
    /// \[Len13\]. The theorem proves 16; the paper only uses that it is
    /// `O(1)`. Default: 2.
    pub lenzen_rounds: u64,
    /// Per-node word budget of one routing application, as a multiple of
    /// `n`. Lenzen's theorem uses factor 1 (send ≤ n, receive ≤ n words).
    pub routing_capacity_factor: usize,
    /// Unicast (default) or broadcast-only communication.
    pub mode: CommunicationMode,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        Self {
            lenzen_rounds: 2,
            routing_capacity_factor: 1,
            mode: CommunicationMode::Unicast,
        }
    }
}

/// A message as seen by its recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sender of the message.
    pub src: NodeId,
    /// Payload words.
    pub payload: Words,
}

/// A simulated congested clique of `n` nodes.
///
/// The struct owns no per-node state — algorithms keep their node states in
/// ordinary `Vec`s indexed by [`NodeId`] and call the communication
/// primitives here, which deliver messages deterministically and charge
/// rounds to the [`RoundLedger`].
///
/// # Round accounting
///
/// | primitive | rounds charged |
/// |-----------|----------------|
/// | [`exchange`](Clique::exchange) | max over ordered pairs of words sent on that pair |
/// | [`route`](Clique::route) | `lenzen_rounds · ⌈max node load / (capacity·n)⌉` |
/// | [`broadcast_all`](Clique::broadcast_all) | `max_i ⌈words_i⌉` (1 word from everyone to everyone per round) |
/// | [`broadcast_from`](Clique::broadcast_from) | `⌈w/(n−1)⌉ + 1` for `w > 1`, else `w` |
/// | [`allgather`](Clique::allgather) | balancing route + `⌈total/n⌉` broadcast rounds |
/// | [`gather_to`](Clique::gather_to) | `⌈total/(n−1)⌉` |
/// | [`charge_oracle`](Clique::charge_oracle) | the given formula cost, tagged [`CostKind::Charged`] |
#[derive(Debug, Clone)]
pub struct Clique {
    n: usize,
    config: CliqueConfig,
    ledger: RoundLedger,
}

impl Clique {
    /// Creates a clique of `n` nodes with default accounting constants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` — the model needs at least one ordered pair.
    pub fn new(n: usize) -> Self {
        Self::with_config(n, CliqueConfig::default())
    }

    /// Creates a clique of `n` nodes with explicit accounting constants.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or if `config.routing_capacity_factor == 0`.
    pub fn with_config(n: usize, config: CliqueConfig) -> Self {
        assert!(n >= 2, "congested clique needs at least 2 nodes, got {n}");
        assert!(
            config.routing_capacity_factor >= 1,
            "routing capacity factor must be positive"
        );
        Self {
            n,
            config,
            ledger: RoundLedger::new(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The accounting constants in effect.
    pub fn config(&self) -> CliqueConfig {
        self.config
    }

    /// Read access to the round ledger.
    pub fn ledger(&self) -> &RoundLedger {
        &self.ledger
    }

    /// Mutable access to the round ledger (e.g. to reset between phases of
    /// a benchmark).
    pub fn ledger_mut(&mut self) -> &mut RoundLedger {
        &mut self.ledger
    }

    /// Runs `f` inside a named ledger phase, so all rounds charged by `f`
    /// are attributed under `name`. The phase is popped even if `f`
    /// unwinds (drop guard), keeping the phase stack balanced.
    pub fn phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        crate::comm::scoped_phase(self, name, f)
    }

    /// Charges `rounds` rounds for an oracle subroutine that is simulated
    /// rather than executed distributedly (tagged [`CostKind::Charged`];
    /// see `DESIGN.md` §2).
    pub fn charge_oracle(&mut self, rounds: u64) {
        self.ledger.charge(rounds, CostKind::Charged);
    }

    /// Charges `rounds` implemented rounds without moving data — used by
    /// primitives built on top of the simulator whose data movement is
    /// performed by the caller (rare; prefer the message primitives).
    pub fn charge_implemented(&mut self, rounds: u64) {
        self.ledger.charge(rounds, CostKind::Implemented);
    }

    /// Direct point-to-point exchange.
    ///
    /// `outboxes[u]` lists the `(destination, payload)` messages node `u`
    /// sends. Rounds charged: the maximum, over ordered pairs `(u, v)`, of
    /// the total number of payload words sent from `u` to `v` — i.e. the
    /// messages are pushed through the per-pair links without any routing
    /// cleverness.
    ///
    /// Returns `inboxes[v]`: the envelopes received by each node, sorted by
    /// sender.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `outboxes.len() != n`;
    /// [`ModelError::InvalidNode`] on an out-of-range destination.
    pub fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        delivery::unicast_gate(&self.config)?;
        delivery::check_outboxes(self.n, &outboxes)?;
        let max_pair = delivery::exchange_cost(self.n, &outboxes);
        self.ledger.charge(max_pair, CostKind::Implemented);
        Ok(delivery::deliver(self.n, outboxes))
    }

    /// Routed exchange via Lenzen's routing theorem \[Len13\].
    ///
    /// Any message set in which every node sends at most `n` words and
    /// receives at most `n` words is deliverable in `O(1)` rounds. Larger
    /// batches are automatically split: with maximum per-node load `L`, the
    /// cost is `lenzen_rounds · ⌈L / (capacity·n)⌉`.
    ///
    /// # Errors
    ///
    /// Same structural errors as [`Clique::exchange`].
    pub fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        delivery::unicast_gate(&self.config)?;
        delivery::check_outboxes(self.n, &outboxes)?;
        let (send, recv) = delivery::shard_loads(self.n, &outboxes);
        let load = send.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        if load > 0 {
            let rounds = delivery::route_cost(&self.config, self.n, load);
            self.ledger.charge(rounds, CostKind::Implemented);
        }
        Ok(delivery::deliver(self.n, outboxes))
    }

    /// Like [`Clique::route`], but fails instead of batching when a node's
    /// load exceeds one application of the routing theorem.
    ///
    /// # Errors
    ///
    /// [`ModelError::CongestionExceeded`] if some node would send or receive
    /// more than `capacity·n` words, plus the structural errors of
    /// [`Clique::exchange`].
    pub fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        delivery::check_outboxes(self.n, &outboxes)?;
        let (send, recv) = delivery::shard_loads(self.n, &outboxes);
        delivery::strict_violation(&self.config, self.n, &send, &recv)?;
        self.route(outboxes)
    }

    /// Every node broadcasts one word; everyone learns all `n` words.
    ///
    /// This is the classic 1-round all-to-all broadcast (each ordered pair
    /// carries exactly one word). Returns the shared view `values` in node
    /// order — identical at every node.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `values.len() != n`.
    pub fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        delivery::check_len(self.n, values.len())?;
        self.ledger
            .charge(delivery::broadcast_all_cost(), CostKind::Implemented);
        Ok(values.to_vec())
    }

    /// [`Clique::broadcast_all`] into a caller-owned buffer: identical
    /// round accounting and shared view, but `out` is cleared and refilled
    /// instead of allocating a fresh vector — allocation-free once `out`
    /// has capacity `n`. Used by the per-iteration solver hot paths.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `values.len() != n` (leaving
    /// `out` untouched).
    pub fn broadcast_all_into(
        &mut self,
        values: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<(), ModelError> {
        delivery::check_len(self.n, values.len())?;
        self.ledger
            .charge(delivery::broadcast_all_cost(), CostKind::Implemented);
        out.clear();
        out.extend_from_slice(values);
        Ok(())
    }

    /// Every node broadcasts a word vector; everyone learns all of them.
    ///
    /// Node `i` broadcasts `per_node[i]` (possibly empty). Cost: one round
    /// per word of the longest vector (`max_i |per_node[i]|`), since in each
    /// round every node can ship one word to all others. Returns the shared
    /// per-source view, identical at every node.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`.
    pub fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        delivery::check_len(self.n, per_node.len())?;
        self.ledger.charge(
            delivery::broadcast_words_cost(per_node),
            CostKind::Implemented,
        );
        Ok(per_node.to_vec())
    }

    /// One node broadcasts `w` words to everyone.
    ///
    /// For `w ≤ 1` this is direct (cost `w`). For larger payloads the
    /// standard doubling trick applies: the source scatters the words over
    /// distinct helper nodes (`⌈w/(n−1)⌉` rounds), then every helper
    /// broadcasts its words (`⌈w/(n−1)⌉` rounds). Total
    /// `2·⌈w/(n−1)⌉` rounds.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidNode`] if `src` is out of range.
    pub fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        if src >= self.n {
            return Err(ModelError::InvalidNode {
                node: src,
                n: self.n,
            });
        }
        let rounds = delivery::broadcast_from_cost(&self.config, self.n, words.len() as u64);
        self.ledger.charge(rounds, CostKind::Implemented);
        Ok(words.clone())
    }

    /// Everyone learns everyone's word vector (all-gather).
    ///
    /// Semantically equivalent to [`Clique::broadcast_all_words`] but with
    /// load balancing: the words are first spread evenly over the clique
    /// with Lenzen routing, then broadcast at `n` words per round. With
    /// total volume `W` and maximum per-node contribution `L`, the cost is
    /// `lenzen_rounds·⌈L/n⌉ + ⌈W/n⌉` (in broadcast mode: the unbalanced
    /// `max_i w_i`). Use this instead of `broadcast_all_words` when
    /// contributions are skewed.
    ///
    /// Returns the concatenation of all vectors in node order (identical at
    /// every node), together with per-node offsets.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`.
    pub fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        delivery::check_len(self.n, per_node.len())?;
        // Broadcast mode always touches the ledger (the fallback broadcast
        // runs even when empty); the balanced path is free for empty input.
        let nonempty = per_node.iter().any(|w| !w.is_empty());
        if self.config.mode == CommunicationMode::Broadcast || nonempty {
            let rounds = delivery::allgather_cost(&self.config, self.n, per_node);
            self.ledger.charge(rounds, CostKind::Implemented);
        }
        Ok(delivery::concat_words(self.n, per_node))
    }

    /// Globally sorts all keys across the clique (Lenzen's deterministic
    /// sorting theorem \[Len13\]: `n` keys per node are sorted in `O(1)`
    /// rounds). Node `i` receives the `i`-th block of the global sorted
    /// order (blocks as equal as possible, earlier blocks one longer when
    /// the total is not divisible by `n`). Larger inputs are batched like
    /// [`Clique::route`]: `lenzen_rounds · ⌈max per-node keys / n⌉` rounds.
    ///
    /// Ties are broken stably by (key, contributing node, position).
    ///
    /// # Errors
    ///
    /// [`ModelError::BroadcastOnly`] in broadcast mode;
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`.
    pub fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        delivery::unicast_gate(&self.config)?;
        delivery::check_len(self.n, per_node.len())?;
        if per_node.iter().any(|w| !w.is_empty()) {
            let rounds = delivery::sort_cost(&self.config, self.n, per_node);
            self.ledger.charge(rounds, CostKind::Implemented);
        }
        Ok(delivery::sorted_blocks(self.n, per_node))
    }

    /// Every node sends its word vector to a single destination.
    ///
    /// Cost: `⌈W/(n−1)⌉` rounds for total volume `W` (the destination can
    /// receive `n−1` words per round).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidNode`] if `dst` is out of range;
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`.
    pub fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        delivery::unicast_gate(&self.config)?;
        if dst >= self.n {
            return Err(ModelError::InvalidNode {
                node: dst,
                n: self.n,
            });
        }
        delivery::check_len(self.n, per_node.len())?;
        self.ledger.charge(
            delivery::gather_cost(self.n, per_node),
            CostKind::Implemented,
        );
        Ok(per_node.to_vec())
    }
}

/// The canonical [`Communicator`]: every trait primitive delegates to the
/// simulator's inherent method of the same name, so generic algorithm code
/// and direct `Clique` callers charge identical rounds.
impl Communicator for Clique {
    fn n(&self) -> usize {
        Clique::n(self)
    }

    fn config(&self) -> CliqueConfig {
        Clique::config(self)
    }

    fn ledger(&self) -> &RoundLedger {
        Clique::ledger(self)
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        Clique::ledger_mut(self)
    }

    fn charge_oracle(&mut self, rounds: u64) {
        Clique::charge_oracle(self, rounds)
    }

    fn charge_implemented(&mut self, rounds: u64) {
        Clique::charge_implemented(self, rounds)
    }

    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        Clique::exchange(self, outboxes)
    }

    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        Clique::route(self, outboxes)
    }

    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        Clique::route_strict(self, outboxes)
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        Clique::broadcast_all(self, values)
    }

    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        Clique::broadcast_all_into(self, values, out)
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        Clique::broadcast_all_words(self, per_node)
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        Clique::broadcast_from(self, src, words)
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        Clique::allgather(self, per_node)
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        Clique::sort(self, per_node)
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        Clique::gather_to(self, dst, per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_all_costs_one_round() {
        let mut clique = Clique::new(4);
        let view = clique.broadcast_all(&[10, 11, 12, 13]).unwrap();
        assert_eq!(view, vec![10, 11, 12, 13]);
        assert_eq!(clique.ledger().total_rounds(), 1);
    }

    #[test]
    fn exchange_charges_max_pair_words() {
        let mut clique = Clique::new(3);
        // node 0 sends 3 words to node 1 (two messages), node 2 sends 1 word to 0.
        let outboxes = vec![
            vec![(1, vec![1, 2]), (1, vec![3])],
            vec![],
            vec![(0, vec![9])],
        ];
        let inboxes = clique.exchange(outboxes).unwrap();
        assert_eq!(clique.ledger().total_rounds(), 3);
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[1][0].src, 0);
        assert_eq!(inboxes[0][0].payload, vec![9]);
    }

    #[test]
    fn route_within_capacity_costs_lenzen_constant() {
        let mut clique = Clique::new(4);
        // Every node sends 4 = n words scattered around: one routing batch.
        let outboxes: Vec<Vec<(NodeId, Words)>> = (0..4)
            .map(|u| (0..4).map(|v| (v, vec![(u * 4 + v) as u64])).collect())
            .collect();
        clique.route(outboxes).unwrap();
        assert_eq!(
            clique.ledger().total_rounds(),
            clique.config().lenzen_rounds
        );
    }

    #[test]
    fn route_batches_when_overloaded() {
        let mut clique = Clique::new(4);
        // Node 0 sends 9 words to node 1: receive load 9 > n=4 => 3 batches.
        let outboxes = vec![
            vec![(1, (0..9).collect::<Vec<u64>>())],
            vec![],
            vec![],
            vec![],
        ];
        clique.route(outboxes).unwrap();
        assert_eq!(
            clique.ledger().total_rounds(),
            3 * clique.config().lenzen_rounds
        );
    }

    #[test]
    fn route_strict_rejects_overload() {
        let mut clique = Clique::new(4);
        let outboxes = vec![
            vec![(1, (0..9).collect::<Vec<u64>>())],
            vec![],
            vec![],
            vec![],
        ];
        let err = clique.route_strict(outboxes).unwrap_err();
        match err {
            ModelError::CongestionExceeded { node, words, .. } => {
                assert_eq!(node, 0);
                assert_eq!(words, 9);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn broadcast_from_cost_scales_with_payload() {
        let mut clique = Clique::new(5);
        clique.broadcast_from(2, &vec![7]).unwrap();
        assert_eq!(clique.ledger().total_rounds(), 1);
        let before = clique.ledger().total_rounds();
        clique.broadcast_from(0, &(0..8).collect()).unwrap();
        // ceil(8/4) = 2 scatter + 2 broadcast rounds.
        assert_eq!(clique.ledger().total_rounds() - before, 4);
    }

    #[test]
    fn allgather_concatenates_in_node_order() {
        let mut clique = Clique::new(3);
        let (all, offsets) = clique.allgather(&[vec![1, 2], vec![], vec![3]]).unwrap();
        assert_eq!(all, vec![1, 2, 3]);
        assert_eq!(offsets, vec![0, 2, 2, 3]);
        // total 3 words, max contribution 2: ceil(2/3)*lenzen + ceil(3/3) = 2+1.
        assert_eq!(clique.ledger().total_rounds(), 3);
    }

    #[test]
    fn gather_to_costs_total_over_links() {
        let mut clique = Clique::new(3);
        clique
            .gather_to(0, &[vec![], vec![1, 2, 3], vec![4]])
            .unwrap();
        assert_eq!(clique.ledger().total_rounds(), 2); // ceil(4/2)
    }

    #[test]
    fn phase_attribution() {
        let mut clique = Clique::new(2);
        clique.phase("outer", |c| {
            c.broadcast_all(&[1, 2]).unwrap();
            c.phase("inner", |c| c.charge_oracle(5));
        });
        assert_eq!(clique.ledger().phase("outer").implemented, 1);
        assert_eq!(clique.ledger().phase("outer/inner").charged, 5);
        assert_eq!(clique.ledger().total_rounds(), 6);
    }

    #[test]
    fn invalid_destination_is_rejected() {
        let mut clique = Clique::new(2);
        let err = clique
            .exchange(vec![vec![(5, vec![1])], vec![]])
            .unwrap_err();
        assert_eq!(err, ModelError::InvalidNode { node: 5, n: 2 });
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn tiny_clique_panics() {
        let _ = Clique::new(1);
    }

    #[test]
    fn broadcast_all_words_costs_longest_vector() {
        let mut clique = Clique::new(3);
        let view = clique
            .broadcast_all_words(&[vec![1, 2, 3], vec![], vec![9]])
            .unwrap();
        assert_eq!(view[0], vec![1, 2, 3]);
        assert_eq!(view[2], vec![9]);
        assert_eq!(clique.ledger().total_rounds(), 3);
    }

    #[test]
    fn empty_exchange_is_free() {
        let mut clique = Clique::new(3);
        let inboxes = clique.exchange(vec![vec![], vec![], vec![]]).unwrap();
        assert!(inboxes.iter().all(|i| i.is_empty()));
        assert_eq!(clique.ledger().total_rounds(), 0);
        let inboxes = clique.route(vec![vec![], vec![], vec![]]).unwrap();
        assert!(inboxes.iter().all(|i| i.is_empty()));
        assert_eq!(clique.ledger().total_rounds(), 0);
    }

    #[test]
    fn allgather_balances_skewed_contributions() {
        let mut clique = Clique::new(4);
        // One node contributes 12 words, others none: balancing pays
        // lenzen·ceil(12/4) = 3 batches, broadcast pays ceil(12/4) = 3.
        let (all, offsets) = clique
            .allgather(&[(0..12).collect(), vec![], vec![], vec![]])
            .unwrap();
        assert_eq!(all.len(), 12);
        assert_eq!(offsets, vec![0, 12, 12, 12, 12]);
        assert_eq!(
            clique.ledger().total_rounds(),
            3 * clique.config().lenzen_rounds + 3
        );
    }

    #[test]
    fn sort_produces_global_sorted_blocks() {
        let mut clique = Clique::new(3);
        let out = clique.sort(&[vec![9, 1], vec![5], vec![3, 7, 2]]).unwrap();
        let flat: Vec<u64> = out.iter().flatten().copied().collect();
        assert_eq!(flat, vec![1, 2, 3, 5, 7, 9]);
        assert_eq!(out[0], vec![1, 2]); // blocks of 2 each
        assert_eq!(out[2], vec![7, 9]);
        // max per-node keys 3 ≤ n=3: one batch.
        assert_eq!(
            clique.ledger().total_rounds(),
            clique.config().lenzen_rounds
        );
    }

    #[test]
    fn sort_batches_large_inputs() {
        let mut clique = Clique::new(2);
        let out = clique.sort(&[(0..5).rev().collect(), vec![]]).unwrap();
        assert_eq!(out[0], vec![0, 1, 2]); // 5 keys: blocks 3 + 2
        assert_eq!(out[1], vec![3, 4]);
        // ceil(5/2) = 3 batches.
        assert_eq!(
            clique.ledger().total_rounds(),
            3 * clique.config().lenzen_rounds
        );
    }

    #[test]
    fn broadcast_mode_rejects_unicast_primitives() {
        let mut clique = Clique::with_config(
            4,
            CliqueConfig {
                mode: CommunicationMode::Broadcast,
                ..CliqueConfig::default()
            },
        );
        let outboxes = vec![vec![(1, vec![1u64])], vec![], vec![], vec![]];
        assert_eq!(
            clique.exchange(outboxes.clone()),
            Err(ModelError::BroadcastOnly)
        );
        assert_eq!(clique.route(outboxes), Err(ModelError::BroadcastOnly));
        assert_eq!(
            clique.gather_to(0, &[vec![], vec![1], vec![], vec![]]),
            Err(ModelError::BroadcastOnly)
        );
        assert_eq!(
            clique.sort(&[vec![1], vec![], vec![], vec![]]),
            Err(ModelError::BroadcastOnly)
        );
        // Broadcast primitives still work, with broadcast-only accounting.
        clique.broadcast_all(&[1, 2, 3, 4]).unwrap();
        let before = clique.ledger().total_rounds();
        clique.broadcast_from(0, &vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(clique.ledger().total_rounds() - before, 6);
        let before = clique.ledger().total_rounds();
        let (all, _) = clique
            .allgather(&[vec![1, 2], vec![3], vec![], vec![4]])
            .unwrap();
        assert_eq!(all, vec![1, 2, 3, 4]);
        // Broadcast allgather: max contribution = 2 rounds.
        assert_eq!(clique.ledger().total_rounds() - before, 2);
    }

    #[test]
    fn determinism_of_delivery_order() {
        let build = || {
            let mut clique = Clique::new(4);
            let outboxes = vec![
                vec![(3, vec![1])],
                vec![(3, vec![2])],
                vec![(3, vec![3])],
                vec![],
            ];
            clique.route(outboxes).unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(
            a[3].iter().map(|e| e.src).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }
}
