//! The transport abstraction every algorithm layer is written against.
//!
//! [`Communicator`] captures the primitive surface of the congested clique
//! — the message-moving primitives plus round accounting — without naming
//! a concrete substrate. [`crate::Clique`] is the canonical
//! implementation (the deterministic simulator); the wrapping transports
//! [`crate::TracingComm`] and [`crate::FaultComm`] decorate any
//! communicator with observability and fault injection, and a future
//! broadcast-clique or real-network backend plugs in at the same seam
//! (cf. the companion paper arXiv:2205.12059, which re-targets the same
//! algorithms to the broadcast clique).
//!
//! Algorithms are generic over `C: Communicator`; nothing outside
//! `cc-model` needs to know which substrate is charging the rounds.

use crate::{CliqueConfig, CostKind, Envelope, ModelError, NodeId, RoundLedger, Words};

/// Runs `f` inside a named ledger phase of `comm`, popping the phase even
/// if `f` unwinds (drop guard), so a panicking solve cannot leave the
/// phase stack unbalanced.
pub fn scoped_phase<C: Communicator, R>(
    comm: &mut C,
    name: &str,
    f: impl FnOnce(&mut C) -> R,
) -> R {
    struct Guard<'a, C: Communicator>(&'a mut C);
    impl<C: Communicator> Drop for Guard<'_, C> {
        fn drop(&mut self) {
            self.0.pop_phase();
        }
    }
    comm.push_phase(name);
    let guard = Guard(comm);
    f(guard.0)
}

/// The communication substrate of a congested clique algorithm.
///
/// The trait mirrors the primitive surface of [`crate::Clique`] (which is
/// its canonical implementation): point-to-point
/// [`exchange`](Communicator::exchange), Lenzen
/// [`route`](Communicator::route)/[`route_strict`](Communicator::route_strict),
/// the broadcast family, [`allgather`](Communicator::allgather),
/// [`sort`](Communicator::sort), [`gather_to`](Communicator::gather_to),
/// plus phase scoping and oracle charging. Every
/// algorithm entry point in the workspace takes `&mut C` with
/// `C: Communicator`, so substrates can be swapped without touching
/// algorithm code:
///
/// * [`crate::Clique`] — the deterministic simulator;
/// * [`crate::TracingComm`] — wraps any communicator with a structured
///   event trace and per-phase congestion statistics;
/// * [`crate::FaultComm`] — wraps any communicator with deterministic,
///   seeded fault injection for bandwidth-bound testing.
///
/// # Contract
///
/// Implementations must be *transparent* about round accounting: the
/// rounds charged for a primitive call are defined by the substrate, and
/// wrapping transports must not change them ([`crate::TracingComm`]
/// charges bitwise-identical totals to a bare [`crate::Clique`]; the
/// workspace tests verify this over every experiment in `cc-bench`).
///
/// # Example
///
/// ```
/// use cc_model::{Clique, Communicator, TracingComm};
///
/// fn min_consensus<C: Communicator>(comm: &mut C, mine: u64) -> u64 {
///     comm.phase("consensus", |comm| {
///         let view = comm.broadcast_all(&vec![mine; comm.n()]).unwrap();
///         view.into_iter().min().unwrap()
///     })
/// }
///
/// let mut bare = Clique::new(4);
/// let mut traced = TracingComm::new(Clique::new(4));
/// assert_eq!(min_consensus(&mut bare, 7), 7);
/// assert_eq!(min_consensus(&mut traced, 7), 7);
/// assert_eq!(
///     bare.ledger().total_rounds(),
///     traced.ledger().total_rounds()
/// );
/// ```
pub trait Communicator {
    /// Number of nodes of the clique.
    fn n(&self) -> usize;

    /// The accounting constants in effect.
    fn config(&self) -> CliqueConfig;

    /// Read access to the round ledger.
    fn ledger(&self) -> &RoundLedger;

    /// Mutable access to the round ledger (e.g. to reset between phases
    /// of a benchmark).
    fn ledger_mut(&mut self) -> &mut RoundLedger;

    /// Enters a named ledger phase. Prefer [`Communicator::phase`], which
    /// guarantees the matching [`Communicator::pop_phase`].
    fn push_phase(&mut self, name: &str) {
        self.ledger_mut().push_phase(name);
    }

    /// Leaves the innermost ledger phase.
    fn pop_phase(&mut self) {
        self.ledger_mut().pop_phase();
    }

    /// Runs `f` inside a named ledger phase, so all rounds charged by `f`
    /// are attributed under `name`. The phase is popped even if `f`
    /// unwinds.
    fn phase<R>(&mut self, name: &str, f: impl FnOnce(&mut Self) -> R) -> R
    where
        Self: Sized,
    {
        scoped_phase(self, name, f)
    }

    /// Number of transport-layer faults this substrate has injected or
    /// detected so far. Honest substrates report 0 (the default);
    /// wrapping transports add their own count to the wrapped
    /// substrate's ([`crate::FaultComm`] counts injected faults,
    /// [`crate::AdversaryComm`] counts adversary events), so engine
    /// layers can surface fault totals through their error types
    /// without naming a concrete transport stack.
    fn faults_observed(&self) -> u64 {
        0
    }

    /// Charges `rounds` rounds for an oracle subroutine that is simulated
    /// rather than executed distributedly (tagged [`CostKind::Charged`];
    /// see `DESIGN.md` §2).
    fn charge_oracle(&mut self, rounds: u64) {
        self.ledger_mut().charge(rounds, CostKind::Charged);
    }

    /// Charges `rounds` implemented rounds without moving data — used by
    /// primitives built on top of the substrate whose data movement is
    /// performed by the caller (rare; prefer the message primitives).
    fn charge_implemented(&mut self, rounds: u64) {
        self.ledger_mut().charge(rounds, CostKind::Implemented);
    }

    /// Direct point-to-point exchange; see [`crate::Clique::exchange`]
    /// for the canonical accounting (max per-ordered-pair words).
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `outboxes.len() != n`;
    /// [`ModelError::InvalidNode`] on an out-of-range destination;
    /// [`ModelError::BroadcastOnly`] in broadcast-only substrates.
    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError>;

    /// Routed exchange via Lenzen's routing theorem; see
    /// [`crate::Clique::route`] for the canonical accounting.
    ///
    /// # Errors
    ///
    /// Same structural errors as [`Communicator::exchange`].
    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError>;

    /// Like [`Communicator::route`], but fails instead of batching when a
    /// node's load exceeds one application of the routing theorem.
    ///
    /// # Errors
    ///
    /// [`ModelError::CongestionExceeded`] if some node would send or
    /// receive more than `capacity·n` words, plus the structural errors
    /// of [`Communicator::exchange`].
    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError>;

    /// Every node broadcasts one word; everyone learns all `n` words.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `values.len() != n`;
    /// fault-injecting transports ([`crate::FaultComm`]) additionally
    /// return [`ModelError::CongestionExceeded`] for injected faults.
    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError>;

    /// [`Communicator::broadcast_all`] into a caller-owned buffer: `out`
    /// is cleared and refilled with the shared view. The default delegates
    /// to [`Communicator::broadcast_all`] (so wrapping transports trace and
    /// charge it identically); substrates with an allocation-free fast path
    /// override it ([`crate::Clique`] does). Round accounting must be
    /// identical to `broadcast_all`.
    ///
    /// # Errors
    ///
    /// Same errors as [`Communicator::broadcast_all`] (leaving `out`
    /// untouched on failure).
    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        let view = self.broadcast_all(values)?;
        out.clear();
        out.extend_from_slice(&view);
        Ok(())
    }

    /// Every node broadcasts a word vector; everyone learns all of them.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`;
    /// fault-injecting transports additionally return
    /// [`ModelError::CongestionExceeded`] for injected faults.
    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError>;

    /// One node broadcasts its word vector to everyone.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidNode`] if `src` is out of range.
    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError>;

    /// Everyone learns everyone's word vector, load-balanced (all-gather).
    /// Returns the concatenation in node order plus per-node offsets.
    ///
    /// # Errors
    ///
    /// [`ModelError::WrongOutboxCount`] if `per_node.len() != n`;
    /// fault-injecting transports additionally return
    /// [`ModelError::CongestionExceeded`] for injected faults.
    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError>;

    /// Globally sorts all keys across the clique (Lenzen's deterministic
    /// sorting theorem); node `i` receives the `i`-th sorted block.
    ///
    /// # Errors
    ///
    /// [`ModelError::BroadcastOnly`] in broadcast-only substrates.
    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError>;

    /// Every node sends its word vector to a single destination.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidNode`] if `dst` is out of range.
    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    fn generic_round<C: Communicator>(comm: &mut C) -> u64 {
        comm.phase("generic", |comm| {
            let n = comm.n();
            comm.broadcast_all(&vec![1; n]).unwrap();
            comm.charge_oracle(3);
        });
        comm.ledger().total_rounds()
    }

    #[test]
    fn clique_is_a_communicator() {
        let mut clique = Clique::new(4);
        assert_eq!(generic_round(&mut clique), 4);
        assert_eq!(clique.ledger().phase("generic").implemented, 1);
        assert_eq!(clique.ledger().phase("generic").charged, 3);
    }

    #[test]
    fn scoped_phase_pops_on_unwind() {
        let mut clique = Clique::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            clique.phase("doomed", |c| {
                c.charge_oracle(1);
                panic!("mid-phase failure");
            })
        }));
        assert!(result.is_err());
        // The drop guard popped the phase despite the unwind.
        assert_eq!(clique.ledger().current_phase(), "");
        assert_eq!(clique.ledger().phase("doomed").charged, 1);
    }

    #[test]
    fn nested_phases_balance() {
        let mut clique = Clique::new(2);
        clique.phase("a", |c| {
            c.phase("b", |c| {
                c.phase("c", |c| c.charge_oracle(1));
                assert_eq!(c.ledger().current_phase(), "a/b");
            });
            assert_eq!(c.ledger().current_phase(), "a");
        });
        assert_eq!(clique.ledger().current_phase(), "");
        assert_eq!(clique.ledger().phase("a/b/c").charged, 1);
    }
}
