//! [`ThreadedComm`]: the concurrent sharded clique runtime.
//!
//! The paper's model is `n` nodes acting *concurrently*; [`crate::Clique`]
//! executes rounds as a sequential loop on one thread. `ThreadedComm` runs
//! the **same delivery kernel** ([`crate::delivery`]) across a persistent
//! [`cc_par::WorkerPool`]: virtual nodes are sharded many-per-worker
//! (contiguous source ranges, so `n` reaches the thousands without
//! thousands of threads), each round is barrier-synchronized, and the
//! per-shard partial results are merged in shard-index order.
//!
//! # Determinism discipline
//!
//! Bitwise identity to [`crate::Clique`] — results *and* ledger — holds by
//! construction, not by tolerance:
//!
//! * **Sharding is contiguous in source id**, so concatenating per-shard
//!   inboxes in shard order ([`crate::delivery::merge_inboxes`]) is
//!   exactly the sequential source-order delivery.
//! * **Cost formulas are maxima and sums of per-source terms** over `u64`,
//!   so shard-wise max-of-max and elementwise sums are exact.
//! * **Errors are selected by lowest shard index** (each shard reports its
//!   first violation in source order), reproducing the sequential scan's
//!   first error.
//! * **Serial primitives stay serial.** The broadcast family, `sort`, and
//!   `gather_to` are shared-view operations with no per-source message
//!   fan-out worth sharding; they run on the driver thread through an
//!   embedded sequential [`crate::Clique`] — identical code, identical
//!   ledger, by definition.
//!
//! # Watchdog contract
//!
//! Every sharded round dispatches owned jobs ([`WorkerPool::run_owned`])
//! and waits on a balanced barrier with the
//! [`cc_par::watchdog_timeout`] deadline (`CC_WATCHDOG_SECS`, default
//! 120 s, `0` disables). A round that does not complete within the
//! deadline panics with shard diagnostics instead of hanging the process —
//! turning a deadlocked barrier into a fast, attributable test failure.
//! The barrier itself asserts balanced arrivals, so a protocol bug (a
//! shard arriving twice) also fails loudly rather than corrupting a later
//! round.

use crate::{
    delivery, Clique, CliqueConfig, Communicator, CostKind, Envelope, ModelError, NodeId,
    RoundLedger, Words,
};
use cc_par::{Job, WorkerPool};
use std::sync::{Arc, Mutex};

/// Per-source outboxes: `outboxes[src][i] = (dst, words)`.
type Outboxes = Vec<Vec<(NodeId, Words)>>;

/// What a round's merge yields: (exchange max, per-source send loads,
/// per-destination receive loads, length-`n` inboxes).
type MergedRound = (u64, Vec<u64>, Vec<u64>, Vec<Vec<Envelope>>);

/// What a shard reports back from one parallel round.
#[derive(Debug, Default)]
struct ShardReport {
    /// First structural violation in this shard, in source order.
    error: Option<ModelError>,
    /// Max per-ordered-pair words over this shard's sources.
    exchange_max: u64,
    /// Per-source send loads (shard-local indexing, disjoint globally).
    send: Vec<u64>,
    /// Per-destination receive loads contributed by this shard.
    recv: Vec<u64>,
    /// Inboxes contributed by this shard (length `n`).
    inboxes: Vec<Vec<Envelope>>,
}

/// A [`Communicator`] executing the delivery kernel concurrently over a
/// persistent worker pool, bitwise identical to [`Clique`] at every worker
/// count. See the module docs for the determinism discipline and the
/// watchdog contract.
#[derive(Debug)]
pub struct ThreadedComm {
    /// Sequential driver for the shared-view primitives and the ledger:
    /// delegating to it makes "identical to `Clique`" true by definition
    /// on those paths.
    seq: Clique,
    workers: usize,
    pool: Arc<WorkerPool>,
}

impl ThreadedComm {
    /// A threaded clique of `n` nodes with default accounting constants;
    /// worker count from [`cc_par::current_threads`] (clamped to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        Self::with_config_and_workers(n, CliqueConfig::default(), cc_par::current_threads())
    }

    /// A threaded clique with an explicit worker count (clamped to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `workers == 0`.
    pub fn with_workers(n: usize, workers: usize) -> Self {
        Self::with_config_and_workers(n, CliqueConfig::default(), workers)
    }

    /// A threaded clique with explicit accounting constants; worker count
    /// from [`cc_par::current_threads`].
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `config.routing_capacity_factor == 0`.
    pub fn with_config(n: usize, config: CliqueConfig) -> Self {
        Self::with_config_and_workers(n, config, cc_par::current_threads())
    }

    /// A threaded clique with explicit accounting constants and worker
    /// count (clamped to `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `workers == 0`, or
    /// `config.routing_capacity_factor == 0`.
    pub fn with_config_and_workers(n: usize, config: CliqueConfig, workers: usize) -> Self {
        assert!(workers > 0, "threaded clique needs at least one worker");
        let workers = workers.min(n);
        Self {
            seq: Clique::with_config(n, config),
            workers,
            pool: cc_par::global_pool(workers),
        }
    }

    /// Number of worker threads sharding each round.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Splits `outboxes` into contiguous per-worker source shards, runs
    /// one barrier-synchronized round over the pool, and returns the
    /// shard reports in shard-index order.
    fn sharded_round(&self, outboxes: Outboxes) -> Vec<ShardReport> {
        let n = self.seq.n();
        let shard_size = n.div_ceil(self.workers);
        let mut shards: Vec<(usize, Outboxes)> = Vec::with_capacity(self.workers);
        let mut rest = outboxes;
        let mut offset = 0;
        while !rest.is_empty() {
            let take = shard_size.min(rest.len());
            let tail = rest.split_off(take);
            shards.push((offset, rest));
            offset += take;
            rest = tail;
        }
        let nshards = shards.len();
        let slots: Arc<Vec<Mutex<Option<ShardReport>>>> =
            Arc::new((0..nshards).map(|_| Mutex::new(None)).collect());
        let jobs: Vec<Job> = shards
            .into_iter()
            .enumerate()
            .map(|(shard_idx, (src_offset, shard))| {
                let slots = Arc::clone(&slots);
                Box::new(move || {
                    let report = run_shard(n, src_offset, shard);
                    *slots[shard_idx].lock().expect("shard slot poisoned") = Some(report);
                }) as Job
            })
            .collect();
        if let Err(hang) = self.pool.run_owned(jobs, cc_par::watchdog_timeout()) {
            let missing: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.lock().map(|g| g.is_none()).unwrap_or(true))
                .map(|(i, _)| i)
                .collect();
            panic!(
                "ThreadedComm watchdog: round hung ({hang}); shards without reports: {missing:?} \
                 of {nshards} (n={n}, workers={})",
                self.workers
            );
        }
        slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("shard slot poisoned")
                    .take()
                    .expect("shard finished without reporting")
            })
            .collect()
    }

    /// Merges shard reports into the global (first error, exchange max,
    /// send loads, recv loads, inboxes) — all in shard-index order.
    fn merge(&self, reports: Vec<ShardReport>) -> Result<MergedRound, ModelError> {
        let n = self.seq.n();
        // Lowest-indexed shard's first violation == the sequential scan's.
        for report in &reports {
            if let Some(err) = &report.error {
                return Err(err.clone());
            }
        }
        let mut exchange_max = 0u64;
        let mut send = Vec::with_capacity(n);
        let mut recv = vec![0u64; n];
        let mut inbox_shards = Vec::with_capacity(reports.len());
        for report in reports {
            exchange_max = exchange_max.max(report.exchange_max);
            send.extend(report.send);
            for (acc, add) in recv.iter_mut().zip(&report.recv) {
                *acc += add;
            }
            inbox_shards.push(report.inboxes);
        }
        Ok((
            exchange_max,
            send,
            recv,
            delivery::merge_inboxes(n, inbox_shards),
        ))
    }
}

/// The per-shard worker body: validate destinations (first violation in
/// source order), compute cost contributions, and deliver this shard's
/// messages. Pure — all inputs owned, output returned by value.
fn run_shard(n: usize, src_offset: usize, shard: Vec<Vec<(NodeId, Words)>>) -> ShardReport {
    if let Err(err) = delivery::check_destinations(n, &shard) {
        return ShardReport {
            error: Some(err),
            ..ShardReport::default()
        };
    }
    let exchange_max = delivery::exchange_cost(n, &shard);
    let (send, recv) = delivery::shard_loads(n, &shard);
    let inboxes = delivery::deliver_shard(n, src_offset, shard);
    ShardReport {
        error: None,
        exchange_max,
        send,
        recv,
        inboxes,
    }
}

impl Communicator for ThreadedComm {
    fn n(&self) -> usize {
        self.seq.n()
    }

    fn config(&self) -> CliqueConfig {
        self.seq.config()
    }

    fn ledger(&self) -> &RoundLedger {
        self.seq.ledger()
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        self.seq.ledger_mut()
    }

    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        delivery::unicast_gate(&self.config())?;
        delivery::check_len(self.n(), outboxes.len())?;
        let reports = self.sharded_round(outboxes);
        let (max_pair, _, _, inboxes) = self.merge(reports)?;
        self.seq
            .ledger_mut()
            .charge(max_pair, CostKind::Implemented);
        Ok(inboxes)
    }

    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        delivery::unicast_gate(&self.config())?;
        delivery::check_len(self.n(), outboxes.len())?;
        let reports = self.sharded_round(outboxes);
        let (_, send, recv, inboxes) = self.merge(reports)?;
        let load = send.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        if load > 0 {
            let rounds = delivery::route_cost(&self.config(), self.n(), load);
            self.seq.ledger_mut().charge(rounds, CostKind::Implemented);
        }
        Ok(inboxes)
    }

    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        // Mirrors `Clique::route_strict` exactly: structural checks, then
        // the strict budget scan, then the batching route path (which in
        // broadcast mode surfaces BroadcastOnly *after* the budget scan).
        delivery::check_len(self.n(), outboxes.len())?;
        let reports = self.sharded_round(outboxes);
        let (_, send, recv, inboxes) = self.merge(reports)?;
        delivery::strict_violation(&self.config(), self.n(), &send, &recv)?;
        delivery::unicast_gate(&self.config())?;
        let load = send.iter().chain(recv.iter()).copied().max().unwrap_or(0);
        if load > 0 {
            let rounds = delivery::route_cost(&self.config(), self.n(), load);
            self.seq.ledger_mut().charge(rounds, CostKind::Implemented);
        }
        Ok(inboxes)
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        self.seq.broadcast_all(values)
    }

    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        self.seq.broadcast_all_into(values, out)
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.seq.broadcast_all_words(per_node)
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        self.seq.broadcast_from(src, words)
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        self.seq.allgather(per_node)
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.seq.sort(per_node)
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.seq.gather_to(dst, per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_outboxes(n: usize, words_per_msg: usize) -> Vec<Vec<(NodeId, Words)>> {
        (0..n)
            .map(|u| {
                vec![(
                    (u + 1) % n,
                    (0..words_per_msg).map(|k| (u * 100 + k) as u64).collect(),
                )]
            })
            .collect()
    }

    #[test]
    fn exchange_matches_clique_at_every_worker_count() {
        for workers in [1, 2, 3, 8] {
            let mut seq = Clique::new(7);
            let mut par = ThreadedComm::with_workers(7, workers);
            let a = seq.exchange(ring_outboxes(7, 3)).unwrap();
            let b = par.exchange(ring_outboxes(7, 3)).unwrap();
            assert_eq!(a, b, "workers={workers}");
            assert_eq!(
                seq.ledger().total_rounds(),
                par.ledger().total_rounds(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn route_strict_error_matches_clique() {
        let overload = vec![
            vec![(1, (0..9).collect::<Vec<u64>>())],
            vec![],
            vec![],
            vec![],
        ];
        let mut seq = Clique::new(4);
        let mut par = ThreadedComm::with_workers(4, 2);
        assert_eq!(
            seq.route_strict(overload.clone()).unwrap_err(),
            par.route_strict(overload).unwrap_err()
        );
        assert_eq!(seq.ledger().total_rounds(), par.ledger().total_rounds());
    }

    #[test]
    fn invalid_destination_error_matches_clique() {
        let bad = vec![vec![], vec![(9, vec![1])], vec![(8, vec![2])], vec![]];
        let mut seq = Clique::new(4);
        let mut par = ThreadedComm::with_workers(4, 4);
        assert_eq!(
            seq.exchange(bad.clone()).unwrap_err(),
            par.exchange(bad).unwrap_err()
        );
    }

    #[test]
    fn workers_clamped_to_n() {
        let par = ThreadedComm::with_workers(3, 64);
        assert_eq!(par.workers(), 3);
    }

    #[test]
    fn shared_view_primitives_charge_identically() {
        let mut seq = Clique::new(5);
        let mut par = ThreadedComm::with_workers(5, 2);
        let data = vec![vec![1, 2], vec![], vec![3], vec![4, 5, 6], vec![]];
        assert_eq!(seq.allgather(&data).unwrap(), par.allgather(&data).unwrap());
        assert_eq!(seq.sort(&data).unwrap(), par.sort(&data).unwrap());
        assert_eq!(
            seq.gather_to(2, &data).unwrap(),
            par.gather_to(2, &data).unwrap()
        );
        assert_eq!(seq.ledger().phases(), par.ledger().phases());
    }
}
