//! # cc-model — a deterministic congested clique simulator
//!
//! The congested clique \[LPSPP05\] is a synchronous message-passing model:
//! a network of `n` processors (*nodes*) in which, per round, every ordered
//! pair of nodes may exchange one message of `O(log n)` bits (one *word*).
//! Round complexity — the number of synchronous rounds — is the only cost
//! measure; local computation is free.
//!
//! This crate simulates the model faithfully enough to *measure* round
//! complexity for the algorithms of Forster & de Vos (PODC 2023):
//!
//! * [`Clique`] executes communication primitives and charges rounds
//!   according to the model's rules (at most one word per ordered pair per
//!   round).
//! * [`Clique::route`] implements the accounting of Lenzen's routing theorem
//!   \[Len13\]: any message set in which every node sends at most `n` words
//!   and receives at most `n` words is deliverable in `O(1)` rounds
//!   (16 in the paper; configurable via [`CliqueConfig::lenzen_rounds`]).
//! * [`RoundLedger`] attributes every charged round to a named phase and
//!   distinguishes rounds of *implemented* communication from *charged
//!   oracle* costs (see `DESIGN.md` §2 and §7).
//!
//! The simulator is **deterministic**: primitives deliver messages in a
//! canonical order (sorted by source id), so algorithm runs are exactly
//! reproducible.
//!
//! ## Example
//!
//! ```
//! use cc_model::Clique;
//!
//! // 8 nodes; each broadcasts its own id, so afterwards every node knows
//! // all ids. One word per ordered pair => exactly 1 round.
//! let mut clique = Clique::new(8);
//! let view = clique
//!     .broadcast_all(&(0..8).map(|i| i as u64).collect::<Vec<_>>())
//!     .unwrap();
//! assert_eq!(view, (0..8).map(|i| i as u64).collect::<Vec<_>>());
//! assert_eq!(clique.ledger().total_rounds(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod broadcast;
mod clique;
mod comm;
pub mod delivery;
mod encode;
mod error;
mod fault;
mod ledger;
mod program;
mod threaded;
mod trace;

pub use adversary::{
    AdversaryAction, AdversaryComm, AdversaryEvent, AdversarySchedule, AdversaryStrategy,
};
pub use broadcast::{BroadcastComm, BroadcastMode};
pub use clique::{Clique, CliqueConfig, CommunicationMode, Envelope};
pub use comm::{scoped_phase, Communicator};
pub use encode::{
    decode_f64, decode_f64_fixed, decode_i64, encode_f64, encode_f64_fixed, encode_i64,
};
pub use error::ModelError;
pub use fault::{FaultComm, FaultPlan};
pub use ledger::{CostKind, PhaseCost, RoundLedger};
pub use program::{run_node_programs, NodeCtx, NodeProgram};
pub use threaded::ThreadedComm;
pub use trace::{PhaseTrace, TraceEvent, TracingComm, TRACE_HIST_BUCKETS};

/// Identifier of a node (processor) of the clique; ranges over `0..n`.
pub type NodeId = usize;

/// A message payload: a sequence of `O(log n)`-bit machine words.
///
/// Every `u64` counts as one word against the per-pair bandwidth of the
/// model; floating point scalars are packed one-per-word via
/// [`encode_f64`] (the paper's convention of absorbing bit-precision
/// `poly log` factors into `n^{o(1)}`).
pub type Words = Vec<u64>;
