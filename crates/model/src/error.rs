use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors raised by the congested clique simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A primitive was invoked with a node id outside `0..n`.
    InvalidNode {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes of the clique.
        n: usize,
    },
    /// A [`crate::Clique::route`] call violated Lenzen's precondition:
    /// some node would have to send or receive more than `capacity` words.
    CongestionExceeded {
        /// Node exceeding its budget.
        node: NodeId,
        /// Words the node would send or receive.
        words: usize,
        /// Allowed words (`routing_capacity_factor * n`).
        capacity: usize,
        /// True if the violation is on the sending side.
        sending: bool,
    },
    /// A point-to-point primitive was invoked in broadcast-only mode
    /// (the Broadcast Congested Clique admits no unicast messages).
    BroadcastOnly,
    /// An outbox vector had the wrong length (must be one entry per node).
    WrongOutboxCount {
        /// Entries supplied.
        got: usize,
        /// Entries expected (`n`).
        expected: usize,
    },
    /// A unicast-shaped primitive was invoked on a strict
    /// [`crate::BroadcastComm`]: the Broadcast Congested Clique admits
    /// one *identical* word per node per round, so point-to-point
    /// message sets have no strict counterpart. Measured-mode
    /// [`crate::BroadcastComm`] simulates them instead, at their honest
    /// broadcast cost.
    UnicastInBroadcastModel {
        /// Name of the rejected primitive (`"exchange"`, `"route"`,
        /// `"route_strict"`, `"gather_to"`, or `"sort"`).
        primitive: &'static str,
    },
    /// A node-level adversary withheld a scheduled message: `node` had
    /// outbound payload in a primitive while silent or crashed (see
    /// [`crate::AdversaryComm`]). In a synchronous model a missing
    /// message is observable the round it fails to arrive, so omission
    /// faults surface as this typed error rather than as silent data
    /// loss.
    NodeSilenced {
        /// The silenced (adversarial) node.
        node: NodeId,
        /// Ledger round (total) at which the omission was detected.
        round: u64,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidNode { node, n } => {
                write!(f, "node id {node} out of range for clique of {n} nodes")
            }
            ModelError::CongestionExceeded {
                node,
                words,
                capacity,
                sending,
            } => {
                let dir = if *sending { "send" } else { "receive" };
                write!(
                    f,
                    "routing congestion: node {node} would {dir} {words} words, capacity {capacity}"
                )
            }
            ModelError::BroadcastOnly => {
                write!(
                    f,
                    "point-to-point messages are not allowed in broadcast mode"
                )
            }
            ModelError::WrongOutboxCount { got, expected } => {
                write!(
                    f,
                    "outbox count {got} does not match clique size {expected}"
                )
            }
            ModelError::UnicastInBroadcastModel { primitive } => {
                write!(
                    f,
                    "unicast primitive `{primitive}` has no counterpart in the strict \
                     broadcast congested clique (use measured mode to simulate it)"
                )
            }
            ModelError::NodeSilenced { node, round } => {
                write!(
                    f,
                    "node {node} withheld its message in round {round} (silent or crashed)"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<ModelError> = vec![
            ModelError::InvalidNode { node: 9, n: 4 },
            ModelError::CongestionExceeded {
                node: 1,
                words: 100,
                capacity: 8,
                sending: true,
            },
            ModelError::WrongOutboxCount {
                got: 3,
                expected: 4,
            },
            ModelError::NodeSilenced { node: 2, round: 17 },
            ModelError::UnicastInBroadcastModel { primitive: "sort" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
