//! # delivery — the substrate-free message-delivery and accounting kernel
//!
//! Every transport in this crate ([`crate::Clique`], [`crate::ThreadedComm`])
//! must move the same messages and charge the same rounds. This module is
//! the single source of truth for both: pure functions over outboxes and
//! word vectors, with **no ledger, no threads, no substrate state**.
//!
//! Two properties make the kernel shardable, which is what
//! [`crate::ThreadedComm`] exploits:
//!
//! * **Delivery is a per-source fold.** [`deliver_shard`] produces the
//!   inboxes contributed by a contiguous range of sources; concatenating
//!   shard inboxes in shard order ([`merge_inboxes`]) reproduces the
//!   sequential source-order delivery of [`deliver`] exactly, because each
//!   shard covers a contiguous source range.
//! * **Every cost formula is a max or a sum over per-source terms.**
//!   [`exchange_cost`] is a max of per-shard maxima; [`shard_loads`]
//!   returns per-source send loads (disjoint across shards) and per-node
//!   receive loads (summed elementwise across shards, exact in `u64`).
//!
//! The sequential [`crate::Clique`] driver calls the same functions with a
//! single shard covering all sources, so the two transports are bitwise
//! identical by construction — results *and* ledgers.

use crate::{CliqueConfig, CommunicationMode, Envelope, ModelError, NodeId, Words};

/// Rejects point-to-point primitives in broadcast-only mode.
///
/// # Errors
///
/// [`ModelError::BroadcastOnly`] when `config.mode` is
/// [`CommunicationMode::Broadcast`].
pub fn unicast_gate(config: &CliqueConfig) -> Result<(), ModelError> {
    if config.mode == CommunicationMode::Broadcast {
        return Err(ModelError::BroadcastOnly);
    }
    Ok(())
}

/// Checks that a per-node collection has exactly `n` entries.
///
/// # Errors
///
/// [`ModelError::WrongOutboxCount`] otherwise.
pub fn check_len(n: usize, got: usize) -> Result<(), ModelError> {
    if got != n {
        return Err(ModelError::WrongOutboxCount { got, expected: n });
    }
    Ok(())
}

/// Checks every destination in a shard of outboxes, in source order.
///
/// Returns the *first* violation in (source, enqueue) order, which is the
/// order the sequential driver scans — shards must report their local
/// first violation and callers pick the lowest-indexed shard's, which
/// reproduces the sequential error exactly.
///
/// # Errors
///
/// [`ModelError::InvalidNode`] on the first out-of-range destination.
pub fn check_destinations(n: usize, shard: &[Vec<(NodeId, Words)>]) -> Result<(), ModelError> {
    for per_node in shard {
        for (dst, _) in per_node {
            if *dst >= n {
                return Err(ModelError::InvalidNode { node: *dst, n });
            }
        }
    }
    Ok(())
}

/// Full structural validation of a complete outbox set (count + ranges).
///
/// # Errors
///
/// [`ModelError::WrongOutboxCount`] if `outboxes.len() != n`;
/// [`ModelError::InvalidNode`] on an out-of-range destination.
pub fn check_outboxes(n: usize, outboxes: &[Vec<(NodeId, Words)>]) -> Result<(), ModelError> {
    check_len(n, outboxes.len())?;
    check_destinations(n, outboxes)
}

/// Delivers the messages of sources `src_offset ..` to per-destination
/// inboxes of length `n`, preserving (source, enqueue) order within the
/// shard. `shard[i]` is the outbox of global source `src_offset + i`.
pub fn deliver_shard(
    n: usize,
    src_offset: usize,
    shard: Vec<Vec<(NodeId, Words)>>,
) -> Vec<Vec<Envelope>> {
    let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
    for (local, per_node) in shard.into_iter().enumerate() {
        let src = src_offset + local;
        for (dst, payload) in per_node {
            inboxes[dst].push(Envelope { src, payload });
        }
    }
    inboxes
}

/// Sequential delivery of a complete outbox set: by source id, then by the
/// order the source enqueued its messages.
pub fn deliver(n: usize, outboxes: Vec<Vec<(NodeId, Words)>>) -> Vec<Vec<Envelope>> {
    deliver_shard(n, 0, outboxes)
}

/// Concatenates per-shard inboxes in shard order into one inbox set.
///
/// When shard `k` holds the deliveries of the `k`-th contiguous source
/// range, the concatenation is exactly the source-order delivery of
/// [`deliver`] — the property [`crate::ThreadedComm`] relies on for
/// bitwise-identical results.
pub fn merge_inboxes(n: usize, shards: Vec<Vec<Vec<Envelope>>>) -> Vec<Vec<Envelope>> {
    let mut merged: Vec<Vec<Envelope>> = vec![Vec::new(); n];
    for shard in shards {
        debug_assert_eq!(shard.len(), n, "shard inboxes must cover all nodes");
        for (dst, mut envelopes) in shard.into_iter().enumerate() {
            merged[dst].append(&mut envelopes);
        }
    }
    merged
}

/// The exchange cost contributed by a shard of sources: the maximum, over
/// ordered pairs `(u, v)` with `u` in the shard, of the words sent from
/// `u` to `v`. The global exchange cost is the max over shard costs.
///
/// Uses a flat per-destination accumulator reused across sources (touched
/// entries reset after each source) — the allocation pattern of the
/// pre-extraction hot path.
pub fn exchange_cost(n: usize, shard: &[Vec<(NodeId, Words)>]) -> u64 {
    let mut max_pair = 0u64;
    let mut per_dst = vec![0u64; n];
    let mut touched: Vec<NodeId> = Vec::new();
    for per_node in shard {
        for (dst, payload) in per_node {
            // Skip empty payloads: they contribute nothing to the max,
            // and pushing them into `touched` while `per_dst` stays 0
            // would let the reset list collect duplicates.
            if payload.is_empty() {
                continue;
            }
            if per_dst[*dst] == 0 {
                touched.push(*dst);
            }
            per_dst[*dst] += payload.len() as u64;
        }
        for &dst in &touched {
            max_pair = max_pair.max(per_dst[dst]);
            per_dst[dst] = 0;
        }
        touched.clear();
    }
    max_pair
}

/// Per-node load vectors contributed by a shard of sources.
///
/// Returns `(send, recv)`: `send[i]` is the words sent by global source
/// `src_offset + i` (disjoint across shards); `recv[v]` is the words this
/// shard's sources address to node `v` (shards sum elementwise — exact in
/// `u64` — to recover the global receive loads).
pub fn shard_loads(n: usize, shard: &[Vec<(NodeId, Words)>]) -> (Vec<u64>, Vec<u64>) {
    let mut send = vec![0u64; shard.len()];
    let mut recv = vec![0u64; n];
    for (local, per_node) in shard.iter().enumerate() {
        for (dst, payload) in per_node {
            send[local] += payload.len() as u64;
            recv[*dst] += payload.len() as u64;
        }
    }
    (send, recv)
}

/// Rounds charged by [`crate::Clique::route`] for maximum per-node load
/// `load`: `lenzen_rounds · ⌈load / (capacity·n)⌉`, and 0 for an empty
/// message set.
pub fn route_cost(config: &CliqueConfig, n: usize, load: u64) -> u64 {
    if load == 0 {
        return 0;
    }
    let cap = (config.routing_capacity_factor * n) as u64;
    load.div_ceil(cap) * config.lenzen_rounds
}

/// The strict-budget scan of [`crate::Clique::route_strict`]: nodes in
/// id order, send budget checked before receive budget.
///
/// # Errors
///
/// [`ModelError::CongestionExceeded`] for the first node whose send or
/// receive load exceeds `capacity·n`.
pub fn strict_violation(
    config: &CliqueConfig,
    n: usize,
    send: &[u64],
    recv: &[u64],
) -> Result<(), ModelError> {
    let cap = config.routing_capacity_factor * n;
    for node in 0..n {
        if send[node] as usize > cap {
            return Err(ModelError::CongestionExceeded {
                node,
                words: send[node] as usize,
                capacity: cap,
                sending: true,
            });
        }
        if recv[node] as usize > cap {
            return Err(ModelError::CongestionExceeded {
                node,
                words: recv[node] as usize,
                capacity: cap,
                sending: false,
            });
        }
    }
    Ok(())
}

/// Rounds charged to *simulate* a unicast exchange/route in the
/// Broadcast Congested Clique (measured-mode [`crate::BroadcastComm`]):
/// every node broadcasts its entire outbox, one word per round, all
/// nodes in parallel — destinations ride in the word (addressing bits
/// are absorbed into the `O(log n)`-bit word, the model's convention) —
/// so the cost is the maximum per-node send load. One all-to-all round
/// (each node sending up to `n − 1` distinct words) thus costs up to
/// `n − 1` sequential broadcast rounds, the honest simulation overhead.
pub fn broadcast_sim_cost(send: &[u64]) -> u64 {
    send.iter().copied().max().unwrap_or(0)
}

/// Rounds charged by the 1-word all-broadcast: always exactly 1.
pub fn broadcast_all_cost() -> u64 {
    1
}

/// Rounds charged by the word-vector all-broadcast: one round per word of
/// the longest vector.
pub fn broadcast_words_cost(per_node: &[Words]) -> u64 {
    per_node.iter().map(|w| w.len() as u64).max().unwrap_or(0)
}

/// Rounds charged by a single-source broadcast of `w` words: `w` in
/// broadcast mode (no helper scattering) and for `w ≤ 1`; otherwise the
/// scatter-then-broadcast doubling trick, `2·⌈w/(n−1)⌉`.
///
/// Requires `n ≥ 2` (the transport invariant — a clique needs two nodes;
/// [`crate::Clique::new`] enforces it). With `n < 2` the scatter formula
/// divides by `n − 1`, which is zero or underflows.
pub fn broadcast_from_cost(config: &CliqueConfig, n: usize, w: u64) -> u64 {
    debug_assert!(n >= 2, "clique cost formulas require n >= 2, got {n}");
    if config.mode == CommunicationMode::Broadcast || w <= 1 {
        w
    } else {
        2 * w.div_ceil(n as u64 - 1)
    }
}

/// Rounds charged by the load-balanced all-gather: `lenzen·⌈L/n⌉ + ⌈W/n⌉`
/// for total volume `W` and max per-node contribution `L` (0 when empty);
/// in broadcast mode the unbalanced fallback `max_i w_i`.
pub fn allgather_cost(config: &CliqueConfig, n: usize, per_node: &[Words]) -> u64 {
    if config.mode == CommunicationMode::Broadcast {
        return broadcast_words_cost(per_node);
    }
    let total: u64 = per_node.iter().map(|w| w.len() as u64).sum();
    if total == 0 {
        return 0;
    }
    let max_contrib = broadcast_words_cost(per_node);
    config.lenzen_rounds * max_contrib.div_ceil(n as u64) + total.div_ceil(n as u64)
}

/// Concatenates the per-node vectors in node order, returning the shared
/// view plus per-node offsets (the all-gather result shape).
pub fn concat_words(n: usize, per_node: &[Words]) -> (Words, Vec<usize>) {
    let total: usize = per_node.iter().map(Vec::len).sum();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut all = Vec::with_capacity(total);
    for words in per_node {
        offsets.push(all.len());
        all.extend_from_slice(words);
    }
    offsets.push(all.len());
    (all, offsets)
}

/// Rounds charged by Lenzen sorting: `lenzen_rounds · ⌈max per-node keys / n⌉`
/// (0 when no keys).
pub fn sort_cost(config: &CliqueConfig, n: usize, per_node: &[Words]) -> u64 {
    let max_keys = broadcast_words_cost(per_node);
    if max_keys == 0 {
        return 0;
    }
    max_keys.div_ceil(n as u64) * config.lenzen_rounds
}

/// The global sorted order, split into `n` balanced blocks (earlier blocks
/// one key longer when the total is not divisible by `n`). Ties break
/// stably by (key, contributing node, position).
pub fn sorted_blocks(n: usize, per_node: &[Words]) -> Vec<Words> {
    let mut tagged: Vec<(u64, usize, usize)> = Vec::new();
    for (src, words) in per_node.iter().enumerate() {
        for (pos, &w) in words.iter().enumerate() {
            tagged.push((w, src, pos));
        }
    }
    tagged.sort_unstable();
    let total = tagged.len();
    let base = total / n;
    let extra = total % n;
    let mut out = Vec::with_capacity(n);
    let mut it = tagged.into_iter().map(|(w, _, _)| w);
    for i in 0..n {
        let take = base + usize::from(i < extra);
        out.push((&mut it).take(take).collect());
    }
    out
}

/// Rounds charged by a gather of total volume `W` to one node:
/// `⌈W/(n−1)⌉` (the destination receives `n−1` words per round).
///
/// Requires `n ≥ 2` (the transport invariant — a clique needs two nodes;
/// [`crate::Clique::new`] enforces it). With `n < 2` the divisor `n − 1`
/// is zero or underflows.
pub fn gather_cost(n: usize, per_node: &[Words]) -> u64 {
    debug_assert!(n >= 2, "clique cost formulas require n >= 2, got {n}");
    let total: u64 = per_node.iter().map(|w| w.len() as u64).sum();
    total.div_ceil(n as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CliqueConfig {
        CliqueConfig::default()
    }

    #[test]
    fn sharded_delivery_matches_sequential() {
        let n = 5;
        let outboxes: Vec<Vec<(NodeId, Words)>> = (0..n)
            .map(|u| (0..n).map(|v| (v, vec![(u * n + v) as u64])).collect())
            .collect();
        let sequential = deliver(n, outboxes.clone());
        for split in 1..n {
            let (lo, hi) = outboxes.split_at(split);
            let merged = merge_inboxes(
                n,
                vec![
                    deliver_shard(n, 0, lo.to_vec()),
                    deliver_shard(n, split, hi.to_vec()),
                ],
            );
            assert_eq!(merged, sequential, "split at {split}");
        }
    }

    #[test]
    fn sharded_exchange_cost_matches_sequential() {
        let n = 4;
        let outboxes = vec![
            vec![(1, vec![1, 2]), (1, vec![3])],
            vec![(0, vec![4])],
            vec![(3, vec![5, 6, 7, 8])],
            vec![],
        ];
        let full = exchange_cost(n, &outboxes);
        assert_eq!(full, 4);
        for split in 1..n {
            let (lo, hi) = outboxes.split_at(split);
            assert_eq!(exchange_cost(n, lo).max(exchange_cost(n, hi)), full);
        }
    }

    #[test]
    fn exchange_cost_ignores_empty_payloads() {
        // Repeated zero-length payloads to one destination must neither
        // affect the pair max nor bloat the internal reset list.
        let outboxes: Vec<Vec<(NodeId, Words)>> = vec![
            vec![(1, vec![]), (1, vec![]), (1, vec![7]), (1, vec![])],
            vec![(2, vec![]); 5],
            vec![],
        ];
        assert_eq!(exchange_cost(3, &outboxes), 1);
    }

    #[test]
    fn sharded_loads_sum_to_sequential() {
        let n = 4;
        let outboxes = vec![
            vec![(1, vec![1, 2]), (2, vec![3])],
            vec![(0, vec![4])],
            vec![(1, vec![5, 6])],
            vec![],
        ];
        let (send_full, recv_full) = shard_loads(n, &outboxes);
        for split in 1..n {
            let (lo, hi) = outboxes.split_at(split);
            let (send_lo, recv_lo) = shard_loads(n, lo);
            let (send_hi, recv_hi) = shard_loads(n, hi);
            let send: Vec<u64> = send_lo.iter().chain(&send_hi).copied().collect();
            let recv: Vec<u64> = recv_lo.iter().zip(&recv_hi).map(|(a, b)| a + b).collect();
            assert_eq!(send, send_full);
            assert_eq!(recv, recv_full);
        }
    }

    #[test]
    fn strict_violation_orders_send_before_recv() {
        // Node 0 violates on receive, node 1 on send: node 0 wins (id order),
        // and within a node the send check runs first.
        let err = strict_violation(&cfg(), 2, &[0, 99], &[99, 0]).unwrap_err();
        assert_eq!(
            err,
            ModelError::CongestionExceeded {
                node: 0,
                words: 99,
                capacity: 2,
                sending: false,
            }
        );
        let err = strict_violation(&cfg(), 2, &[99, 0], &[99, 0]).unwrap_err();
        assert!(matches!(
            err,
            ModelError::CongestionExceeded { sending: true, .. }
        ));
    }

    #[test]
    fn broadcast_sim_cost_is_max_send_load() {
        assert_eq!(broadcast_sim_cost(&[]), 0);
        assert_eq!(broadcast_sim_cost(&[0, 0]), 0);
        assert_eq!(broadcast_sim_cost(&[3, 7, 1]), 7);
    }

    #[test]
    fn cost_formulas_match_documented_values() {
        assert_eq!(broadcast_all_cost(), 1);
        assert_eq!(broadcast_words_cost(&[vec![1, 2, 3], vec![], vec![9]]), 3);
        assert_eq!(broadcast_from_cost(&cfg(), 5, 8), 4);
        assert_eq!(broadcast_from_cost(&cfg(), 5, 1), 1);
        assert_eq!(
            allgather_cost(&cfg(), 3, &[vec![1, 2], vec![], vec![3]]),
            2 + 1
        );
        assert_eq!(sort_cost(&cfg(), 2, &[vec![4, 3, 2, 1, 0], vec![]]), 6);
        assert_eq!(gather_cost(3, &[vec![], vec![1, 2, 3], vec![4]]), 2);
    }

    #[test]
    fn sorted_blocks_are_balanced_and_stable() {
        let blocks = sorted_blocks(3, &[vec![9, 1], vec![5], vec![3, 7, 2]]);
        assert_eq!(blocks, vec![vec![1, 2], vec![3, 5], vec![7, 9]]);
    }

    #[test]
    fn destination_check_reports_first_in_source_order() {
        let shard = vec![vec![(1usize, vec![0u64])], vec![(7, vec![]), (9, vec![])]];
        assert_eq!(
            check_destinations(2, &shard).unwrap_err(),
            ModelError::InvalidNode { node: 7, n: 2 }
        );
    }
}
