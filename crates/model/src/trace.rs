//! [`TracingComm`]: a wrapping transport that records a structured event
//! trace of every primitive call without changing round accounting.
//!
//! Wrap any [`Communicator`] and run an algorithm unchanged; afterwards
//! the trace answers the questions round totals cannot: *which phase
//! moved how many messages and words, through which primitives, and how
//! congested were the links and nodes?* The per-phase statistics feed the
//! congestion baselines in `BENCH_*.json` (see the `bench_snapshot`
//! binary of `cc-bench`) and the JSON export is deterministic — byte
//! identical across runs of a deterministic workload — so it is safe to
//! golden-snapshot.
//!
//! Round-accounting transparency is a hard contract: the wrapper observes
//! ledger deltas, it never charges rounds of its own. The workspace test
//! suite verifies bitwise-identical round totals against bare
//! [`crate::Clique`] runs over every experiment in `cc-bench`.

use std::collections::BTreeMap;

use crate::{
    CliqueConfig, CommunicationMode, Communicator, Envelope, ModelError, NodeId, RoundLedger, Words,
};

/// Number of buckets of the per-message word-count histogram: bucket 0
/// holds empty payloads, bucket `k ≥ 1` holds sizes in
/// `[2^(k−1), 2^k)`, with the last bucket absorbing everything larger.
pub const TRACE_HIST_BUCKETS: usize = 16;

fn hist_bucket(words: usize) -> usize {
    if words == 0 {
        0
    } else {
        ((usize::BITS - words.leading_zeros()) as usize).min(TRACE_HIST_BUCKETS - 1)
    }
}

/// Logical payload statistics of one primitive call (computed from the
/// arguments before delegation; see [`TracingComm`] for the conventions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct CallStats {
    messages: u64,
    words: u64,
    max_pair_words: u64,
    max_node_send: u64,
    max_node_recv: u64,
}

/// One recorded primitive call (or phase transition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position of the event in the global call order (0-based).
    pub seq: usize,
    /// Primitive name (`"exchange"`, `"route"`, …) or `"phase_enter"` /
    /// `"phase_exit"` for phase transitions.
    pub primitive: &'static str,
    /// The `/`-joined ledger phase path the event is nested under.
    pub phase: String,
    /// Rounds the substrate charged for this call (ledger delta).
    pub rounds: u64,
    /// Logical messages carried by the call.
    pub messages: u64,
    /// Total payload words carried by the call.
    pub words: u64,
}

/// Aggregated statistics of one ledger phase (keyed by `/`-joined path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTrace {
    /// Primitive-call counts within the phase.
    pub calls: BTreeMap<&'static str, u64>,
    /// Total logical messages moved within the phase.
    pub messages: u64,
    /// Total payload words moved within the phase.
    pub words: u64,
    /// Rounds charged within the phase (excluding nested sub-phases'
    /// primitive calls, which aggregate under their own path).
    pub rounds: u64,
    /// Maximum per-ordered-pair words observed in one call.
    pub max_pair_words: u64,
    /// Maximum per-node send load observed in one call.
    pub max_node_send: u64,
    /// Maximum per-node receive load observed in one call.
    pub max_node_recv: u64,
    /// Histogram of per-message payload sizes (log₂ buckets; see
    /// [`TRACE_HIST_BUCKETS`]).
    pub message_words_hist: [u64; TRACE_HIST_BUCKETS],
}

impl Default for PhaseTrace {
    fn default() -> Self {
        Self {
            calls: BTreeMap::new(),
            messages: 0,
            words: 0,
            rounds: 0,
            max_pair_words: 0,
            max_node_send: 0,
            max_node_recv: 0,
            message_words_hist: [0; TRACE_HIST_BUCKETS],
        }
    }
}

/// A [`Communicator`] decorator recording a structured trace.
///
/// # Payload-statistics conventions
///
/// The recorded quantities are *logical*: they describe the message set
/// the algorithm handed to the primitive, not the wire-level fan-out of
/// the substrate's implementation.
///
/// * [`exchange`](Communicator::exchange) / [`route`](Communicator::route)
///   / [`route_strict`](Communicator::route_strict): one message per
///   `(src, dst, payload)` entry; `max_pair_words` is the max total words
///   on one ordered pair, node loads are per-node send/receive words.
/// * [`broadcast_all`](Communicator::broadcast_all): `n` one-word
///   messages.
/// * [`broadcast_all_words`](Communicator::broadcast_all_words) /
///   [`allgather`](Communicator::allgather) /
///   [`sort`](Communicator::sort) /
///   [`gather_to`](Communicator::gather_to): one message per node vector
///   (empty vectors are not counted as messages).
/// * [`broadcast_from`](Communicator::broadcast_from): one message of
///   `words.len()` words.
///
/// # Example
///
/// ```
/// use cc_model::{Clique, Communicator, TracingComm};
///
/// let mut comm = TracingComm::new(Clique::new(4));
/// comm.phase("demo", |comm| comm.broadcast_all(&[1, 2, 3, 4]).unwrap());
/// let trace = comm.trace_json();
/// assert!(trace.contains("\"phase\": \"demo\""));
/// assert_eq!(comm.ledger().total_rounds(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TracingComm<C: Communicator> {
    inner: C,
    events: Vec<TraceEvent>,
    phases: BTreeMap<String, PhaseTrace>,
    max_pair_words: u64,
    max_node_send: u64,
    max_node_recv: u64,
}

fn outbox_stats(n: usize, outboxes: &[Vec<(NodeId, Words)>]) -> (CallStats, Vec<usize>) {
    let mut stats = CallStats::default();
    let mut send = vec![0u64; n];
    let mut recv = vec![0u64; n];
    let mut per_dst = vec![0u64; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut sizes: Vec<usize> = Vec::new();
    for (src, per_node) in outboxes.iter().enumerate() {
        for (dst, payload) in per_node {
            let w = payload.len() as u64;
            stats.messages += 1;
            stats.words += w;
            sizes.push(payload.len());
            if src < n && *dst < n {
                send[src] += w;
                recv[*dst] += w;
                if per_dst[*dst] == 0 {
                    touched.push(*dst);
                }
                per_dst[*dst] += w;
            }
        }
        for &dst in &touched {
            stats.max_pair_words = stats.max_pair_words.max(per_dst[dst]);
            per_dst[dst] = 0;
        }
        touched.clear();
    }
    stats.max_node_send = send.iter().copied().max().unwrap_or(0);
    stats.max_node_recv = recv.iter().copied().max().unwrap_or(0);
    (stats, sizes)
}

/// Broadcast-mode attribution of a unicast-shaped outbox set: every word
/// a node emits is broadcast to the other `n − 1` nodes (there are no
/// private pairs), so the per-pair and per-node-send maxima coincide at
/// the maximum per-node send load, and every node's receive load is the
/// total broadcast volume — the same shared-view convention
/// [`vector_stats`] uses for the broadcast family.
fn broadcast_outbox_stats(outboxes: &[Vec<(NodeId, Words)>]) -> (CallStats, Vec<usize>) {
    let mut stats = CallStats::default();
    let mut sizes: Vec<usize> = Vec::new();
    let mut max_send = 0u64;
    for per_node in outboxes {
        let mut send = 0u64;
        for (_dst, payload) in per_node {
            let w = payload.len() as u64;
            stats.messages += 1;
            stats.words += w;
            send += w;
            sizes.push(payload.len());
        }
        max_send = max_send.max(send);
    }
    stats.max_pair_words = max_send;
    stats.max_node_send = max_send;
    stats.max_node_recv = stats.words;
    (stats, sizes)
}

fn vector_stats(per_node: &[Words]) -> (CallStats, Vec<usize>) {
    let mut stats = CallStats::default();
    let mut sizes = Vec::new();
    for words in per_node {
        if !words.is_empty() {
            stats.messages += 1;
            sizes.push(words.len());
        }
        let w = words.len() as u64;
        stats.words += w;
        stats.max_pair_words = stats.max_pair_words.max(w);
        stats.max_node_send = stats.max_node_send.max(w);
    }
    stats.max_node_recv = stats.words;
    (stats, sizes)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl<C: Communicator> TracingComm<C> {
    /// Wraps `inner`; the trace starts empty.
    pub fn new(inner: C) -> Self {
        Self {
            inner,
            events: Vec::new(),
            phases: BTreeMap::new(),
            max_pair_words: 0,
            max_node_send: 0,
            max_node_recv: 0,
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, discarding the trace.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The recorded events, in call order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Per-phase aggregates, keyed by `/`-joined phase path (the empty
    /// key is the top level).
    pub fn phases(&self) -> &BTreeMap<String, PhaseTrace> {
        &self.phases
    }

    /// Maximum words observed on one ordered pair in any single call.
    pub fn max_pair_words(&self) -> u64 {
        self.max_pair_words
    }

    /// Maximum per-node send load observed in any single call.
    pub fn max_node_send(&self) -> u64 {
        self.max_node_send
    }

    /// Maximum per-node receive load observed in any single call.
    pub fn max_node_recv(&self) -> u64 {
        self.max_node_recv
    }

    /// Discards the recorded trace (the wrapped ledger is untouched).
    pub fn clear_trace(&mut self) {
        self.events.clear();
        self.phases.clear();
        self.max_pair_words = 0;
        self.max_node_send = 0;
        self.max_node_recv = 0;
    }

    /// Congestion attribution for a unicast-shaped outbox set: per-pair
    /// in unicast substrates, one-sender-to-`n − 1`-receivers when the
    /// wrapped substrate reports broadcast mode (e.g.
    /// [`crate::BroadcastComm`] in measured mode).
    fn outbox_call_stats(&self, outboxes: &[Vec<(NodeId, Words)>]) -> (CallStats, Vec<usize>) {
        if self.inner.config().mode == CommunicationMode::Broadcast {
            broadcast_outbox_stats(outboxes)
        } else {
            outbox_stats(self.inner.n(), outboxes)
        }
    }

    fn record(&mut self, primitive: &'static str, stats: CallStats, sizes: &[usize], rounds: u64) {
        let phase = self.inner.ledger().current_phase().to_string();
        self.max_pair_words = self.max_pair_words.max(stats.max_pair_words);
        self.max_node_send = self.max_node_send.max(stats.max_node_send);
        self.max_node_recv = self.max_node_recv.max(stats.max_node_recv);
        let agg = self.phases.entry(phase.clone()).or_default();
        *agg.calls.entry(primitive).or_insert(0) += 1;
        agg.messages += stats.messages;
        agg.words += stats.words;
        agg.rounds += rounds;
        agg.max_pair_words = agg.max_pair_words.max(stats.max_pair_words);
        agg.max_node_send = agg.max_node_send.max(stats.max_node_send);
        agg.max_node_recv = agg.max_node_recv.max(stats.max_node_recv);
        for &s in sizes {
            agg.message_words_hist[hist_bucket(s)] += 1;
        }
        self.events.push(TraceEvent {
            seq: self.events.len(),
            primitive,
            phase,
            rounds,
            messages: stats.messages,
            words: stats.words,
        });
    }

    fn traced<T>(
        &mut self,
        primitive: &'static str,
        stats: CallStats,
        sizes: Vec<usize>,
        run: impl FnOnce(&mut C) -> T,
    ) -> T {
        let before = self.inner.ledger().total_rounds();
        let out = run(&mut self.inner);
        let rounds = self.inner.ledger().total_rounds() - before;
        self.record(primitive, stats, &sizes, rounds);
        out
    }

    /// Serializes the per-phase aggregates and global congestion maxima
    /// as deterministic JSON (no events; suitable for `BENCH_*.json`).
    pub fn congestion_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"max_pair_words\": {},\n  \"max_node_send\": {},\n  \"max_node_recv\": {},\n",
            self.max_pair_words, self.max_node_send, self.max_node_recv
        ));
        out.push_str("  \"phases\": [\n");
        let rows: Vec<String> = self
            .phases
            .iter()
            .map(|(name, p)| {
                let calls: Vec<String> = p
                    .calls
                    .iter()
                    .map(|(k, v)| format!("\"{k}\": {v}"))
                    .collect();
                let hist: Vec<String> =
                    p.message_words_hist.iter().map(|c| c.to_string()).collect();
                format!(
                    "    {{\"phase\": \"{}\", \"rounds\": {}, \"messages\": {}, \"words\": {}, \
                     \"max_pair_words\": {}, \"max_node_send\": {}, \"max_node_recv\": {}, \
                     \"calls\": {{{}}}, \"message_words_hist\": [{}]}}",
                    json_escape(name),
                    p.rounds,
                    p.messages,
                    p.words,
                    p.max_pair_words,
                    p.max_node_send,
                    p.max_node_recv,
                    calls.join(", "),
                    hist.join(", ")
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}");
        out
    }

    /// Serializes the full trace — ledger summary, per-phase aggregates,
    /// and the event list — as deterministic JSON (byte-identical across
    /// runs of a deterministic workload, so exact-match snapshots are
    /// safe).
    pub fn trace_json(&self) -> String {
        let ledger = self.inner.ledger();
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"cc-model/trace-v1\",\n");
        out.push_str(&format!("  \"n\": {},\n", self.inner.n()));
        out.push_str(&format!(
            "  \"total_rounds\": {},\n  \"implemented_rounds\": {},\n  \"charged_rounds\": {},\n",
            ledger.total_rounds(),
            ledger.implemented_rounds(),
            ledger.charged_rounds()
        ));
        let congestion = self.congestion_json();
        let congestion: String = congestion
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 0 {
                    l.to_string()
                } else {
                    format!("  {l}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        out.push_str(&format!("  \"congestion\": {congestion},\n"));
        out.push_str("  \"events\": [\n");
        let rows: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                format!(
                    "    {{\"seq\": {}, \"primitive\": \"{}\", \"phase\": \"{}\", \
                     \"rounds\": {}, \"messages\": {}, \"words\": {}}}",
                    e.seq,
                    e.primitive,
                    json_escape(&e.phase),
                    e.rounds,
                    e.messages,
                    e.words
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl<C: Communicator> Communicator for TracingComm<C> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn config(&self) -> CliqueConfig {
        self.inner.config()
    }

    fn ledger(&self) -> &RoundLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        self.inner.ledger_mut()
    }

    fn faults_observed(&self) -> u64 {
        self.inner.faults_observed()
    }

    fn push_phase(&mut self, name: &str) {
        self.inner.push_phase(name);
        self.record("phase_enter", CallStats::default(), &[], 0);
    }

    fn pop_phase(&mut self) {
        self.record("phase_exit", CallStats::default(), &[], 0);
        self.inner.pop_phase();
    }

    fn charge_oracle(&mut self, rounds: u64) {
        self.traced("charge_oracle", CallStats::default(), Vec::new(), |c| {
            c.charge_oracle(rounds)
        })
    }

    fn charge_implemented(&mut self, rounds: u64) {
        self.traced(
            "charge_implemented",
            CallStats::default(),
            Vec::new(),
            |c| c.charge_implemented(rounds),
        )
    }

    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        let (stats, sizes) = self.outbox_call_stats(&outboxes);
        self.traced("exchange", stats, sizes, |c| c.exchange(outboxes))
    }

    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        let (stats, sizes) = self.outbox_call_stats(&outboxes);
        self.traced("route", stats, sizes, |c| c.route(outboxes))
    }

    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        let (stats, sizes) = self.outbox_call_stats(&outboxes);
        self.traced("route_strict", stats, sizes, |c| c.route_strict(outboxes))
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        let stats = CallStats {
            messages: values.len() as u64,
            words: values.len() as u64,
            max_pair_words: 1,
            max_node_send: 1,
            max_node_recv: values.len() as u64,
        };
        let sizes = vec![1; values.len()];
        self.traced("broadcast_all", stats, sizes, |c| c.broadcast_all(values))
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        let (stats, sizes) = vector_stats(per_node);
        self.traced("broadcast_all_words", stats, sizes, |c| {
            c.broadcast_all_words(per_node)
        })
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        let w = words.len() as u64;
        let stats = CallStats {
            messages: u64::from(w > 0),
            words: w,
            max_pair_words: w,
            max_node_send: w,
            max_node_recv: w,
        };
        let sizes = if words.is_empty() {
            Vec::new()
        } else {
            vec![words.len()]
        };
        self.traced("broadcast_from", stats, sizes, |c| {
            c.broadcast_from(src, words)
        })
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        let (stats, sizes) = vector_stats(per_node);
        self.traced("allgather", stats, sizes, |c| c.allgather(per_node))
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        let (stats, sizes) = vector_stats(per_node);
        self.traced("sort", stats, sizes, |c| c.sort(per_node))
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        let (stats, sizes) = vector_stats(per_node);
        self.traced("gather_to", stats, sizes, |c| c.gather_to(dst, per_node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    fn workload<C: Communicator>(comm: &mut C) {
        comm.phase("outer", |comm| {
            comm.broadcast_all(&[1, 2, 3, 4]).unwrap();
            comm.phase("inner", |comm| {
                let outboxes = vec![vec![(1, vec![5, 6])], vec![], vec![(0, vec![7])], vec![]];
                comm.route(outboxes).unwrap();
                comm.charge_oracle(9);
            });
        });
    }

    #[test]
    fn wrapping_does_not_change_rounds() {
        let mut bare = Clique::new(4);
        workload(&mut bare);
        let mut traced = TracingComm::new(Clique::new(4));
        workload(&mut traced);
        assert_eq!(bare.ledger().total_rounds(), traced.ledger().total_rounds());
        assert_eq!(bare.ledger().phases(), traced.ledger().phases());
    }

    #[test]
    fn events_are_nested_under_phases() {
        let mut traced = TracingComm::new(Clique::new(4));
        workload(&mut traced);
        let kinds: Vec<(&str, &str)> = traced
            .events()
            .iter()
            .map(|e| (e.primitive, e.phase.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("phase_enter", "outer"),
                ("broadcast_all", "outer"),
                ("phase_enter", "outer/inner"),
                ("route", "outer/inner"),
                ("charge_oracle", "outer/inner"),
                ("phase_exit", "outer/inner"),
                ("phase_exit", "outer"),
            ]
        );
    }

    #[test]
    fn per_phase_congestion_is_aggregated() {
        let mut traced = TracingComm::new(Clique::new(4));
        workload(&mut traced);
        let inner = &traced.phases()["outer/inner"];
        assert_eq!(inner.messages, 2);
        assert_eq!(inner.words, 3);
        assert_eq!(inner.max_pair_words, 2);
        assert_eq!(inner.max_node_send, 2);
        assert_eq!(inner.max_node_recv, 2);
        assert_eq!(inner.calls["route"], 1);
        assert_eq!(inner.calls["charge_oracle"], 1);
        // 2-word message in bucket 2, 1-word message in bucket 1.
        assert_eq!(inner.message_words_hist[1], 1);
        assert_eq!(inner.message_words_hist[2], 1);
        let outer = &traced.phases()["outer"];
        assert_eq!(outer.messages, 4);
        assert_eq!(outer.calls["broadcast_all"], 1);
    }

    #[test]
    fn trace_json_is_deterministic() {
        let run = || {
            let mut traced = TracingComm::new(Clique::new(4));
            workload(&mut traced);
            traced.trace_json()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"schema\": \"cc-model/trace-v1\""));
        assert!(a.contains("\"phase\": \"outer/inner\""));
    }

    #[test]
    fn broadcast_congestion_attribution_is_one_sender_to_all() {
        use crate::{BroadcastComm, NodeId, Words};

        let outboxes: Vec<Vec<(NodeId, Words)>> = vec![
            vec![(1, vec![1, 2]), (2, vec![3])],
            vec![],
            vec![(0, vec![9])],
            vec![],
        ];
        // Unicast attribution: the busiest ordered pair (0 → 1) carries
        // 2 words and the busiest receiver gets 2.
        let mut unicast = TracingComm::new(Clique::new(4));
        unicast.phase("bcast", |c| c.exchange(outboxes.clone()).unwrap());
        let p = &unicast.phases()["bcast"];
        assert_eq!(
            (p.max_pair_words, p.max_node_send, p.max_node_recv),
            (2, 3, 2)
        );

        // Broadcast attribution (auto-detected from the wrapped
        // substrate's config): node 0's 3 words go to every other node,
        // so pair load = send load = 3 and every node hears all 4 words.
        let mut traced = TracingComm::new(BroadcastComm::measured(Clique::new(4)));
        traced.phase("bcast", |c| c.exchange(outboxes).unwrap());
        let p = &traced.phases()["bcast"];
        assert_eq!(
            (p.max_pair_words, p.max_node_send, p.max_node_recv),
            (3, 3, 4)
        );

        // Golden trace: the congestion JSON is pinned byte-for-byte.
        let golden = "{\n\
            \x20 \"max_pair_words\": 3,\n\
            \x20 \"max_node_send\": 3,\n\
            \x20 \"max_node_recv\": 4,\n\
            \x20 \"phases\": [\n\
            \x20   {\"phase\": \"bcast\", \"rounds\": 3, \"messages\": 3, \"words\": 4, \
            \"max_pair_words\": 3, \"max_node_send\": 3, \"max_node_recv\": 4, \
            \"calls\": {\"exchange\": 1, \"phase_enter\": 1, \"phase_exit\": 1}, \
            \"message_words_hist\": [0, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]}\n\
            \x20 ]\n}";
        assert_eq!(traced.congestion_json(), golden);
    }

    #[test]
    fn hist_buckets_are_log2() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(usize::MAX), TRACE_HIST_BUCKETS - 1);
    }
}
