//! [`BroadcastComm`]: the Broadcast Congested Clique as a wrapping
//! transport over any unicast substrate.
//!
//! In the Broadcast Congested Clique \[DKO12\] a node sends one
//! *identical* `O(log n)`-bit word to all other nodes per round — there
//! are no private point-to-point messages. The companion paper
//! Forster–de Vos (arXiv:2205.12059) re-targets the Laplacian toolkit to
//! exactly this model; `BroadcastComm` makes the restriction a
//! first-class transport at the [`Communicator`] seam, so every pipeline,
//! conformance suite, and bench tier in the workspace gains a broadcast
//! leg without touching algorithm code.
//!
//! The wrapper runs in one of two modes, chosen at construction:
//!
//! * **Strict** ([`BroadcastComm::strict`]): unicast-shaped primitives
//!   ([`exchange`](Communicator::exchange), [`route`](Communicator::route),
//!   [`route_strict`](Communicator::route_strict),
//!   [`gather_to`](Communicator::gather_to), [`sort`](Communicator::sort))
//!   are rejected with the typed
//!   [`ModelError::UnicastInBroadcastModel`]. This operationalizes the
//!   source paper's §1.1 remark that Eulerian orientation (and hence
//!   flow rounding) "seems to be a hard problem in the Broadcast
//!   Congested Clique": those pipelines fail with a typed error, while
//!   the sparsifier → Laplacian solver path — whose communication is
//!   broadcast-shaped throughout — runs unchanged.
//! * **Measured** ([`BroadcastComm::measured`]): unicast-shaped
//!   primitives are *simulated* at their honest broadcast cost — every
//!   node broadcasts its entire outbox one word per round (all nodes in
//!   parallel, destinations absorbed into the word), so a call costs the
//!   maximum per-node send load ([`delivery::broadcast_sim_cost`]).
//!   Results are bitwise identical to the unicast [`crate::Clique`] by
//!   construction (delivery goes through the same [`delivery`] kernel);
//!   only the charged rounds differ, per the documented cost table.
//!
//! # Round accounting (measured mode vs unicast [`crate::Clique`])
//!
//! | primitive | unicast clique | broadcast clique (measured) |
//! |-----------|----------------|------------------------------|
//! | `broadcast_all` | 1 | 1 |
//! | `broadcast_all_words` | `max_i w_i` | `max_i w_i` |
//! | `broadcast_from` | `2·⌈w/(n−1)⌉` for `w > 1` | `w` |
//! | `allgather` | `lenzen·⌈L/n⌉ + ⌈W/n⌉` | `max_i w_i` |
//! | `exchange` | max per-pair words | max per-node send words |
//! | `route` | `lenzen·⌈L/(cap·n)⌉` | max per-node send words |
//! | `route_strict` | budget check, then route | budget check, then as `route` |
//! | `sort` | `lenzen·⌈max_i k_i/n⌉` | `max_i k_i` |
//! | `gather_to` | `⌈W/(n−1)⌉` | `max_i w_i` |
//!
//! In strict mode the last five rows return
//! [`ModelError::UnicastInBroadcastModel`] instead.
//!
//! The wrapper performs all broadcast-specific accounting itself,
//! charging the wrapped substrate's ledger directly; the 1-word and
//! word-vector all-broadcasts (whose cost is mode-independent) delegate
//! to the substrate. Consequently `BroadcastComm<Clique>` and
//! `BroadcastComm<ThreadedComm>` are bitwise identical — results *and*
//! ledgers — which `crates/model/tests/broadcast.rs` pins with identity
//! proptests at worker counts 1, 2, and 8.

use crate::{
    delivery, CliqueConfig, CommunicationMode, Communicator, CostKind, Envelope, ModelError,
    NodeId, RoundLedger, Words,
};

/// How a [`BroadcastComm`] treats unicast-shaped primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BroadcastMode {
    /// Reject `exchange` / `route` / `route_strict` / `gather_to` /
    /// `sort` with [`ModelError::UnicastInBroadcastModel`].
    #[default]
    Strict,
    /// Simulate them at their honest broadcast cost (max per-node send
    /// load; see the module-level cost table), delivering bitwise the
    /// same results as the unicast [`crate::Clique`].
    Measured,
}

/// The Broadcast Congested Clique over any substrate; see the module
/// docs for the model, the two modes, and the cost table.
///
/// # Example
///
/// ```
/// use cc_model::{BroadcastComm, Clique, Communicator, ModelError};
///
/// // Strict mode: point-to-point primitives are typed errors.
/// let mut strict = BroadcastComm::strict(Clique::new(4));
/// let err = strict.sort(&[vec![1], vec![], vec![], vec![]]).unwrap_err();
/// assert_eq!(
///     err,
///     ModelError::UnicastInBroadcastModel { primitive: "sort" }
/// );
///
/// // Measured mode: same results as the unicast clique, broadcast cost.
/// let mut measured = BroadcastComm::measured(Clique::new(4));
/// let blocks = measured.sort(&[vec![9, 1], vec![5], vec![], vec![3]]).unwrap();
/// assert_eq!(blocks[0], vec![1]);
/// assert_eq!(measured.ledger().total_rounds(), 2); // max per-node keys
/// ```
#[derive(Debug, Clone)]
pub struct BroadcastComm<C: Communicator> {
    inner: C,
    mode: BroadcastMode,
}

impl<C: Communicator> BroadcastComm<C> {
    /// Wraps `inner` in the given mode.
    pub fn with_mode(inner: C, mode: BroadcastMode) -> Self {
        Self { inner, mode }
    }

    /// Strict broadcast clique: unicast primitives are typed errors.
    pub fn strict(inner: C) -> Self {
        Self::with_mode(inner, BroadcastMode::Strict)
    }

    /// Measured broadcast clique: unicast primitives are simulated at
    /// their honest broadcast cost.
    pub fn measured(inner: C) -> Self {
        Self::with_mode(inner, BroadcastMode::Measured)
    }

    /// The mode chosen at construction.
    pub fn mode(&self) -> BroadcastMode {
        self.mode
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Unwraps, returning the substrate (and its ledger).
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// The accounting constants with the mode forced to broadcast — the
    /// config used for every broadcast cost formula, and what
    /// [`Communicator::config`] reports so wrappers above (e.g.
    /// [`crate::TracingComm`]) can detect the broadcast regime.
    fn broadcast_config(&self) -> CliqueConfig {
        CliqueConfig {
            mode: CommunicationMode::Broadcast,
            ..self.inner.config()
        }
    }

    /// Strict-mode gate for a unicast-shaped primitive.
    fn strict_gate(&self, primitive: &'static str) -> Result<(), ModelError> {
        if self.mode == BroadcastMode::Strict {
            return Err(ModelError::UnicastInBroadcastModel { primitive });
        }
        Ok(())
    }

    /// Charges `rounds` implemented rounds to the substrate's ledger
    /// (the wrapper owns the broadcast accounting; the substrate owns
    /// the ledger).
    fn charge(&mut self, rounds: u64) {
        self.inner
            .ledger_mut()
            .charge(rounds, CostKind::Implemented);
    }

    /// Measured-mode simulation shared by `exchange` and `route`:
    /// validate like the unicast clique, charge the broadcast
    /// simulation cost, deliver through the shared kernel.
    fn simulate_unicast(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
        always_charge: bool,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        let n = self.inner.n();
        delivery::check_outboxes(n, &outboxes)?;
        let (send, _recv) = delivery::shard_loads(n, &outboxes);
        let rounds = delivery::broadcast_sim_cost(&send);
        if always_charge || rounds > 0 {
            self.charge(rounds);
        }
        Ok(delivery::deliver(n, outboxes))
    }
}

impl<C: Communicator> Communicator for BroadcastComm<C> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    /// Reports the substrate's constants with
    /// [`CliqueConfig::mode`] = [`CommunicationMode::Broadcast`], so
    /// transports stacked above attribute congestion broadcast-style.
    fn config(&self) -> CliqueConfig {
        self.broadcast_config()
    }

    fn ledger(&self) -> &RoundLedger {
        self.inner.ledger()
    }

    fn ledger_mut(&mut self) -> &mut RoundLedger {
        self.inner.ledger_mut()
    }

    fn push_phase(&mut self, name: &str) {
        self.inner.push_phase(name);
    }

    fn pop_phase(&mut self) {
        self.inner.pop_phase();
    }

    fn faults_observed(&self) -> u64 {
        self.inner.faults_observed()
    }

    fn charge_oracle(&mut self, rounds: u64) {
        self.inner.charge_oracle(rounds);
    }

    fn charge_implemented(&mut self, rounds: u64) {
        self.inner.charge_implemented(rounds);
    }

    fn exchange(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.strict_gate("exchange")?;
        // The unicast clique charges exchange unconditionally (even an
        // empty exchange touches the ledger); mirror that.
        self.simulate_unicast(outboxes, true)
    }

    fn route(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.strict_gate("route")?;
        // The unicast clique leaves the ledger untouched for an empty
        // route; mirror that.
        self.simulate_unicast(outboxes, false)
    }

    fn route_strict(
        &mut self,
        outboxes: Vec<Vec<(NodeId, Words)>>,
    ) -> Result<Vec<Vec<Envelope>>, ModelError> {
        self.strict_gate("route_strict")?;
        let n = self.inner.n();
        delivery::check_outboxes(n, &outboxes)?;
        let (send, recv) = delivery::shard_loads(n, &outboxes);
        // Keep the unicast budget check so congestion errors are value-
        // identical to `Clique::route_strict` before the cost diverges.
        delivery::strict_violation(&self.inner.config(), n, &send, &recv)?;
        let rounds = delivery::broadcast_sim_cost(&send);
        if rounds > 0 {
            self.charge(rounds);
        }
        Ok(delivery::deliver(n, outboxes))
    }

    fn broadcast_all(&mut self, values: &[u64]) -> Result<Vec<u64>, ModelError> {
        self.inner.broadcast_all(values)
    }

    fn broadcast_all_into(&mut self, values: &[u64], out: &mut Vec<u64>) -> Result<(), ModelError> {
        self.inner.broadcast_all_into(values, out)
    }

    fn broadcast_all_words(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.inner.broadcast_all_words(per_node)
    }

    fn broadcast_from(&mut self, src: NodeId, words: &Words) -> Result<Words, ModelError> {
        let n = self.inner.n();
        if src >= n {
            return Err(ModelError::InvalidNode { node: src, n });
        }
        let rounds = delivery::broadcast_from_cost(&self.broadcast_config(), n, words.len() as u64);
        self.charge(rounds);
        Ok(words.clone())
    }

    fn allgather(&mut self, per_node: &[Words]) -> Result<(Words, Vec<usize>), ModelError> {
        let n = self.inner.n();
        delivery::check_len(n, per_node.len())?;
        // The broadcast-mode allgather always touches the ledger (the
        // unbalanced fallback broadcast runs even when empty), exactly
        // like `Clique` in broadcast mode.
        let rounds = delivery::allgather_cost(&self.broadcast_config(), n, per_node);
        self.charge(rounds);
        Ok(delivery::concat_words(n, per_node))
    }

    fn sort(&mut self, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.strict_gate("sort")?;
        let n = self.inner.n();
        delivery::check_len(n, per_node.len())?;
        if per_node.iter().any(|w| !w.is_empty()) {
            // Everyone broadcasts their keys (max per-node keys rounds);
            // the globally sorted blocks are then known locally.
            self.charge(delivery::broadcast_words_cost(per_node));
        }
        Ok(delivery::sorted_blocks(n, per_node))
    }

    fn gather_to(&mut self, dst: NodeId, per_node: &[Words]) -> Result<Vec<Words>, ModelError> {
        self.strict_gate("gather_to")?;
        let n = self.inner.n();
        if dst >= n {
            return Err(ModelError::InvalidNode { node: dst, n });
        }
        delivery::check_len(n, per_node.len())?;
        // A broadcast gather cannot target one node: everyone broadcasts
        // their vector and `dst` (like everyone else) hears it all.
        self.charge(delivery::broadcast_words_cost(per_node));
        Ok(per_node.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clique;

    #[test]
    fn strict_rejects_every_unicast_primitive_with_typed_error() {
        let mut comm = BroadcastComm::strict(Clique::new(4));
        let outboxes = vec![vec![(1, vec![1u64])], vec![], vec![], vec![]];
        let per_node = vec![vec![1u64], vec![], vec![], vec![]];
        assert_eq!(
            comm.exchange(outboxes.clone()).unwrap_err(),
            ModelError::UnicastInBroadcastModel {
                primitive: "exchange"
            }
        );
        assert_eq!(
            comm.route(outboxes.clone()).unwrap_err(),
            ModelError::UnicastInBroadcastModel { primitive: "route" }
        );
        assert_eq!(
            comm.route_strict(outboxes).unwrap_err(),
            ModelError::UnicastInBroadcastModel {
                primitive: "route_strict"
            }
        );
        assert_eq!(
            comm.sort(&per_node).unwrap_err(),
            ModelError::UnicastInBroadcastModel { primitive: "sort" }
        );
        assert_eq!(
            comm.gather_to(0, &per_node).unwrap_err(),
            ModelError::UnicastInBroadcastModel {
                primitive: "gather_to"
            }
        );
        // Rejections never touch the ledger.
        assert_eq!(comm.ledger().total_rounds(), 0);
        assert!(comm.ledger().phases().is_empty());
    }

    #[test]
    fn broadcast_family_works_in_both_modes_at_broadcast_cost() {
        for mode in [BroadcastMode::Strict, BroadcastMode::Measured] {
            let mut comm = BroadcastComm::with_mode(Clique::new(5), mode);
            assert_eq!(
                comm.broadcast_all(&[1, 2, 3, 4, 5]).unwrap(),
                vec![1, 2, 3, 4, 5]
            );
            assert_eq!(comm.ledger().total_rounds(), 1);
            let before = comm.ledger().total_rounds();
            // 8 words from one source: w rounds (no scatter helpers),
            // not the unicast clique's 2·⌈8/4⌉ = 4.
            comm.broadcast_from(0, &(0..8).collect()).unwrap();
            assert_eq!(comm.ledger().total_rounds() - before, 8);
            let before = comm.ledger().total_rounds();
            let (all, offsets) = comm
                .allgather(&[vec![1, 2], vec![], vec![3], vec![], vec![4]])
                .unwrap();
            assert_eq!(all, vec![1, 2, 3, 4]);
            assert_eq!(offsets, vec![0, 2, 2, 3, 3, 4]);
            // Unbalanced broadcast allgather: max contribution = 2.
            assert_eq!(comm.ledger().total_rounds() - before, 2);
        }
    }

    #[test]
    fn measured_exchange_charges_max_send_load() {
        let mut comm = BroadcastComm::measured(Clique::new(3));
        // Node 0 sends 3 words total; unicast max-pair would also be 3
        // here, so split across destinations to tell the formulas apart.
        let outboxes = vec![
            vec![(1, vec![1, 2]), (2, vec![3])],
            vec![],
            vec![(0, vec![9])],
        ];
        let mut unicast = Clique::new(3);
        let want = unicast.exchange(outboxes.clone()).unwrap();
        let got = comm.exchange(outboxes).unwrap();
        assert_eq!(want, got, "delivery is bitwise identical");
        assert_eq!(unicast.ledger().total_rounds(), 2); // max pair
        assert_eq!(comm.ledger().total_rounds(), 3); // max send
    }

    #[test]
    fn measured_route_strict_keeps_unicast_congestion_error() {
        let outboxes = vec![
            vec![(1, (0..9).collect::<Vec<u64>>())],
            vec![],
            vec![],
            vec![],
        ];
        let mut unicast = Clique::new(4);
        let mut comm = BroadcastComm::measured(Clique::new(4));
        assert_eq!(
            unicast.route_strict(outboxes.clone()).unwrap_err(),
            comm.route_strict(outboxes).unwrap_err()
        );
        assert_eq!(comm.ledger().total_rounds(), 0);
    }

    #[test]
    fn measured_sort_and_gather_charge_broadcast_words() {
        let mut comm = BroadcastComm::measured(Clique::new(3));
        let blocks = comm.sort(&[vec![9, 1], vec![5], vec![3, 7, 2]]).unwrap();
        assert_eq!(
            blocks,
            Clique::new(3)
                .sort(&[vec![9, 1], vec![5], vec![3, 7, 2]])
                .unwrap()
        );
        assert_eq!(comm.ledger().total_rounds(), 3); // max per-node keys
        let before = comm.ledger().total_rounds();
        let gathered = comm
            .gather_to(0, &[vec![], vec![1, 2, 3], vec![4]])
            .unwrap();
        assert_eq!(gathered[1], vec![1, 2, 3]);
        assert_eq!(comm.ledger().total_rounds() - before, 3); // max_i w_i
    }

    #[test]
    fn structural_errors_match_the_unicast_clique() {
        let mut unicast = Clique::new(3);
        let mut comm = BroadcastComm::measured(Clique::new(3));
        assert_eq!(
            unicast.exchange(vec![Vec::new(); 4]).unwrap_err(),
            comm.exchange(vec![Vec::new(); 4]).unwrap_err()
        );
        let bad = vec![vec![(7usize, vec![1u64])], vec![], vec![]];
        assert_eq!(
            unicast.route(bad.clone()).unwrap_err(),
            comm.route(bad).unwrap_err()
        );
        assert_eq!(
            unicast.gather_to(9, &[vec![], vec![], vec![]]).unwrap_err(),
            comm.gather_to(9, &[vec![], vec![], vec![]]).unwrap_err()
        );
        assert_eq!(
            unicast.broadcast_from(5, &vec![1]).unwrap_err(),
            comm.broadcast_from(5, &vec![1]).unwrap_err()
        );
    }

    #[test]
    fn config_reports_broadcast_mode() {
        let comm = BroadcastComm::strict(Clique::new(2));
        assert_eq!(comm.config().mode, CommunicationMode::Broadcast);
        assert_eq!(comm.mode(), BroadcastMode::Strict);
        // The substrate's other constants pass through.
        assert_eq!(
            comm.config().lenzen_rounds,
            comm.inner().config().lenzen_rounds
        );
    }

    #[test]
    fn phases_attribute_through_the_wrapper() {
        let mut comm = BroadcastComm::measured(Clique::new(2));
        comm.phase("outer", |c| {
            c.broadcast_all(&[1, 2]).unwrap();
            c.phase("inner", |c| c.charge_oracle(5));
        });
        assert_eq!(comm.ledger().phase("outer").implemented, 1);
        assert_eq!(comm.ledger().phase("outer/inner").charged, 5);
    }
}
