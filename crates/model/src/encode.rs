//! Packing scalars into machine words.
//!
//! The model's messages are sequences of `O(log n)`-bit words. Following the
//! paper's convention (footnote 2: `poly log` precision factors are absorbed
//! into `n^{o(1)}`), each `f64` / `i64` scalar is packed into a single word.

/// Packs a floating point scalar into one word.
///
/// ```
/// let w = cc_model::encode_f64(-2.5);
/// assert_eq!(cc_model::decode_f64(w), -2.5);
/// ```
#[inline]
pub fn encode_f64(x: f64) -> u64 {
    x.to_bits()
}

/// Unpacks a floating point scalar from a word produced by [`encode_f64`].
#[inline]
pub fn decode_f64(w: u64) -> f64 {
    f64::from_bits(w)
}

/// Packs a signed integer into one word.
///
/// ```
/// let w = cc_model::encode_i64(-7);
/// assert_eq!(cc_model::decode_i64(w), -7);
/// ```
#[inline]
pub fn encode_i64(x: i64) -> u64 {
    x as u64
}

/// Unpacks a signed integer from a word produced by [`encode_i64`].
#[inline]
pub fn decode_i64(w: u64) -> i64 {
    w as i64
}

/// Packs a scalar as `B`-fractional-bit fixed point — the strict
/// `O(log n)`-bit word regime of the model (the paper's footnote 2
/// absorbs the `poly log` precision factors; this encoding makes the
/// quantization explicit so its effect can be measured).
///
/// Values are clamped to the representable range
/// `±2^(62−frac_bits)`.
///
/// ```
/// let w = cc_model::encode_f64_fixed(1.0 / 3.0, 16);
/// let x = cc_model::decode_f64_fixed(w, 16);
/// assert!((x - 1.0 / 3.0).abs() <= 1.0 / 65536.0);
/// ```
///
/// # Panics
///
/// Panics if `frac_bits >= 63`.
#[inline]
pub fn encode_f64_fixed(x: f64, frac_bits: u32) -> u64 {
    assert!(
        frac_bits < 63,
        "frac_bits must leave room for the integer part"
    );
    let scale = (1u64 << frac_bits) as f64;
    let bound = (1i64 << 62) as f64;
    let q = (x * scale).round().clamp(-bound, bound) as i64;
    q as u64
}

/// Unpacks a scalar packed by [`encode_f64_fixed`].
///
/// # Panics
///
/// Panics if `frac_bits >= 63`.
#[inline]
pub fn decode_f64_fixed(w: u64, frac_bits: u32) -> f64 {
    assert!(
        frac_bits < 63,
        "frac_bits must leave room for the integer part"
    );
    (w as i64) as f64 / (1u64 << frac_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn f64_roundtrip(x in proptest::num::f64::ANY) {
            let back = decode_f64(encode_f64(x));
            if x.is_nan() {
                prop_assert!(back.is_nan());
            } else {
                prop_assert_eq!(back, x);
            }
        }

        #[test]
        fn i64_roundtrip(x in proptest::num::i64::ANY) {
            prop_assert_eq!(decode_i64(encode_i64(x)), x);
        }
    }

    proptest! {
        #[test]
        fn fixed_point_error_is_half_ulp(x in -1e3f64..1e3, bits in 4u32..40) {
            // Within the exactly-representable regime (|x|·2^bits ≪ 2^53)
            // the quantization error is at most half a grid step.
            let back = decode_f64_fixed(encode_f64_fixed(x, bits), bits);
            let ulp = 1.0 / (1u64 << bits) as f64;
            prop_assert!((back - x).abs() <= ulp / 2.0 + x.abs() * 1e-14);
        }
    }

    #[test]
    fn fixed_point_clamps_out_of_range() {
        let w = encode_f64_fixed(1e300, 20);
        assert!(decode_f64_fixed(w, 20).is_finite());
    }

    #[test]
    fn special_values() {
        assert_eq!(decode_f64(encode_f64(f64::INFINITY)), f64::INFINITY);
        assert_eq!(decode_f64(encode_f64(0.0)), 0.0);
        assert_eq!(decode_i64(encode_i64(i64::MIN)), i64::MIN);
    }
}
