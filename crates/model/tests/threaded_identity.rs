//! Property-based bitwise identity: [`ThreadedComm`] at worker counts
//! 1, 2, and 8 must produce results *and* ledgers identical to the
//! sequential [`Clique`] on randomized workloads over every primitive —
//! bare, and under stacked [`TracingComm`]/[`FaultComm`] wrappers.
//!
//! Identity is asserted on the strongest observable surface: every
//! primitive's return value (including errors), the full phase map, and
//! the human-readable ledger report string.

use cc_model::{Clique, Communicator, FaultComm, FaultPlan, ThreadedComm, TracingComm};
use proptest::prelude::*;

/// Deterministic xorshift stream so both transports replay the exact
/// same workload from one proptest-drawn seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn random_outboxes(rng: &mut Lcg, n: usize, max_msgs: usize) -> Vec<Vec<(usize, Vec<u64>)>> {
    (0..n)
        .map(|_| {
            (0..rng.below(max_msgs + 1))
                .map(|_| {
                    let dst = rng.below(n);
                    let words = (0..1 + rng.below(3)).map(|_| rng.next()).collect();
                    (dst, words)
                })
                .collect()
        })
        .collect()
}

fn random_words_per_node(rng: &mut Lcg, n: usize, max_words: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|_| (0..rng.below(max_words + 1)).map(|_| rng.next()).collect())
        .collect()
}

/// Runs the same randomized script over any transport, folding every
/// observable outcome (values and errors) into a digest.
fn run_script<C: Communicator>(comm: &mut C, n: usize, seed: u64, steps: usize) -> u64 {
    let mut rng = Lcg(seed);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |s: String| {
        for b in s.bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for step in 0..steps {
        match rng.below(10) {
            0 => fold(format!(
                "{:?}",
                comm.exchange(random_outboxes(&mut rng, n, 2))
            )),
            1 => fold(format!("{:?}", comm.route(random_outboxes(&mut rng, n, 3)))),
            2 => fold(format!(
                "{:?}",
                comm.route_strict(random_outboxes(&mut rng, n, 2))
            )),
            3 => {
                let v: Vec<u64> = (0..n).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_all(&v)));
            }
            4 => fold(format!(
                "{:?}",
                comm.broadcast_all_words(&random_words_per_node(&mut rng, n, 3))
            )),
            5 => {
                let src = rng.below(n);
                let w: Vec<u64> = (0..1 + rng.below(4)).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_from(src, &w)));
            }
            6 => fold(format!(
                "{:?}",
                comm.allgather(&random_words_per_node(&mut rng, n, 3))
            )),
            7 => fold(format!(
                "{:?}",
                comm.sort(&random_words_per_node(&mut rng, n, 3))
            )),
            8 => {
                let dst = rng.below(n);
                fold(format!(
                    "{:?}",
                    comm.gather_to(dst, &random_words_per_node(&mut rng, n, 2))
                ));
            }
            _ => {
                let name = format!("phase{}", step % 3);
                let inner = random_outboxes(&mut rng, n, 2);
                let r = comm.phase(&name, |c| {
                    c.charge_oracle(1 + (step as u64 % 4));
                    c.route(inner)
                });
                fold(format!("{r:?}"));
            }
        }
    }
    // Structural error paths: wrong outbox count and an out-of-range
    // destination must surface the identical typed error on both sides.
    fold(format!("{:?}", comm.exchange(vec![Vec::new(); n + 1])));
    fold(format!("{:?}", comm.broadcast_all(&vec![0u64; n - 1])));
    let mut bad = vec![Vec::new(); n];
    bad[n / 2].push((n + 3, vec![1]));
    bad[n - 1].push((n + 9, vec![2]));
    fold(format!("{:?}", comm.route(bad)));
    digest
}

fn assert_ledgers_identical(a: &dyn Communicator, b: &dyn Communicator, ctx: &str) {
    assert_eq!(a.ledger().phases(), b.ledger().phases(), "{ctx}: phase map");
    assert_eq!(a.ledger().report(), b.ledger().report(), "{ctx}: report");
    assert_eq!(
        a.ledger().total_rounds(),
        b.ledger().total_rounds(),
        "{ctx}: totals"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bare transports: same script, same digest, same ledger, at every
    /// worker count.
    #[test]
    fn threaded_matches_clique_bitwise(
        n in 2usize..17,
        seed in 0u64..1_000_000,
        steps in 4usize..24,
    ) {
        let mut seq = Clique::new(n);
        let want = run_script(&mut seq, n, seed, steps);
        for workers in [1usize, 2, 8] {
            let mut par = ThreadedComm::with_workers(n, workers);
            let got = run_script(&mut par, n, seed, steps);
            prop_assert_eq!(want, got, "workers={}", workers);
            assert_ledgers_identical(&seq, &par, &format!("workers={workers}"));
        }
    }

    /// Stacked wrappers: TracingComm and a benign FaultComm over
    /// ThreadedComm behave exactly as the same stack over Clique.
    #[test]
    fn wrapped_threaded_matches_wrapped_clique(
        n in 2usize..13,
        seed in 0u64..1_000_000,
        steps in 4usize..16,
    ) {
        for workers in [1usize, 2, 8] {
            let mut seq = TracingComm::new(FaultComm::new(
                Clique::new(n),
                FaultPlan::default(),
            ));
            let mut par = TracingComm::new(FaultComm::new(
                ThreadedComm::with_workers(n, workers),
                FaultPlan::default(),
            ));
            let want = run_script(&mut seq, n, seed, steps);
            let got = run_script(&mut par, n, seed, steps);
            prop_assert_eq!(want, got, "workers={}", workers);
            assert_ledgers_identical(&seq, &par, &format!("stacked workers={workers}"));
            assert_eq!(
                seq.trace_json(),
                par.trace_json(),
                "trace JSON identical through the stack"
            );
        }
    }

    /// A fault-injecting plan over ThreadedComm injects the same faults
    /// at the same call indices as over Clique (the fault stream is a
    /// transport-independent property of the plan).
    #[test]
    fn fault_streams_are_transport_independent(
        n in 2usize..9,
        seed in 0u64..10_000,
    ) {
        let plan = FaultPlan { seed, failure_rate: 0.4, ..FaultPlan::default() };
        let mut seq = FaultComm::new(Clique::new(n), plan.clone());
        let mut par = FaultComm::new(ThreadedComm::with_workers(n, 2), plan);
        let a: Vec<bool> = (0..24)
            .map(|_| seq.broadcast_all(&vec![0u64; n]).is_ok())
            .collect();
        let b: Vec<bool> = (0..24)
            .map(|_| par.broadcast_all(&vec![0u64; n]).is_ok())
            .collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(seq.injected_faults(), par.injected_faults());
        assert_ledgers_identical(&seq, &par, "faulty");
    }
}
