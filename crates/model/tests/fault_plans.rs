//! Per-knob `FaultPlan` pins: each knob of the plan, exercised in
//! isolation against a plain `Clique`, behaves exactly as documented and
//! is deterministic per seed.

use cc_model::{Clique, Communicator, FaultComm, FaultPlan, ModelError, ThreadedComm};

fn one_word_outboxes(n: usize) -> Vec<Vec<(usize, Vec<u64>)>> {
    // Node 0 sends one word to node 1; everyone else is silent.
    let mut out = vec![Vec::new(); n];
    out[0].push((1, vec![7]));
    out
}

#[test]
fn default_plan_injects_nothing_and_preserves_rounds() {
    let mut plain = Clique::new(4);
    let echo_plain = plain.broadcast_all(&[1, 2, 3, 4]);
    let plain_rounds = plain.ledger().total_rounds();

    let mut faulty = FaultComm::new(Clique::new(4), FaultPlan::default());
    let echo_faulty = faulty.broadcast_all(&[1, 2, 3, 4]);
    assert_eq!(echo_plain, echo_faulty);
    assert_eq!(faulty.ledger().total_rounds(), plain_rounds);
    assert!(faulty.broadcast_all(&[0, 0, 0, 0]).is_ok());
    assert!(faulty.route(one_word_outboxes(4)).is_ok());
    assert_eq!(faulty.injected_faults(), 0);
}

#[test]
fn fail_phases_matches_path_fragments_only() {
    let plan = FaultPlan {
        fail_phases: vec!["doomed".into()],
        ..FaultPlan::default()
    };
    let mut comm = FaultComm::new(Clique::new(4), plan);

    // Outside any matching phase: calls succeed.
    let ok = comm.phase("healthy", |c| c.broadcast_all(&[0, 0, 0, 0]));
    assert!(ok.is_ok());
    assert_eq!(comm.injected_faults(), 0);

    // Inside a phase whose path contains the fragment: injected fault,
    // recognizable by its zero capacity.
    let err = comm
        .phase("doomed_phase", |c| c.broadcast_all(&[0, 0, 0, 0]))
        .expect_err("fragment must match");
    assert!(matches!(
        err,
        ModelError::CongestionExceeded { capacity: 0, .. }
    ));
    assert_eq!(comm.injected_faults(), 1);

    // Nested sub-phases inherit the match through the phase path.
    let err = comm
        .phase("doomed_phase", |c| {
            c.phase("inner", |c| c.route(one_word_outboxes(4)))
        })
        .expect_err("nested phase path still contains the fragment");
    assert!(matches!(
        err,
        ModelError::CongestionExceeded { capacity: 0, .. }
    ));
    assert_eq!(comm.injected_faults(), 2);
}

#[test]
fn failure_rate_stream_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let plan = FaultPlan {
            seed,
            failure_rate: 0.5,
            ..FaultPlan::default()
        };
        let mut comm = FaultComm::new(Clique::new(4), plan);
        let outcomes: Vec<bool> = (0..32)
            .map(|_| comm.broadcast_all(&[0, 0, 0, 0]).is_ok())
            .collect();
        (outcomes, comm.injected_faults())
    };
    let (a1, i1) = run(42);
    let (a2, i2) = run(42);
    assert_eq!(a1, a2, "same seed, same fault pattern");
    assert_eq!(i1, i2);
    assert!(i1 > 0, "rate 0.5 over 32 draws injects something");
    assert!(a1.iter().any(|ok| *ok), "rate 0.5 is not rate 1.0");

    let (b, _) = run(43);
    assert_ne!(a1, b, "different seeds give different streams");
}

#[test]
fn failure_rate_extremes_are_never_and_always() {
    let mut never = FaultComm::new(
        Clique::new(4),
        FaultPlan {
            failure_rate: 0.0,
            ..FaultPlan::default()
        },
    );
    for _ in 0..16 {
        assert!(never.broadcast_all(&[0, 0, 0, 0]).is_ok());
    }
    assert_eq!(never.injected_faults(), 0);

    let mut always = FaultComm::new(
        Clique::new(4),
        FaultPlan {
            failure_rate: 1.0,
            ..FaultPlan::default()
        },
    );
    for _ in 0..16 {
        assert!(always.broadcast_all(&[0, 0, 0, 0]).is_err());
    }
    assert_eq!(always.injected_faults(), 16);
}

#[test]
fn routing_capacity_factor_tightens_the_per_call_budget() {
    let plan = FaultPlan {
        routing_capacity_factor: Some(1),
        ..FaultPlan::default()
    };
    let mut comm = FaultComm::new(Clique::new(4), plan);

    // Within the tightened 1·n = 4-word budget: fine.
    assert!(comm.route(one_word_outboxes(4)).is_ok());

    // A 9-word burst into one node exceeds it — a *genuine* congestion
    // error (non-zero words/capacity), not an injected one.
    let mut heavy = vec![Vec::new(); 4];
    heavy[0].push((1usize, (0..9u64).collect::<Vec<u64>>()));
    let err = comm
        .route(heavy)
        .expect_err("burst exceeds tightened budget");
    match err {
        ModelError::CongestionExceeded {
            words, capacity, ..
        } => {
            assert_eq!(words, 9);
            assert_eq!(capacity, 4);
        }
        other => panic!("unexpected error: {other}"),
    }
    assert_eq!(comm.injected_faults(), 0, "budget errors are not injected");

    // The plain substrate batches the same burst without complaint.
    let mut plain = Clique::new(4);
    let mut heavy = vec![Vec::new(); 4];
    heavy[0].push((1usize, (0..9u64).collect::<Vec<u64>>()));
    assert!(plain.route(heavy).is_ok());
}

#[test]
fn max_message_words_allows_payloads_within_budget() {
    let plan = FaultPlan {
        max_message_words: Some(2),
        ..FaultPlan::default()
    };
    let mut comm = FaultComm::new(Clique::new(4), plan);
    let mut out = vec![Vec::new(); 4];
    out[0].push((1usize, vec![1, 2]));
    assert!(
        comm.route(out).is_ok(),
        "2-word message within 2-word budget"
    );
}

#[test]
fn seeded_fault_stream_is_identical_across_threaded_worker_counts() {
    // The seeded fault stream is a pure function of the plan and the call
    // sequence — never of the substrate or its worker count — so the same
    // plan over `ThreadedComm` at any parallelism injects the exact same
    // faults (and charges the same rounds) as over a plain `Clique`.
    let plan = || FaultPlan {
        seed: 42,
        failure_rate: 0.5,
        fail_phases: vec!["doomed".into()],
        ..FaultPlan::default()
    };
    fn run<C: Communicator>(inner: C, plan: FaultPlan) -> (Vec<bool>, u64, u64) {
        let mut comm = FaultComm::new(inner, plan);
        let mut outcomes = Vec::new();
        for k in 0..24u64 {
            outcomes.push(comm.broadcast_all(&[k, k, k, k]).is_ok());
            let ok = comm.phase("doomed_window", |c| c.route(one_word_outboxes(4)));
            outcomes.push(ok.is_ok());
        }
        (
            outcomes,
            comm.injected_faults(),
            comm.ledger().total_rounds(),
        )
    }

    let baseline = run(Clique::new(4), plan());
    assert!(baseline.1 > 0, "the slate must inject something");
    for workers in [1usize, 2, 8] {
        let threaded = run(ThreadedComm::with_workers(4, workers), plan());
        assert_eq!(
            baseline, threaded,
            "fault stream diverged at {workers} workers"
        );
    }
}

#[test]
#[should_panic(expected = "fault plan violated")]
fn max_message_words_panics_on_oversized_payloads() {
    let plan = FaultPlan {
        max_message_words: Some(2),
        ..FaultPlan::default()
    };
    let mut comm = FaultComm::new(Clique::new(4), plan);
    let mut out = vec![Vec::new(); 4];
    out[0].push((1usize, vec![1, 2, 3]));
    let _ = comm.route(out);
}
