//! Golden snapshots of the human-readable ledger report and the JSON
//! trace on a small fixed workload.
//!
//! Everything in the model is deterministic (no time, no randomness, no
//! hash-order iteration), so exact string equality is safe — and it is
//! the point: these snapshots pin the output formats that downstream
//! tooling (EXPERIMENTS.md, `bench_snapshot`) parses or embeds. If you
//! change a format deliberately, update the goldens in the same commit.

use cc_model::{Clique, Communicator, TracingComm};

/// A tiny workload exercising every traffic-moving primitive plus nested
/// phases and oracle charging, on n = 4.
fn workload<C: Communicator>(comm: &mut C) {
    comm.phase("build", |c| {
        c.broadcast_all(&[1, 2, 3, 4]).unwrap();
        c.phase("sparsify", |c| {
            c.route(vec![
                vec![(1, vec![10, 11])],
                vec![(2, vec![12])],
                vec![],
                vec![],
            ])
            .unwrap();
            c.charge_oracle(4);
        });
    });
    comm.phase("solve", |c| {
        let _ = c.allgather(&[vec![1], vec![2, 3], vec![], vec![4]]);
        c.gather_to(0, &[vec![], vec![9], vec![8], vec![7]])
            .unwrap();
        c.sort(&[vec![5, 1], vec![2], vec![9], vec![]]).unwrap();
        c.broadcast_from(2, &vec![6, 6, 6, 6]).unwrap();
    });
}

const GOLDEN_REPORT: &str = "\
total rounds: 17 (implemented 13, charged 4)
  build                                                     1 (impl        1, charged        0)
  build/sparsify                                            6 (impl        2, charged        4)
  solve                                                    10 (impl       10, charged        0)
";

#[test]
fn round_ledger_report_matches_golden() {
    let mut clique = Clique::new(4);
    workload(&mut clique);
    assert_eq!(clique.ledger().report(), GOLDEN_REPORT);
}

const GOLDEN_TRACE: &str = r#"{
  "schema": "cc-model/trace-v1",
  "n": 4,
  "total_rounds": 17,
  "implemented_rounds": 13,
  "charged_rounds": 4,
  "congestion": {
    "max_pair_words": 4,
    "max_node_send": 4,
    "max_node_recv": 4,
    "phases": [
      {"phase": "build", "rounds": 1, "messages": 4, "words": 4, "max_pair_words": 1, "max_node_send": 1, "max_node_recv": 4, "calls": {"broadcast_all": 1, "phase_enter": 1, "phase_exit": 1}, "message_words_hist": [0, 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]},
      {"phase": "build/sparsify", "rounds": 6, "messages": 2, "words": 3, "max_pair_words": 2, "max_node_send": 2, "max_node_recv": 2, "calls": {"charge_oracle": 1, "phase_enter": 1, "phase_exit": 1, "route": 1}, "message_words_hist": [0, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]},
      {"phase": "solve", "rounds": 10, "messages": 10, "words": 15, "max_pair_words": 4, "max_node_send": 4, "max_node_recv": 4, "calls": {"allgather": 1, "broadcast_from": 1, "gather_to": 1, "phase_enter": 1, "phase_exit": 1, "sort": 1}, "message_words_hist": [0, 7, 2, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]}
    ]
  },
  "events": [
    {"seq": 0, "primitive": "phase_enter", "phase": "build", "rounds": 0, "messages": 0, "words": 0},
    {"seq": 1, "primitive": "broadcast_all", "phase": "build", "rounds": 1, "messages": 4, "words": 4},
    {"seq": 2, "primitive": "phase_enter", "phase": "build/sparsify", "rounds": 0, "messages": 0, "words": 0},
    {"seq": 3, "primitive": "route", "phase": "build/sparsify", "rounds": 2, "messages": 2, "words": 3},
    {"seq": 4, "primitive": "charge_oracle", "phase": "build/sparsify", "rounds": 4, "messages": 0, "words": 0},
    {"seq": 5, "primitive": "phase_exit", "phase": "build/sparsify", "rounds": 0, "messages": 0, "words": 0},
    {"seq": 6, "primitive": "phase_exit", "phase": "build", "rounds": 0, "messages": 0, "words": 0},
    {"seq": 7, "primitive": "phase_enter", "phase": "solve", "rounds": 0, "messages": 0, "words": 0},
    {"seq": 8, "primitive": "allgather", "phase": "solve", "rounds": 3, "messages": 3, "words": 4},
    {"seq": 9, "primitive": "gather_to", "phase": "solve", "rounds": 1, "messages": 3, "words": 3},
    {"seq": 10, "primitive": "sort", "phase": "solve", "rounds": 2, "messages": 3, "words": 4},
    {"seq": 11, "primitive": "broadcast_from", "phase": "solve", "rounds": 4, "messages": 1, "words": 4},
    {"seq": 12, "primitive": "phase_exit", "phase": "solve", "rounds": 0, "messages": 0, "words": 0}
  ]
}
"#;

#[test]
fn trace_json_matches_golden() {
    let mut comm = TracingComm::new(Clique::new(4));
    workload(&mut comm);
    assert_eq!(comm.trace_json(), GOLDEN_TRACE);
}

#[test]
fn congestion_json_is_embedded_in_the_trace() {
    // `congestion_json()` is the phase-level view embedded by
    // `bench_snapshot`; it must stay consistent with the full trace.
    let mut comm = TracingComm::new(Clique::new(4));
    workload(&mut comm);
    let congestion = comm.congestion_json();
    for line in congestion.lines() {
        assert!(
            GOLDEN_TRACE.contains(line.trim()),
            "congestion_json line not found in trace_json: {line}"
        );
    }
}

#[test]
fn tracing_wrapper_reports_the_same_ledger_as_bare() {
    let mut bare = Clique::new(4);
    let mut traced = TracingComm::new(Clique::new(4));
    workload(&mut bare);
    workload(&mut traced);
    assert_eq!(bare.ledger().report(), traced.ledger().report());
}
