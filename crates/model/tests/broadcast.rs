//! Property-based pinning of [`BroadcastComm`], the Broadcast Congested
//! Clique transport:
//!
//! * **measured mode** delivers results bitwise identical to the unicast
//!   [`Clique`] on randomized workloads over every primitive, and is
//!   fully bitwise identical — results *and* ledgers — over `Clique`
//!   versus [`ThreadedComm`] at worker counts 1, 2, and 8;
//! * **strict mode** rejects every unicast-shaped primitive with the
//!   typed [`ModelError::UnicastInBroadcastModel`] while the
//!   broadcast-expressible surface stays identical to measured mode;
//! * the wrapping transports ([`TracingComm`], [`FaultComm`],
//!   [`AdversaryComm`]) stack over `BroadcastComm` without changing its
//!   accounting, and their observability output is substrate-independent.

use cc_model::{
    AdversaryComm, AdversarySchedule, AdversaryStrategy, BroadcastComm, Clique, Communicator,
    FaultComm, FaultPlan, ModelError, ThreadedComm, TracingComm,
};
use proptest::prelude::*;

/// Deterministic xorshift stream so every transport replays the exact
/// same workload from one proptest-drawn seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        let mut x = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        self.0 = x;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn random_outboxes(rng: &mut Lcg, n: usize, max_msgs: usize) -> Vec<Vec<(usize, Vec<u64>)>> {
    (0..n)
        .map(|_| {
            (0..rng.below(max_msgs + 1))
                .map(|_| {
                    let dst = rng.below(n);
                    let words = (0..1 + rng.below(3)).map(|_| rng.next()).collect();
                    (dst, words)
                })
                .collect()
        })
        .collect()
}

fn random_words_per_node(rng: &mut Lcg, n: usize, max_words: usize) -> Vec<Vec<u64>> {
    (0..n)
        .map(|_| (0..rng.below(max_words + 1)).map(|_| rng.next()).collect())
        .collect()
}

/// Runs the same randomized script over any transport, folding every
/// observable outcome (values and errors) into a digest. Identical to
/// the `ThreadedComm` identity script so the two suites pin the same
/// primitive surface.
fn run_script<C: Communicator>(comm: &mut C, n: usize, seed: u64, steps: usize) -> u64 {
    let mut rng = Lcg(seed);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |s: String| {
        for b in s.bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for step in 0..steps {
        match rng.below(10) {
            0 => fold(format!(
                "{:?}",
                comm.exchange(random_outboxes(&mut rng, n, 2))
            )),
            1 => fold(format!("{:?}", comm.route(random_outboxes(&mut rng, n, 3)))),
            2 => fold(format!(
                "{:?}",
                comm.route_strict(random_outboxes(&mut rng, n, 2))
            )),
            3 => {
                let v: Vec<u64> = (0..n).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_all(&v)));
            }
            4 => fold(format!(
                "{:?}",
                comm.broadcast_all_words(&random_words_per_node(&mut rng, n, 3))
            )),
            5 => {
                let src = rng.below(n);
                let w: Vec<u64> = (0..1 + rng.below(4)).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_from(src, &w)));
            }
            6 => fold(format!(
                "{:?}",
                comm.allgather(&random_words_per_node(&mut rng, n, 3))
            )),
            7 => fold(format!(
                "{:?}",
                comm.sort(&random_words_per_node(&mut rng, n, 3))
            )),
            8 => {
                let dst = rng.below(n);
                fold(format!(
                    "{:?}",
                    comm.gather_to(dst, &random_words_per_node(&mut rng, n, 2))
                ));
            }
            _ => {
                let name = format!("phase{}", step % 3);
                let inner = random_outboxes(&mut rng, n, 2);
                let r = comm.phase(&name, |c| {
                    c.charge_oracle(1 + (step as u64 % 4));
                    c.route(inner)
                });
                fold(format!("{r:?}"));
            }
        }
    }
    // Structural error paths must surface identically on every side.
    fold(format!("{:?}", comm.exchange(vec![Vec::new(); n + 1])));
    fold(format!("{:?}", comm.broadcast_all(&vec![0u64; n - 1])));
    let mut bad = vec![Vec::new(); n];
    bad[n / 2].push((n + 3, vec![1]));
    bad[n - 1].push((n + 9, vec![2]));
    fold(format!("{:?}", comm.route(bad)));
    digest
}

/// A broadcast-expressible script: only primitives a *strict* broadcast
/// clique admits (the sparsifier → solver communication shape).
fn run_broadcast_script<C: Communicator>(comm: &mut C, n: usize, seed: u64, steps: usize) -> u64 {
    let mut rng = Lcg(seed);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |s: String| {
        for b in s.bytes() {
            digest ^= b as u64;
            digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for step in 0..steps {
        match rng.below(5) {
            0 => {
                let v: Vec<u64> = (0..n).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_all(&v)));
            }
            1 => fold(format!(
                "{:?}",
                comm.broadcast_all_words(&random_words_per_node(&mut rng, n, 3))
            )),
            2 => {
                let src = rng.below(n);
                let w: Vec<u64> = (0..1 + rng.below(5)).map(|_| rng.next()).collect();
                fold(format!("{:?}", comm.broadcast_from(src, &w)));
            }
            3 => fold(format!(
                "{:?}",
                comm.allgather(&random_words_per_node(&mut rng, n, 3))
            )),
            _ => {
                let name = format!("phase{}", step % 3);
                let v: Vec<u64> = (0..n).map(|_| rng.next()).collect();
                let r = comm.phase(&name, |c| {
                    c.charge_oracle(1 + (step as u64 % 4));
                    c.broadcast_all(&v)
                });
                fold(format!("{r:?}"));
            }
        }
    }
    digest
}

fn assert_ledgers_identical(a: &dyn Communicator, b: &dyn Communicator, ctx: &str) {
    assert_eq!(a.ledger().phases(), b.ledger().phases(), "{ctx}: phase map");
    assert_eq!(a.ledger().report(), b.ledger().report(), "{ctx}: report");
    assert_eq!(
        a.ledger().total_rounds(),
        b.ledger().total_rounds(),
        "{ctx}: totals"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Measured mode delivers bitwise the same results (and errors) as
    /// the bare unicast `Clique` on the full primitive surface — only
    /// the charged rounds differ, per the documented cost model.
    #[test]
    fn measured_results_match_unicast_clique(
        n in 2usize..17,
        seed in 0u64..1_000_000,
        steps in 4usize..24,
    ) {
        let mut unicast = Clique::new(n);
        let want = run_script(&mut unicast, n, seed, steps);
        let mut measured = BroadcastComm::measured(Clique::new(n));
        let got = run_script(&mut measured, n, seed, steps);
        prop_assert_eq!(want, got);
    }

    /// Measured `BroadcastComm` is *fully* bitwise identical — results
    /// and ledgers — over `Clique` versus `ThreadedComm` at workers
    /// 1, 2, and 8.
    #[test]
    fn measured_over_threaded_matches_over_clique(
        n in 2usize..17,
        seed in 0u64..1_000_000,
        steps in 4usize..24,
    ) {
        let mut seq = BroadcastComm::measured(Clique::new(n));
        let want = run_script(&mut seq, n, seed, steps);
        for workers in [1usize, 2, 8] {
            let mut par = BroadcastComm::measured(ThreadedComm::with_workers(n, workers));
            let got = run_script(&mut par, n, seed, steps);
            prop_assert_eq!(want, got, "workers={}", workers);
            assert_ledgers_identical(&seq, &par, &format!("workers={workers}"));
        }
    }

    /// Strict and measured mode agree bitwise on the broadcast-
    /// expressible surface, over both substrates at every worker count.
    #[test]
    fn strict_matches_measured_on_broadcast_surface(
        n in 2usize..17,
        seed in 0u64..1_000_000,
        steps in 4usize..24,
    ) {
        let mut strict = BroadcastComm::strict(Clique::new(n));
        let want = run_broadcast_script(&mut strict, n, seed, steps);
        let mut measured = BroadcastComm::measured(Clique::new(n));
        let got = run_broadcast_script(&mut measured, n, seed, steps);
        prop_assert_eq!(want, got, "strict vs measured");
        assert_ledgers_identical(&strict, &measured, "strict vs measured");
        for workers in [1usize, 2, 8] {
            let mut par = BroadcastComm::strict(ThreadedComm::with_workers(n, workers));
            let got = run_broadcast_script(&mut par, n, seed, steps);
            prop_assert_eq!(want, got, "strict workers={}", workers);
            assert_ledgers_identical(&strict, &par, &format!("strict workers={workers}"));
        }
    }

    /// Stacked wrappers: `TracingComm` and a benign `FaultComm` over
    /// measured `BroadcastComm` behave exactly as the same stack over
    /// the `ThreadedComm`-backed broadcast clique, down to the trace
    /// JSON (which exercises the broadcast congestion attribution).
    #[test]
    fn wrapped_broadcast_is_substrate_independent(
        n in 2usize..13,
        seed in 0u64..1_000_000,
        steps in 4usize..16,
    ) {
        for workers in [1usize, 2, 8] {
            let mut seq = TracingComm::new(FaultComm::new(
                BroadcastComm::measured(Clique::new(n)),
                FaultPlan::default(),
            ));
            let mut par = TracingComm::new(FaultComm::new(
                BroadcastComm::measured(ThreadedComm::with_workers(n, workers)),
                FaultPlan::default(),
            ));
            let want = run_script(&mut seq, n, seed, steps);
            let got = run_script(&mut par, n, seed, steps);
            prop_assert_eq!(want, got, "workers={}", workers);
            assert_ledgers_identical(&seq, &par, &format!("stacked workers={workers}"));
            assert_eq!(
                seq.trace_json(),
                par.trace_json(),
                "trace JSON identical through the stack"
            );
        }
    }

    /// An adversary schedule over the broadcast clique injects the same
    /// events over `Clique` as over `ThreadedComm`: the adversary layer
    /// is substrate-independent above `BroadcastComm` too.
    #[test]
    fn adversary_over_broadcast_is_substrate_independent(
        n in 3usize..9,
        seed in 0u64..10_000,
    ) {
        let schedule = AdversarySchedule::new(seed).with(1, AdversaryStrategy::Silent);
        let mut seq = AdversaryComm::new(
            BroadcastComm::measured(Clique::new(n)),
            schedule.clone(),
        );
        let mut par = AdversaryComm::new(
            BroadcastComm::measured(ThreadedComm::with_workers(n, 2)),
            schedule,
        );
        let want = run_broadcast_script(&mut seq, n, seed, 12);
        let got = run_broadcast_script(&mut par, n, seed, 12);
        prop_assert_eq!(want, got);
        prop_assert_eq!(seq.omissions(), par.omissions());
        assert_eq!(seq.events_json(), par.events_json());
        assert_ledgers_identical(&seq, &par, "adversary");
    }
}

/// Every unicast-shaped primitive is a typed strict-mode rejection, and
/// the rejection leaves the ledger untouched.
#[test]
fn strict_mode_rejects_each_unicast_primitive() {
    let n = 5;
    let outboxes = || {
        vec![
            vec![(1usize, vec![1u64, 2])],
            vec![],
            vec![],
            vec![],
            vec![],
        ]
    };
    let per_node = || vec![vec![3u64], vec![], vec![], vec![], vec![]];
    let cases: Vec<(&str, ModelError)> = {
        let mut comm = BroadcastComm::strict(Clique::new(n));
        vec![
            ("exchange", comm.exchange(outboxes()).unwrap_err()),
            ("route", comm.route(outboxes()).unwrap_err()),
            ("route_strict", comm.route_strict(outboxes()).unwrap_err()),
            ("sort", comm.sort(&per_node()).unwrap_err()),
            ("gather_to", comm.gather_to(2, &per_node()).unwrap_err()),
        ]
    };
    for (name, err) in cases {
        assert_eq!(
            err,
            ModelError::UnicastInBroadcastModel { primitive: name },
            "{name}"
        );
        let msg = err.to_string();
        assert!(msg.contains(name), "display names the primitive: {msg}");
    }
    // Strict rejection also works through the ThreadedComm substrate and
    // under a TracingComm wrapper (the error is recorded, not masked).
    let mut traced = TracingComm::new(BroadcastComm::strict(ThreadedComm::with_workers(n, 2)));
    assert_eq!(
        traced.sort(&per_node()).unwrap_err(),
        ModelError::UnicastInBroadcastModel { primitive: "sort" }
    );
    assert_eq!(traced.ledger().total_rounds(), 0);
}

/// The measured-mode cost model, pinned on concrete payloads (the
/// DESIGN.md §14 table).
#[test]
fn measured_cost_table_is_documented_values() {
    let n = 5;
    let mut comm = BroadcastComm::measured(Clique::new(n));

    // exchange / route: max per-node send load (node 0 sends 4 words).
    let outboxes = vec![
        vec![(1usize, vec![1u64, 2]), (3, vec![3, 4])],
        vec![(2, vec![5])],
        vec![],
        vec![],
        vec![],
    ];
    comm.exchange(outboxes.clone()).unwrap();
    assert_eq!(comm.ledger().total_rounds(), 4);
    comm.route(outboxes).unwrap();
    assert_eq!(comm.ledger().total_rounds(), 8);

    // broadcast_from: w rounds, no scatter doubling.
    comm.broadcast_from(2, &(0..6).collect()).unwrap();
    assert_eq!(comm.ledger().total_rounds(), 14);

    // allgather: unbalanced max contribution.
    comm.allgather(&[vec![1, 2, 3], vec![], vec![4], vec![], vec![]])
        .unwrap();
    assert_eq!(comm.ledger().total_rounds(), 17);

    // sort / gather_to: max per-node vector length.
    comm.sort(&[vec![9, 1], vec![5], vec![], vec![], vec![2]])
        .unwrap();
    assert_eq!(comm.ledger().total_rounds(), 19);
    comm.gather_to(0, &[vec![], vec![1, 2, 3, 4], vec![], vec![5], vec![]])
        .unwrap();
    assert_eq!(comm.ledger().total_rounds(), 23);
}
