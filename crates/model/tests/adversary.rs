//! Cross-substrate and stacking pins for [`AdversaryComm`]: the adversary
//! perturbation stream is a pure function of the schedule and the call
//! sequence, so runs over `Clique` and `ThreadedComm` (at 1/2/8 workers)
//! are bitwise identical, and the wrapper composes with `TracingComm` and
//! `FaultComm` without changing round accounting.

use cc_model::{
    AdversaryComm, AdversarySchedule, AdversaryStrategy, Clique, Communicator, FaultComm,
    FaultPlan, ModelError, ThreadedComm, TracingComm,
};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn slate() -> Vec<(&'static str, AdversarySchedule)> {
    vec![
        ("honest", AdversarySchedule::new(3)),
        (
            "silent",
            AdversarySchedule::new(3).with(1, AdversaryStrategy::Silent),
        ),
        (
            "crash_recover",
            AdversarySchedule::new(3).with(
                2,
                AdversaryStrategy::CrashRecover {
                    from_round: 2,
                    until_round: 5,
                },
            ),
        ),
        (
            "corrupt",
            AdversarySchedule::new(3).with(0, AdversaryStrategy::Corrupt),
        ),
    ]
}

/// A small deterministic workload exercising every screened primitive,
/// tolerating typed failures (it records them instead of stopping).
fn drive<C: Communicator>(comm: &mut AdversaryComm<C>) -> (Vec<Result<Vec<u64>, ModelError>>, u64) {
    let n = comm.n();
    let mut outcomes = Vec::new();
    for k in 0..6u64 {
        let vals: Vec<u64> = (0..n as u64).map(|i| i * 10 + k).collect();
        outcomes.push(comm.phase("bcast", |c| c.broadcast_all(&vals)));
        let rows: Vec<Vec<u64>> = (0..n as u64).map(|i| vec![i + k, i * 3]).collect();
        outcomes.push(
            comm.phase("words", |c| c.broadcast_all_words(&rows))
                .map(|r| r.concat()),
        );
        let mut out = vec![Vec::new(); n];
        out[(k as usize) % n].push(((k as usize + 1) % n, vec![k, k + 7]));
        outcomes.push(comm.phase("route", |c| c.route(out)).map(|inboxes| {
            inboxes
                .concat()
                .into_iter()
                .flat_map(|e| e.payload)
                .collect()
        }));
        outcomes.push(
            comm.phase("gather", |c| c.gather_to(0, &rows))
                .map(|r| r.concat()),
        );
        outcomes.push(comm.phase("sort", |c| c.sort(&rows)).map(|r| r.concat()));
        outcomes.push(
            comm.phase("allgather", |c| c.allgather(&rows))
                .map(|(words, _)| words),
        );
        outcomes.push(comm.phase("from", |c| c.broadcast_from(k as usize % n, &vec![k])));
    }
    (outcomes, comm.ledger().total_rounds())
}

#[test]
fn adversary_runs_bitwise_identical_over_clique_and_threaded() {
    for (label, schedule) in slate() {
        let mut baseline = AdversaryComm::new(Clique::new(4), schedule.clone());
        let base = drive(&mut baseline);
        let base_json = baseline.events_json();
        for workers in WORKER_COUNTS {
            let mut threaded =
                AdversaryComm::new(ThreadedComm::with_workers(4, workers), schedule.clone());
            let got = drive(&mut threaded);
            assert_eq!(base, got, "{label}: diverged at {workers} workers");
            assert_eq!(
                base_json,
                threaded.events_json(),
                "{label}: events diverged at {workers} workers"
            );
            assert_eq!(
                baseline.ledger().phases(),
                threaded.ledger().phases(),
                "{label}: phase attribution diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn adversary_stacks_with_tracing_without_changing_rounds() {
    for (label, schedule) in slate() {
        let mut plain = AdversaryComm::new(Clique::new(4), schedule.clone());
        let base = drive(&mut plain);
        let mut traced = AdversaryComm::new(TracingComm::new(Clique::new(4)), schedule);
        let got = drive(&mut traced);
        assert_eq!(base, got, "{label}: tracing changed behavior");
        assert_eq!(
            plain.events_json(),
            traced.events_json(),
            "{label}: tracing changed the adversary ledger"
        );
        // The trace is populated and deterministic JSON.
        assert!(traced.inner().trace_json().contains("cc-model/trace-v1"));
    }
}

#[test]
fn adversary_stacks_with_fault_comm_and_faults_accumulate() {
    // FaultComm outside, AdversaryComm inside: injected faults and
    // adversary events both flow into faults_observed().
    let schedule = AdversarySchedule::new(9).with(3, AdversaryStrategy::Silent);
    // fail_phases only: the plan injects in "doomed" and is honest
    // elsewhere (failure_rate would OR in seeded faults everywhere).
    let plan = FaultPlan {
        seed: 5,
        fail_phases: vec!["doomed".into()],
        ..FaultPlan::default()
    };
    let mut comm = FaultComm::new(AdversaryComm::new(Clique::new(4), schedule), plan);
    // Injected fault from the plan's phase filter.
    let err = comm
        .phase("doomed", |c| c.broadcast_all(&[0, 0, 0, 0]))
        .unwrap_err();
    assert!(matches!(
        err,
        ModelError::CongestionExceeded { capacity: 0, .. }
    ));
    // Adversary omission from the inner wrapper.
    let err = comm
        .phase("healthy", |c| c.broadcast_all(&[0, 0, 0, 0]))
        .unwrap_err();
    assert!(matches!(err, ModelError::NodeSilenced { node: 3, .. }));
    assert_eq!(comm.injected_faults(), 1);
    assert_eq!(comm.faults_observed(), 2, "plan fault + adversary omission");
}

#[test]
fn crash_recover_windows_open_and_close_identically_across_substrates() {
    // A crash window keyed on ledger rounds must open and close at the
    // same *calls* on every substrate, because round accounting is
    // bitwise identical. Drive enough traffic that the window closes.
    let schedule = || {
        AdversarySchedule::new(1).with(
            1,
            AdversaryStrategy::CrashRecover {
                from_round: 1,
                until_round: 3,
            },
        )
    };
    // A detected omission charges nothing (no data moved), so a retrying
    // caller advances time explicitly — exactly what the service layer's
    // `RetryPolicy` backoff does — and the node comes back.
    fn pattern<C: Communicator>(mut comm: AdversaryComm<C>) -> Vec<bool> {
        (0..8)
            .map(|_| {
                let ok = comm.broadcast_all(&[5, 5, 5, 5]).is_ok();
                if !ok {
                    comm.phase("retry_backoff", |c| c.charge_implemented(1));
                }
                ok
            })
            .collect()
    }
    let base = pattern(AdversaryComm::new(Clique::new(4), schedule()));
    assert!(base.iter().any(|ok| *ok) && base.iter().any(|ok| !ok));
    assert!(base.last().copied().unwrap(), "node 1 recovered");
    for workers in WORKER_COUNTS {
        let got = pattern(AdversaryComm::new(
            ThreadedComm::with_workers(4, workers),
            schedule(),
        ));
        assert_eq!(base, got, "crash window diverged at {workers} workers");
    }
}
