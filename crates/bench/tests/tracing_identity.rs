//! Round-accounting transparency of the wrapping transports, verified
//! over **every** experiment in `cc-bench`: driving an experiment through
//! `TracingComm<Clique>` must charge bitwise-identical round totals to
//! the bare `Clique` — every round column of every table is produced by
//! the ledger, so identical rendered tables mean identical charges.

use cc_bench::*;
use cc_model::{Clique, Communicator, FaultComm, FaultPlan, TracingComm};

fn assert_identical<C: Communicator, F: Fn(usize) -> C>(
    key: &str,
    bare: fn() -> Table,
    with: impl Fn(&F) -> Table,
    make: F,
) {
    let reference = bare().render();
    let wrapped = with(&make).render();
    assert_eq!(
        reference, wrapped,
        "{key}: wrapped run diverged from bare simulator"
    );
}

macro_rules! identity_test {
    ($test:ident, $bare:ident, $with:ident) => {
        #[test]
        fn $test() {
            assert_identical(
                stringify!($bare),
                $bare,
                |make| $with(make),
                |n| TracingComm::new(Clique::new(n)),
            );
        }
    };
}

identity_test!(
    e1_traced_charges_identical_rounds,
    e1_laplacian,
    e1_laplacian_with
);
identity_test!(
    e1b_traced_charges_identical_rounds,
    e1b_solver_ablation,
    e1b_solver_ablation_with
);
identity_test!(
    e2_traced_charges_identical_rounds,
    e2_sparsifier,
    e2_sparsifier_with
);
identity_test!(
    e2b_traced_charges_identical_rounds,
    e2b_sparsifier_ablation,
    e2b_sparsifier_ablation_with
);
identity_test!(e4_traced_charges_identical_rounds, e4_euler, e4_euler_with);
identity_test!(
    e4b_traced_charges_identical_rounds,
    e4b_orientation_ablation,
    e4b_orientation_ablation_with
);
identity_test!(
    e5_traced_charges_identical_rounds,
    e5_rounding,
    e5_rounding_with
);
identity_test!(
    e6_traced_charges_identical_rounds,
    e6_maxflow,
    e6_maxflow_with
);
identity_test!(e7_traced_charges_identical_rounds, e7_mcf, e7_mcf_with);
identity_test!(
    e8_traced_charges_identical_rounds,
    e8_comparison,
    e8_comparison_with
);

/// A no-fault `FaultComm` is transparent too — same contract, applied to
/// the other wrapping transport (spot-checked on the cheapest experiment
/// with point-to-point, broadcast, and sort traffic).
#[test]
fn e4_faultcomm_default_plan_is_transparent() {
    assert_identical("e4_euler", e4_euler, e4_euler_with, |n| {
        FaultComm::new(Clique::new(n), FaultPlan::default())
    });
}

/// Stacked wrappers (trace over fault over simulator) still charge the
/// same rounds: the seam composes.
#[test]
fn e5_stacked_wrappers_are_transparent() {
    assert_identical("e5_rounding", e5_rounding, e5_rounding_with, |n| {
        TracingComm::new(FaultComm::new(Clique::new(n), FaultPlan::default()))
    });
}
