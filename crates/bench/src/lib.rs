//! # cc-bench — the experiment harness of the reproduction
//!
//! One function per experiment of `DESIGN.md` §4 (E1–E8). Each returns the
//! rows it prints, so the `exp_tables` binary, the Criterion benches, and
//! the integration tests all share one implementation. The recorded
//! paper-vs-measured outcomes live in `EXPERIMENTS.md`.
//!
//! The measured quantity is **rounds** (the model's only cost); Criterion
//! additionally tracks wall-clock time of the kernels so regressions in
//! the simulator itself are visible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod table;

pub use experiments::*;
pub use table::Table;
