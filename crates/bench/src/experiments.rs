//! The experiment suite (DESIGN.md §4). Every function regenerates one
//! table of `EXPERIMENTS.md`.

use cc_apsp::RoundModel;
use cc_core::{LaplacianSolver, SolverOptions};
use cc_euler::{
    eulerian_orientation, is_eulerian_orientation, orient_trails_with_strategy, round_flow,
    FlowRoundingOptions, MarkingStrategy, OrientationCriterion,
};
use cc_graph::{generators, DiGraph, Graph};
use cc_linalg::{chebyshev_iteration_bound, GroundedCholesky};
use cc_maxflow::{dinic, max_flow_ford_fulkerson, max_flow_ipm, max_flow_trivial, IpmOptions};
use cc_mcf::{min_cost_flow_ipm, ssp_min_cost_flow, McfOptions};
use cc_model::{Clique, Communicator};
use cc_sparsify::{
    build_randomized_sparsifier, build_sparsifier, verify_sparsifier, SparsifyParams,
};

use crate::Table;

/// A named graph-family constructor used by the E1 sweep.
type FamilyBuilder = Box<dyn Fn(usize) -> Graph>;

fn st_rhs(n: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    b
}

/// E1 (Theorem 1.1): Laplacian solver rounds vs `n` and vs `log(1/ε)`.
///
/// Paper prediction: rounds `= n^{o(1)} · log(U/ε)` — sub-polynomial in
/// `n` (column `rounds/log n` flattens), linear in the accuracy digits
/// (column `rounds/log(1/ε)` constant per graph).
pub fn e1_laplacian_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E1 — Theorem 1.1: Laplacian solve rounds (per-solve, after sparsifier build)",
        &[
            "family",
            "n",
            "m",
            "U",
            "eps",
            "kappa",
            "iters",
            "rounds",
            "rounds/ln(1/eps)",
            "rel.err",
            "err<=eps",
        ],
    );
    let families: Vec<(&str, FamilyBuilder)> = vec![
        ("expander", Box::new(generators::expander)),
        (
            "random(U=16)",
            Box::new(|n| generators::random_connected(n, 4 * n, 16, 7)),
        ),
        (
            "grid",
            Box::new(|n| {
                let side = (n as f64).sqrt() as usize;
                generators::grid(side, side)
            }),
        ),
    ];
    for (name, build) in &families {
        for &n in &[32usize, 64, 128] {
            let g = build(n);
            let n = g.n();
            let mut clique = make(n);
            let solver =
                LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
            for &eps in &[1e-2, 1e-5, 1e-8] {
                let before = clique.ledger().total_rounds();
                let out = solver
                    .solve(&mut clique, &st_rhs(n), eps)
                    .expect("honest clique");
                let rounds = clique.ledger().total_rounds() - before;
                let err = out
                    .relative_error()
                    .expect("reference solution kept by default options");
                t.push(vec![
                    name.to_string(),
                    n.to_string(),
                    g.m().to_string(),
                    format!("{:.0}", g.max_weight()),
                    format!("{eps:.0e}"),
                    format!("{:.2}", out.kappa),
                    out.iterations.to_string(),
                    rounds.to_string(),
                    format!("{:.2}", rounds as f64 / (1.0 / eps).ln()),
                    format!("{err:.2e}"),
                    (err <= eps * 1.05).to_string(),
                ]);
            }
        }
    }
    t
}

/// E2 (Theorem 3.3): sparsifier size, certified α (honesty-checked against
/// the exact generalized eigenvalue bounds on small instances), rounds.
///
/// Paper prediction: `|E(H)| = O(n log n log U)`, `α = log^{O(r²)} n`,
/// rounds `O(log n log U · n^{O(1/r²)})`.
pub fn e2_sparsifier_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E2 — Theorem 3.3: deterministic spectral sparsifier",
        &[
            "family",
            "n",
            "m",
            "U",
            "|E(H)|",
            "|E(H)|/(n ln n)",
            "levels",
            "alpha",
            "exact alpha",
            "honest",
            "rounds(impl)",
            "rounds(charged)",
        ],
    );
    let cases: Vec<(&str, Graph)> = vec![
        ("expander", generators::expander(64)),
        ("complete", generators::complete(48)),
        ("barbell", generators::barbell(24)),
        ("grid", generators::grid(8, 8)),
        ("random U=4", generators::random_connected(64, 256, 4, 3)),
        (
            "random U=256",
            generators::random_connected(64, 256, 256, 3),
        ),
        (
            "random n=128",
            generators::random_connected(128, 640, 16, 5),
        ),
    ];
    for (name, g) in cases {
        let mut clique = make(g.n());
        let h =
            build_sparsifier(&mut clique, &g, &SparsifyParams::default()).expect("honest clique");
        // Exact pencil verification is O(n³) dense — run it everywhere here
        // (n ≤ 128) as the honesty check of the certified α.
        let bounds = verify_sparsifier(&g, &h).expect("pencil converges");
        let exact_alpha = bounds.alpha();
        t.push(vec![
            name.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            format!("{:.0}", g.max_weight()),
            h.edge_count().to_string(),
            format!(
                "{:.2}",
                h.edge_count() as f64 / (g.n() as f64 * (g.n() as f64).ln())
            ),
            h.levels().to_string(),
            format!("{:.3}", h.alpha()),
            format!("{exact_alpha:.3}"),
            (exact_alpha <= h.alpha() * (1.0 + 1e-6)).to_string(),
            clique.ledger().implemented_rounds().to_string(),
            clique.ledger().charged_rounds().to_string(),
        ]);
    }
    t
}

/// E3 (Corollary 2.3): Chebyshev iterations vs `√κ · log(1/ε)`.
///
/// Paper prediction: the ratio `iters / (√κ ln(1/ε))` is bounded by a
/// constant (1 + o(1) as κ grows).
pub fn e3_chebyshev() -> Table {
    let mut t = Table::new(
        "E3 — Corollary 2.3: preconditioned Chebyshev iteration count",
        &[
            "kappa",
            "eps",
            "iterations",
            "sqrt(k)*ln(1/eps)",
            "ratio",
            "verified err<=eps",
        ],
    );
    // Verify the bound really delivers on a concrete system: path graph
    // preconditioned by (1/κ-scaled) exact inverse = spectrum [1/κ, 1].
    let edges: Vec<(usize, usize, f64)> = (0..23).map(|i| (i, i + 1, 1.0)).collect();
    let lap = cc_linalg::laplacian_from_edges(24, &edges);
    let chol = GroundedCholesky::new(&lap).unwrap();
    let mut b = st_rhs(24);
    cc_linalg::vec_ops::remove_mean(&mut b);
    let x_star = chol.solve(&b);
    // One set of buffers serves every (κ, ε) row: the `_into` kernels are
    // bitwise-identical to the allocating wrappers and keep the sweep's
    // steady state allocation-free.
    let mut x = vec![0.0f64; 24];
    let mut ws = cc_linalg::ChebyshevWorkspace::new(24);
    let mut scratch = cc_linalg::SolveScratch::default();
    for &kappa in &[2.0f64, 8.0, 32.0, 128.0, 512.0] {
        for &eps in &[1e-3, 1e-6, 1e-9] {
            let iters = chebyshev_iteration_bound(kappa, eps);
            // Worst-case-ish concrete run: B = κ·L (so B-solve = L†/κ).
            cc_linalg::chebyshev_solve_fixed_into(
                |v, out| lap.matvec_into(v, out),
                |r, out| {
                    chol.solve_into(r, out, &mut scratch);
                    for zi in out.iter_mut() {
                        *zi /= kappa;
                    }
                },
                &b,
                kappa,
                iters,
                &mut x,
                &mut ws,
            );
            let err = cc_linalg::relative_a_error(
                |v| cc_linalg::laplacian_quadratic_form(&edges, v),
                &x,
                &x_star,
            );
            let scale = kappa.sqrt() * (1.0 / eps).ln();
            t.push(vec![
                format!("{kappa:.0}"),
                format!("{eps:.0e}"),
                iters.to_string(),
                format!("{scale:.1}"),
                format!("{:.3}", iters as f64 / scale),
                (err <= eps * 1.05).to_string(),
            ]);
        }
    }
    t
}

/// E4 (Theorem 1.4): Eulerian orientation rounds vs `log n · log* n`.
///
/// Paper prediction: the normalized column `rounds / log₂(2m)` stays
/// bounded by a constant (`log* n ≤ 5` throughout the sweep).
pub fn e4_euler_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E4 — Theorem 1.4: Eulerian orientation rounds",
        &[
            "n",
            "m",
            "darts",
            "rounds",
            "log2(2m)",
            "rounds/log2(2m)",
            "valid",
        ],
    );
    for &n in &[16usize, 64, 256, 1024, 4096] {
        let g = generators::random_eulerian(n, 3, 5);
        let mut clique = make(n);
        let oriented = eulerian_orientation(&mut clique, &g).expect("honest clique");
        let rounds = clique.ledger().total_rounds();
        let scale = ((2 * g.m()) as f64).log2();
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            (2 * g.m()).to_string(),
            rounds.to_string(),
            format!("{scale:.1}"),
            format!("{:.1}", rounds as f64 / scale),
            is_eulerian_orientation(&g, &oriented).to_string(),
        ]);
    }
    t
}

/// E5 (Lemma 4.2): flow rounding rounds vs `log(1/Δ)`.
///
/// Paper prediction: rounds grow linearly in `log(1/Δ)` (column
/// `rounds/log(1/Δ)` roughly constant), value never decreases.
pub fn e5_rounding_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E5 — Lemma 4.2: flow rounding rounds vs Δ",
        &[
            "1/delta",
            "iterations",
            "rounds",
            "rounds/log2(1/delta)",
            "value ok",
            "integral",
        ],
    );
    let g = generators::random_flow_network(48, 120, 4, 9);
    let (opt, _) = dinic(&g, 0, 47);
    for &k in &[4u32, 8, 12, 16, 20] {
        let delta = 1.0 / (1u64 << k) as f64;
        // A fractional flow with genuine low-order Δ-bits: scale the whole
        // optimum by an ODD multiple of Δ near 3/4 (conservation preserved,
        // and every scaling iteration has odd-flow edges to orient).
        let odd = ((0.75 / delta).round() as u64) | 1;
        let scale = odd as f64 * delta;
        let frac: Vec<f64> = opt.iter().map(|&f| f as f64 * scale).collect();
        let frac_value: f64 = g
            .edges()
            .iter()
            .zip(&frac)
            .map(|(e, &f)| {
                if e.from == 0 {
                    f
                } else if e.to == 0 {
                    -f
                } else {
                    0.0
                }
            })
            .sum();
        let mut clique = make(48);
        let out = round_flow(
            &mut clique,
            &g,
            &frac,
            0,
            47,
            delta,
            &FlowRoundingOptions::default(),
        )
        .expect("honest clique");
        let rounds = clique.ledger().total_rounds();
        let value = g.flow_value(&out.flow, 0);
        t.push(vec![
            format!("2^{k}"),
            out.iterations.to_string(),
            rounds.to_string(),
            format!("{:.1}", rounds as f64 / k as f64),
            (value as f64 >= frac_value - 1e-9).to_string(),
            g.is_feasible_flow(&out.flow, &g.st_demand(0, 47, value))
                .to_string(),
        ]);
    }
    t
}

/// E6 (Theorem 1.2): max flow — IPM pipeline vs Ford–Fulkerson vs trivial.
///
/// Paper prediction: IPM rounds scale like `m^{3/7+o(1)} U^{1/7}`; FF like
/// `|f*|·n^{0.158}`; trivial like `n` (in words of size `log U`). At
/// simulable sizes the trivial baseline wins on raw rounds — the shape
/// columns show the asymptotic ordering.
pub fn e6_maxflow_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E6 — Theorem 1.2: exact max flow, IPM pipeline vs deterministic baselines",
        &[
            "n",
            "m",
            "U",
            "|f*|",
            "ipm rounds",
            "ipm/m^(3/7)U^(1/7)",
            "ipm steps",
            "solves",
            "cheby",
            "reuse",
            "stage rounds a/f/c",
            "rounded/|f*|",
            "repair",
            "ff rounds",
            "trivial rounds",
            "exact",
        ],
    );
    let cases: Vec<(usize, usize, i64, u64)> = vec![
        (12, 24, 1, 1),
        (12, 24, 8, 1),
        (16, 48, 8, 2),
        (24, 72, 8, 3),
        (24, 72, 64, 3),
        (32, 128, 8, 4),
    ];
    for (n, extra, u, seed) in cases {
        let g = generators::random_flow_network(n, extra, u, seed);
        let (_, want) = dinic(&g, 0, n - 1);
        let mut c1 = make(n);
        let ipm =
            max_flow_ipm(&mut c1, &g, 0, n - 1, &IpmOptions::default()).expect("honest clique");
        let ipm_rounds = c1.ledger().total_rounds();
        let mut c2 = make(n);
        let ff = max_flow_ford_fulkerson(&mut c2, &g, 0, n - 1, RoundModel::FastMatMul)
            .expect("honest clique");
        let mut c3 = make(n);
        let tr = max_flow_trivial(&mut c3, &g, 0, n - 1).expect("honest clique");
        let shape = (g.m() as f64).powf(3.0 / 7.0) * (u as f64).powf(1.0 / 7.0);
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            u.to_string(),
            want.to_string(),
            ipm_rounds.to_string(),
            format!("{:.0}", ipm_rounds as f64 / shape),
            ipm.stats.progress_steps.to_string(),
            ipm.stats.engine.total_solves().to_string(),
            ipm.stats.engine.total_chebyshev_iterations().to_string(),
            ipm.stats.engine.total_template_reuses().to_string(),
            format!(
                "{}/{}/{}",
                ipm.stats.engine.stage("augmentation").rounds,
                ipm.stats.engine.stage("fixing").rounds,
                ipm.stats.engine.stage("cleanup").rounds,
            ),
            if want > 0 {
                format!("{:.2}", ipm.stats.rounded_value as f64 / want as f64)
            } else {
                "-".into()
            },
            ipm.stats.repair_paths.to_string(),
            c2.ledger().total_rounds().to_string(),
            c3.ledger().total_rounds().to_string(),
            (ipm.value == want && ff.value == want && tr.value == want).to_string(),
        ]);
    }
    t
}

/// E7 (Theorem 1.3): unit-capacity min cost flow.
///
/// Paper prediction: rounds `Õ(m^{3/7}(n^{0.158} + n^{o(1)} polylog W))`;
/// the repair loop needs `Õ(m^{3/7})` augmentations. The table reports the
/// measured shape plus exactness against the SSP reference.
pub fn e7_mcf_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E7 — Theorem 1.3: unit-capacity min cost flow (assignment workloads)",
        &[
            "k",
            "n",
            "m",
            "W",
            "rounds",
            "rounds/m^(3/7)",
            "steps",
            "solves",
            "cheby",
            "reuse",
            "stage rounds p/c",
            "satisfied",
            "repair",
            "cancelled",
            "exact",
        ],
    );
    for &(k, w, seed) in &[
        (4usize, 8i64, 1u64),
        (6, 8, 2),
        (8, 8, 3),
        (8, 64, 3),
        (12, 8, 4),
    ] {
        let (g, sigma) = generators::bipartite_assignment(k, 3, w, seed);
        let (_, want) = ssp_min_cost_flow(&g, &sigma).unwrap();
        let mut clique = make(g.n() + 2);
        let out = min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap();
        let rounds = clique.ledger().total_rounds();
        let shape = (g.m() as f64).powf(3.0 / 7.0);
        t.push(vec![
            k.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            w.to_string(),
            rounds.to_string(),
            format!("{:.0}", rounds as f64 / shape),
            out.stats.progress_steps.to_string(),
            out.stats.engine.total_solves().to_string(),
            out.stats.engine.total_chebyshev_iterations().to_string(),
            out.stats.engine.total_template_reuses().to_string(),
            format!(
                "{}/{}",
                out.stats.engine.stage("progress").rounds,
                out.stats.engine.stage("correction").rounds,
            ),
            format!("{:.2}", out.stats.ipm_progress),
            out.stats.repair_paths.to_string(),
            out.stats.cancelled_cycles.to_string(),
            (out.cost == want).to_string(),
        ]);
    }
    t
}

/// E8 (§1.1): the "who wins where" comparison the paper's related-work
/// section walks through — FF's `O(|f*| n^{0.158})` vs the trivial
/// algorithm's `O(n log U)` (the paper: FF only wins while
/// `|f*| = o(n^{0.842} log U)`).
///
/// Workload: fixed `n`, a **dense** background (so gathering everything
/// really costs Θ(m/n) = Θ(n) rounds) plus `k` disjoint unit `s`-`t`
/// routes capping `|f*| = k`. Sweeping `k` exposes the crossover: FF's
/// rounds grow linearly in `|f*|` while the trivial algorithm's stay flat.
pub fn e8_comparison_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E8 — §1.1 comparison: fixed n = 66 dense network, |f*| = k sweep",
        &[
            "n",
            "m",
            "|f*|",
            "ff rounds",
            "ff formula k*n^0.158",
            "trivial rounds",
            "trivial formula 3m/n",
            "ff wins",
        ],
    );
    let middles = 64usize;
    let n = middles + 2;
    for &k in &[1usize, 4, 16, 64] {
        let mut g = DiGraph::new(n);
        // |f*| = k: s has exactly k unit out-edges.
        for i in 0..k {
            g.add_edge(0, 2 + i, 1, 0);
        }
        for i in 0..middles {
            g.add_edge(2 + i, 1, 1, 0);
        }
        // Dense background among the middles (does not raise |f*|).
        for i in 0..middles {
            for j in 0..middles {
                if i != j {
                    g.add_edge(2 + i, 2 + j, 1, 0);
                }
            }
        }
        let mut c_ff = make(n);
        let ff = max_flow_ford_fulkerson(&mut c_ff, &g, 0, 1, RoundModel::FastMatMul)
            .expect("honest clique");
        assert_eq!(ff.value, k as i64);
        let mut c_tr = make(n);
        let tr = max_flow_trivial(&mut c_tr, &g, 0, 1).expect("honest clique");
        assert_eq!(tr.value, k as i64);
        let ff_rounds = c_ff.ledger().total_rounds();
        let tr_rounds = c_tr.ledger().total_rounds();
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            k.to_string(),
            ff_rounds.to_string(),
            format!("{:.0}", k as f64 * (n as f64).powf(0.158)),
            tr_rounds.to_string(),
            format!("{:.0}", 3.0 * g.m() as f64 / n as f64),
            (ff_rounds < tr_rounds).to_string(),
        ]);
    }
    t
}

/// E1b ablation: the Theorem 1.1 solver with the deterministic
/// (Theorem 3.3) sparsifier against the randomized effective-resistance
/// sampler of the paper's \[FV22\] remark — same Chebyshev engine, the
/// preconditioner quality (certified α) drives the per-solve round count.
pub fn e1b_solver_ablation_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E1b — ablation: solver rounds with deterministic vs randomized preconditioner",
        &[
            "preconditioner",
            "n",
            "alpha",
            "kappa",
            "iters @1e-8",
            "build rounds (impl+charged)",
            "err<=eps",
        ],
    );
    let g = generators::random_connected(64, 384, 8, 21);
    let b = {
        let mut b = vec![0.0; 64];
        b[0] = 1.0;
        b[63] = -1.0;
        b
    };
    // Deterministic.
    {
        let mut clique = make(64);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let build_rounds = clique.ledger().total_rounds();
        let out = solver.solve(&mut clique, &b, 1e-8).expect("honest clique");
        t.push(vec![
            "deterministic (Thm 3.3)".into(),
            "64".into(),
            format!("{:.3}", solver.sparsifier().alpha()),
            format!("{:.3}", solver.kappa()),
            out.iterations.to_string(),
            build_rounds.to_string(),
            out.relative_error()
                .is_some_and(|e| e <= 1e-8 * 1.05)
                .to_string(),
        ]);
    }
    // Randomized at two sampling budgets.
    for &(label, q) in &[
        ("randomized q=8n ln n", None),
        ("randomized q=300", Some(300usize)),
    ] {
        let mut clique = make(64);
        let h = cc_sparsify::build_randomized_sparsifier(&mut clique, &g, 77, q)
            .expect("honest clique");
        let build_rounds = clique.ledger().total_rounds();
        let solver =
            cc_core::LaplacianSolver::with_sparsifier(&g, h, &SolverOptions::default()).unwrap();
        let out = solver.solve(&mut clique, &b, 1e-8).expect("honest clique");
        t.push(vec![
            label.into(),
            "64".into(),
            format!("{:.3}", solver.sparsifier().alpha()),
            format!("{:.3}", solver.kappa()),
            out.iterations.to_string(),
            build_rounds.to_string(),
            out.relative_error()
                .is_some_and(|e| e <= 1e-8 * 1.05)
                .to_string(),
        ]);
    }
    t
}

/// E2b ablation: the deterministic sparsifier (Theorem 3.3) against the
/// randomized effective-resistance sampler the paper's \[FV22\] remark
/// points to, and against the `φ` knob of the expander decomposition.
///
/// Expected: the deterministic construction gets *smaller* sparsifiers
/// with comparable certified α; the randomized one charges only
/// `polylog n` oracle rounds (the paper's "replace the solver to convert
/// `n^{o(1)}` into `poly log n`" trade-off). Larger `φ` cuts more,
/// giving more levels and better-conditioned clusters.
pub fn e2b_sparsifier_ablation_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E2b — ablation: deterministic vs randomized sparsifiers; φ sweep",
        &[
            "variant",
            "n",
            "m",
            "|E(H)|",
            "alpha (certified)",
            "levels",
            "impl rounds",
            "charged rounds",
        ],
    );
    let g = generators::random_connected(64, 512, 8, 13);
    // Deterministic with the φ ladder — on the grid, whose conductance
    // actually responds to φ (larger φ cuts the grid into certified
    // expander patches: more levels, smaller per-cluster α).
    let grid = generators::grid(8, 8);
    for &(label, phi) in &[
        ("det grid φ=default", None),
        ("det grid φ=0.20", Some(0.20)),
        ("det grid φ=0.45", Some(0.45)),
    ] {
        let mut clique = make(64);
        let params = SparsifyParams {
            phi,
            ..Default::default()
        };
        let h = build_sparsifier(&mut clique, &grid, &params).expect("honest clique");
        t.push(vec![
            label.to_string(),
            grid.n().to_string(),
            grid.m().to_string(),
            h.edge_count().to_string(),
            format!("{:.3}", h.alpha()),
            h.levels().to_string(),
            clique.ledger().implemented_rounds().to_string(),
            clique.ledger().charged_rounds().to_string(),
        ]);
    }
    {
        let mut clique = make(64);
        let h =
            build_sparsifier(&mut clique, &g, &SparsifyParams::default()).expect("honest clique");
        t.push(vec![
            "det random".to_string(),
            g.n().to_string(),
            g.m().to_string(),
            h.edge_count().to_string(),
            format!("{:.3}", h.alpha()),
            h.levels().to_string(),
            clique.ledger().implemented_rounds().to_string(),
            clique.ledger().charged_rounds().to_string(),
        ]);
    }
    // Randomized at two sample sizes.
    for &(label, q) in &[("rand q=4n ln n", None), ("rand q=256", Some(256usize))] {
        let mut clique = make(64);
        let h = build_randomized_sparsifier(&mut clique, &g, 99, q).expect("honest clique");
        t.push(vec![
            label.to_string(),
            g.n().to_string(),
            g.m().to_string(),
            h.edge_count().to_string(),
            format!("{:.3}", h.alpha()),
            h.levels().to_string(),
            clique.ledger().implemented_rounds().to_string(),
            clique.ledger().charged_rounds().to_string(),
        ]);
    }
    t
}

/// E4b ablation: deterministic Cole–Vishkin marking vs the randomized
/// sampling the paper notes after Theorem 1.4.
///
/// Expected: both orient correctly; the randomized variant spends no
/// `O(log* n)` coloring rounds per iteration but pays occasionally-longer
/// token walks — at these sizes the two are within a small factor, with
/// the deterministic `log*` overhead visible in the per-log column.
pub fn e4b_orientation_ablation_with<C: Communicator>(make: &impl Fn(usize) -> C) -> Table {
    let mut t = Table::new(
        "E4b — ablation: deterministic vs randomized cycle contraction",
        &[
            "n",
            "m",
            "det rounds",
            "rand rounds",
            "det/log2(2m)",
            "rand/log2(2m)",
            "both valid",
        ],
    );
    for &n in &[64usize, 256, 1024] {
        let g = generators::random_eulerian(n, 3, 5);
        let mut c1 = make(n);
        let o1 = eulerian_orientation(&mut c1, &g).expect("honest clique");
        let mut c2 = make(n);
        let o2 = orient_trails_with_strategy(
            &mut c2,
            &g,
            &OrientationCriterion::default(),
            MarkingStrategy::Randomized { seed: 17 },
        )
        .expect("honest clique");
        let scale = ((2 * g.m()) as f64).log2();
        t.push(vec![
            n.to_string(),
            g.m().to_string(),
            c1.ledger().total_rounds().to_string(),
            c2.ledger().total_rounds().to_string(),
            format!("{:.1}", c1.ledger().total_rounds() as f64 / scale),
            format!("{:.1}", c2.ledger().total_rounds() as f64 / scale),
            (is_eulerian_orientation(&g, &o1) && is_eulerian_orientation(&g, &o2)).to_string(),
        ]);
    }
    t
}

/// The experiments driven by the canonical simulator, as printed to
/// `EXPERIMENTS.md`. Each `eN_*` function is a thin wrapper over its
/// `eN_*_with` twin, which accepts any [`Communicator`] factory — the
/// workspace tests drive the same experiments through
/// `cc_model::TracingComm` and assert bitwise-identical round totals.
macro_rules! canonical {
    ($(#[$doc:meta])* $name:ident => $with:ident) => {
        $(#[$doc])*
        pub fn $name() -> Table {
            $with(&Clique::new)
        }
    };
}

canonical!(
    /// [`e1_laplacian_with`] on the bare simulator.
    e1_laplacian => e1_laplacian_with
);
canonical!(
    /// [`e2_sparsifier_with`] on the bare simulator.
    e2_sparsifier => e2_sparsifier_with
);
canonical!(
    /// [`e4_euler_with`] on the bare simulator.
    e4_euler => e4_euler_with
);
canonical!(
    /// [`e5_rounding_with`] on the bare simulator.
    e5_rounding => e5_rounding_with
);
canonical!(
    /// [`e6_maxflow_with`] on the bare simulator.
    e6_maxflow => e6_maxflow_with
);
canonical!(
    /// [`e7_mcf_with`] on the bare simulator.
    e7_mcf => e7_mcf_with
);
canonical!(
    /// [`e8_comparison_with`] on the bare simulator.
    e8_comparison => e8_comparison_with
);
canonical!(
    /// [`e1b_solver_ablation_with`] on the bare simulator.
    e1b_solver_ablation => e1b_solver_ablation_with
);
canonical!(
    /// [`e2b_sparsifier_ablation_with`] on the bare simulator.
    e2b_sparsifier_ablation => e2b_sparsifier_ablation_with
);
canonical!(
    /// [`e4b_orientation_ablation_with`] on the bare simulator.
    e4b_orientation_ablation => e4b_orientation_ablation_with
);

#[cfg(test)]
mod tests {
    use super::*;

    // The experiment suite is exercised end-to-end by the integration
    // tests; here we keep the cheap invariants so `cargo test` stays fast.

    #[test]
    fn e3_ratio_is_bounded() {
        let t = e3_chebyshev();
        for row in t.rows() {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(ratio <= 1.2, "ratio {ratio} too large");
            assert_eq!(row[5], "true");
        }
    }

    #[test]
    fn e5_rounding_is_linear_in_log_delta() {
        let t = e5_rounding();
        let mut per_k: Vec<f64> = Vec::new();
        for row in t.rows() {
            per_k.push(row[3].parse().unwrap());
            assert_eq!(row[4], "true");
            assert_eq!(row[5], "true");
        }
        // The per-log cost varies by less than 3x across the Δ sweep.
        let max = per_k.iter().cloned().fold(0.0f64, f64::max);
        let min = per_k.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min < 3.0, "per-log rounds not stable: {per_k:?}");
    }

    #[test]
    fn e1b_all_preconditioners_reach_epsilon() {
        let t = e1b_solver_ablation();
        assert_eq!(t.rows().len(), 3);
        for row in t.rows() {
            assert_eq!(row[6], "true", "row {row:?}");
            let alpha: f64 = row[2].parse().unwrap();
            assert!(alpha >= 1.0);
        }
    }

    #[test]
    fn e4b_both_strategies_valid_and_randomized_cheaper_per_log() {
        let t = e4b_orientation_ablation();
        for row in t.rows() {
            assert_eq!(row[6], "true");
            let det: f64 = row[4].parse().unwrap();
            let rand: f64 = row[5].parse().unwrap();
            assert!(rand < det, "randomized must save the log* factor: {row:?}");
        }
    }

    #[test]
    fn e8_ff_round_counts_scale_with_flow() {
        let t = e8_comparison();
        let rounds: Vec<u64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(rounds.windows(2).all(|w| w[0] < w[1]));
    }
}
