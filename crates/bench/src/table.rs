//! Minimal fixed-width table rendering for the experiment binaries.

/// A printable table: header plus rows of equally many cells.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The rows collected so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("333"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }
}
