//! Reproducible baseline snapshot of the parallel kernel layer.
//!
//! ```text
//! cargo run -p cc-bench --release --bin bench_snapshot              # writes BENCH_baseline.json
//! cargo run -p cc-bench --release --bin bench_snapshot -- out.json  # custom path
//! ```
//!
//! Times the hot kernels (CSR mat-vec, dense mat-mul, preconditioned
//! Chebyshev) serial vs. parallel on the current host and writes one JSON
//! document. Every parallel result is checked bitwise against the serial
//! run before it is reported — a snapshot with `"bitwise_equal": false`
//! anywhere means the determinism contract is broken and the numbers
//! should not be trusted.
//!
//! Wall-clock is the only nondeterministic output; the snapshot keeps the
//! median of an odd number of repetitions to damp scheduler noise.
//!
//! The snapshot also embeds three fully deterministic sections that diff
//! cleanly across commits:
//!
//! - `"congestion"`: per-phase message, word, and link-congestion
//!   statistics of representative solver runs captured through
//!   `TracingComm`.
//! - `"ipm"`: golden end-to-end runs of both interior-point stacks
//!   (value/cost, round totals, an FNV-1a hash of the integral flow
//!   bits, and the barrier engine's per-stage solver stats).
//! - `"service"`: a seeded 1000-request soak through the `cc-service`
//!   engine over the conformance corpus — round totals, template-cache
//!   hits, oracle-mismatch count (must be 0), and an FNV-1a fingerprint
//!   of every response, plus per-host wall-clock throughput fields that
//!   are excluded from `--check`.
//! - `"threaded"` (schema v5): the concurrent sharded runtime
//!   (`ThreadedComm`) replaying a deterministic unicast workload at
//!   `n` up to 2048 and worker counts 1/2/8 — rounds and inbox hashes
//!   are asserted identical to the sequential `Clique` and gated by
//!   `--check`; the per-worker-count `wall_ns` scaling curve is
//!   per-host and excluded.
//! - `"adversary"` (schema v6): the chaos matrix and the retry path.
//!   `"chaos"` replays the full (pipeline × adversary-strategy)
//!   conformance matrix — detected/tolerated/corrupted counts plus a
//!   hash of the rendered matrix — asserting the detectability
//!   invariant (omission adversaries never corrupt silently) before
//!   reporting. `"recovery"` pins the service layer's retry/backoff
//!   path: a crash–recover node fails attempt 1, the engine charges
//!   backoff and degrades to a fresh build, and attempt 2's response
//!   is asserted bitwise identical to a fault-free run — attempts,
//!   observed faults, retry-phase rounds, and the response
//!   fingerprint are all `--check`-gated.
//! - `"broadcast"` (schema v7): the sparsifier → solver → IPM pipeline
//!   over the measured Broadcast Congested Clique (`BroadcastComm`),
//!   asserted bitwise identical to the unicast clique before reporting
//!   per-pipeline unicast/broadcast round totals and their ratio, a
//!   strict-mode replay of the Laplacian surface, and a hash of the
//!   broadcast-attributed congestion trace.
//!
//! A third tier scales the solver itself: `"large"` times batched
//! multi-RHS kernels (`matvec_multi_into`, `solve_multi_into`, the full
//! batched Chebyshev solve) against `k` repeated single-RHS runs on wide
//! banded Laplacians up to `n = 2048` (millions of edges), verifying the
//! batch is bitwise identical column-for-column, and
//! `"large_determinism"` pins an FNV-1a hash of the batched solution
//! bits per size.
//!
//! `bench_snapshot -- --check [path]` recomputes only the deterministic
//! sections and exits nonzero if any drift-sensitive field (round
//! totals, flow hashes, solve counts, cache hits, the service response
//! fingerprint) differs from the committed baseline — CI runs this to catch silent round-complexity or
//! determinism regressions. `--check --large [path]` instead recomputes
//! the time-boxed subset (`n ∈ {512, 1024}`) of the large-tier solution
//! hashes and compares them against `"large_determinism"`.

use std::time::Instant;

use cc_core::{solve_laplacian, SolverOptions};
use cc_graph::generators;
use cc_linalg::{
    chebyshev_solve_fixed_into, chebyshev_solve_multi_into, laplacian_from_edges, par,
    vec_ops::remove_mean, BatchWorkspace, ChebyshevWorkspace, CsrMatrix, DenseMatrix,
    GroundedCholesky, SolveScratch,
};
use cc_maxflow::{max_flow_ipm, IpmOptions};
use cc_mcf::{min_cost_flow_ipm, McfOptions};
use cc_model::{
    AdversaryComm, AdversarySchedule, AdversaryStrategy, BroadcastComm, Clique, Communicator,
    ThreadedComm, TracingComm,
};
use cc_service::{EngineConfig, FlowEngine, GraphSpec, Request, Response, RetryPolicy};
use cc_sparsify::{build_sparsifier, SparsifyParams};

/// Median wall-clock nanoseconds of `reps` runs of `f` (after one warm-up).
fn time_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Banded Laplacian-like test matrix: path plus two skip-level bands, so
/// rows have a handful of off-diagonals like real graph Laplacians do.
fn banded_laplacian(n: usize) -> CsrMatrix {
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(3 * n);
    for i in 0..n - 1 {
        edges.push((i, i + 1, 1.0 + (i % 7) as f64));
    }
    for i in 0..n.saturating_sub(16) {
        edges.push((i, i + 16, 0.5 + (i % 3) as f64));
    }
    for i in 0..n.saturating_sub(64) {
        edges.push((i, i + 64, 0.25));
    }
    laplacian_from_edges(n, &edges)
}

fn test_vector(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| ((i * 2_654_435_761) % 1_000) as f64 - 500.0)
        .collect();
    remove_mean(&mut b);
    b
}

struct Record {
    bench: String,
    n: usize,
    work: usize,
    serial_ns: u64,
    parallel_ns: u64,
    bitwise_equal: bool,
}

impl Record {
    fn json(&self) -> String {
        let speedup = self.serial_ns as f64 / self.parallel_ns.max(1) as f64;
        format!(
            "    {{\"bench\": \"{}\", \"n\": {}, \"work\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.3}, \"bitwise_equal\": {}}}",
            self.bench, self.n, self.work, self.serial_ns, self.parallel_ns, speedup, self.bitwise_equal
        )
    }
}

fn snapshot_matvec(n: usize, reps: usize) -> Record {
    let a = banded_laplacian(n);
    let x = test_vector(n);
    let mut y_serial = vec![0.0; n];
    let mut y_par = vec![0.0; n];
    let serial_ns = par::with_threads(1, || time_ns(reps, || a.matvec_into(&x, &mut y_serial)));
    let parallel_ns = time_ns(reps, || a.matvec_into(&x, &mut y_par));
    let bitwise_equal = y_serial
        .iter()
        .zip(&y_par)
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "csr_matvec".into(),
        n,
        work: a.nnz(),
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

fn snapshot_matmul(n: usize, reps: usize) -> Record {
    let dense = |salt: usize| {
        let data: Vec<f64> = (0..n * n)
            .map(|k| ((k * 31 + salt * 17) % 23) as f64 - 11.0)
            .collect();
        DenseMatrix::from_row_major(n, n, data)
    };
    let a = dense(1);
    let b = dense(2);
    let serial = par::with_threads(1, || a.matmul(&b)).expect("conforming shapes");
    let serial_ns = par::with_threads(1, || {
        time_ns(reps, || {
            let _ = a.matmul(&b);
        })
    });
    let parallel = a.matmul(&b).expect("conforming shapes");
    let parallel_ns = time_ns(reps, || {
        let _ = a.matmul(&b);
    });
    let bitwise_equal = serial
        .as_slice()
        .iter()
        .zip(parallel.as_slice())
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "dense_matmul".into(),
        n,
        work: n * n * n,
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

fn snapshot_chebyshev(n: usize, iterations: usize, reps: usize) -> Record {
    let a = banded_laplacian(n);
    let b = test_vector(n);
    let mut ws = ChebyshevWorkspace::new(n);
    let mut run = |x: &mut Vec<f64>| {
        chebyshev_solve_fixed_into(
            |p, ap| a.matvec_into(p, ap),
            |r, z| z.copy_from_slice(r),
            &b,
            16.0,
            iterations,
            x,
            &mut ws,
        );
    };
    let mut x_serial = vec![0.0; n];
    let serial_ns = par::with_threads(1, || time_ns(reps, || run(&mut x_serial)));
    let mut x_par = vec![0.0; n];
    let parallel_ns = time_ns(reps, || run(&mut x_par));
    let bitwise_equal = x_serial
        .iter()
        .zip(&x_par)
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "chebyshev_fixed".into(),
        n,
        work: iterations * a.nnz(),
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

/// Wide banded Laplacian for the large tier: bands `(i, i+d)` for
/// `d = 1..=bw` with `bw = n/2`, so `m ≈ 3n²/8` — millions of edges at
/// `n = 2048` — and the grounded factor is effectively dense. Returns the
/// Laplacian and the edge count.
fn wide_banded_laplacian(n: usize) -> (CsrMatrix, usize) {
    let bw = n / 2;
    let mut edges: Vec<(usize, usize, f64)> = Vec::new();
    for d in 1..=bw {
        for i in 0..n - d {
            edges.push((i, i + d, 1.0 + ((i + 3 * d) % 5) as f64 * 0.25));
        }
    }
    let m = edges.len();
    (laplacian_from_edges(n, &edges), m)
}

/// Width of the large tier's right-hand-side batches.
const LARGE_BATCH_K: usize = 16;
/// Fixed Chebyshev iteration count of the large tier (deterministic,
/// data-independent — see `chebyshev_solve_multi_into`).
const LARGE_CHEB_ITERS: usize = 12;
/// Spectrum bound handed to Chebyshev in the large tier (`B = κ·L`, so
/// `B†A` has spectrum `{1/κ} ⊂ [1/κ, 1]`).
const LARGE_KAPPA: f64 = 16.0;

/// Interleaved batch of `k` deterministic zero-mean right-hand sides.
fn large_batch_rhs(n: usize, k: usize) -> Vec<f64> {
    let mut bs = vec![0.0f64; n * k];
    for j in 0..k {
        for v in 0..n {
            bs[v * k + j] = ((v * 2_654_435_761 + j * 40_503) % 1_000) as f64 - 500.0;
        }
        let mean: f64 = (0..n).map(|v| bs[v * k + j]).sum::<f64>() / n as f64;
        for v in 0..n {
            bs[v * k + j] -= mean;
        }
    }
    bs
}

/// FNV-1a over the IEEE-754 bits of a float slice.
fn hash_f64(xs: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in xs {
        h ^= x.to_bits();
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One large-tier timing row: batched kernel vs `k` repeated single-RHS
/// runs of the same work, with a column-for-column bitwise check.
struct LargeRecord {
    bench: &'static str,
    n: usize,
    edges: usize,
    work: usize,
    single_ns: u64,
    batched_ns: u64,
    bitwise_equal: bool,
}

impl LargeRecord {
    fn json(&self) -> String {
        let speedup = self.single_ns as f64 / self.batched_ns.max(1) as f64;
        format!(
            "    {{\"bench\": \"{}\", \"n\": {}, \"edges\": {}, \"work\": {}, \"batch_k\": {}, \"single_ns\": {}, \"batched_ns\": {}, \"batch_speedup\": {:.3}, \"bitwise_equal\": {}}}",
            self.bench, self.n, self.edges, self.work, LARGE_BATCH_K, self.single_ns, self.batched_ns, speedup, self.bitwise_equal
        )
    }
}

/// Batched vs repeated-single runs of the full preconditioned Chebyshev
/// solve plus its two component kernels on one wide banded instance.
/// Returns the timing rows and the FNV hash of the batched solution bits
/// (the determinism pin). All results are checked bitwise: column `j` of
/// every batched kernel must equal the corresponding single-RHS run.
fn large_tier_instance(n: usize, reps: usize) -> (Vec<LargeRecord>, u64) {
    let k = LARGE_BATCH_K;
    let (lap, m) = wide_banded_laplacian(n);
    let chol = GroundedCholesky::new(&lap).expect("connected instance");
    let bs = large_batch_rhs(n, k);
    // Contiguous per-column copies for the single-RHS path (what a caller
    // without the batched API would hold).
    let cols: Vec<Vec<f64>> = (0..k)
        .map(|j| (0..n).map(|v| bs[v * k + j]).collect())
        .collect();

    let mut records = Vec::new();

    // Kernel 1: CSR matvec, k singles vs one interleaved batch.
    let mut y_single = vec![vec![0.0f64; n]; k];
    let mut ys = vec![0.0f64; n * k];
    let single_ns = time_ns(reps, || {
        for j in 0..k {
            lap.matvec_into(&cols[j], &mut y_single[j]);
        }
    });
    let batched_ns = time_ns(reps, || lap.matvec_multi_into(&bs, k, &mut ys));
    let bitwise_equal =
        (0..k).all(|j| (0..n).all(|v| ys[v * k + j].to_bits() == y_single[j][v].to_bits()));
    records.push(LargeRecord {
        bench: "large_csr_matvec_multi",
        n,
        edges: m,
        work: lap.nnz() * k,
        single_ns,
        batched_ns,
        bitwise_equal,
    });

    // Kernel 2: grounded-factor solve, k singles vs one batched sweep
    // (the factor streams through the cache once for the whole batch).
    let mut x_single = vec![vec![0.0f64; n]; k];
    let mut xs = vec![0.0f64; n * k];
    let mut scratch = SolveScratch::default();
    let single_ns = time_ns(reps, || {
        for j in 0..k {
            chol.solve_into(&cols[j], &mut x_single[j], &mut scratch);
        }
    });
    let batched_ns = time_ns(reps, || {
        chol.solve_multi_into(&bs, k, &mut xs, &mut scratch)
    });
    let bitwise_equal =
        (0..k).all(|j| (0..n).all(|v| xs[v * k + j].to_bits() == x_single[j][v].to_bits()));
    records.push(LargeRecord {
        bench: "large_cholesky_solve_multi",
        n,
        edges: m,
        work: n * n * k,
        single_ns,
        batched_ns,
        bitwise_equal,
    });

    // Kernel 3: the full preconditioned Chebyshev solve, k singles vs the
    // batched multi-RHS path — the ISSUE's headline amortization.
    let mut ws_single = ChebyshevWorkspace::new(n);
    let single_ns = time_ns(reps, || {
        for j in 0..k {
            chebyshev_solve_fixed_into(
                |p, out| lap.matvec_into(p, out),
                |r, out| {
                    chol.solve_into(r, out, &mut scratch);
                    for zi in out.iter_mut() {
                        *zi /= LARGE_KAPPA;
                    }
                },
                &cols[j],
                LARGE_KAPPA,
                LARGE_CHEB_ITERS,
                &mut x_single[j],
                &mut ws_single,
            );
        }
    });
    let mut ws_batch = BatchWorkspace::new(n, k);
    let batched_ns = time_ns(reps, || {
        chebyshev_solve_multi_into(
            |p, out| lap.matvec_multi_into(p, k, out),
            |r, out| {
                chol.solve_multi_into(r, k, out, &mut scratch);
                for zi in out.iter_mut() {
                    *zi /= LARGE_KAPPA;
                }
            },
            &bs,
            k,
            LARGE_KAPPA,
            LARGE_CHEB_ITERS,
            &mut xs,
            &mut ws_batch,
        );
    });
    let bitwise_equal =
        (0..k).all(|j| (0..n).all(|v| xs[v * k + j].to_bits() == x_single[j][v].to_bits()));
    records.push(LargeRecord {
        bench: "large_chebyshev_multi",
        n,
        edges: m,
        work: LARGE_CHEB_ITERS * (lap.nnz() + n * n) * k,
        single_ns,
        batched_ns,
        bitwise_equal,
    });

    (records, hash_f64(&xs))
}

/// One `"large_determinism"` row: the hash is a pure function of `n`
/// (fixed `k`, κ and iteration count), bitwise identical on every host
/// and at every thread count.
fn large_det_row(n: usize, hash: u64) -> String {
    format!(
        "    {{\"det\": \"batched_cheby\", \"n\": {}, \"batch_k\": {}, \"cheb_iters\": {}, \"solution_hash\": \"{:#018x}\"}}",
        n, LARGE_BATCH_K, LARGE_CHEB_ITERS, hash
    )
}

/// Sizes whose solution hashes `--check --large` recomputes (time-boxed:
/// the `n = 2048` factorization is minutes of work, the point of the
/// check — bitwise batching determinism — is size-independent).
const LARGE_CHECK_SIZES: [usize; 2] = [512, 1024];

/// Extracts `(n, solution_hash)` pairs from `"large_determinism"` rows.
fn parse_large_hashes(doc: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let marker = "\"det\": \"batched_cheby\", \"n\": ";
    for (pos, _) in doc.match_indices(marker) {
        let rest = &doc[pos + marker.len()..];
        let n: usize = rest
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("malformed large_determinism row");
        let hpat = "\"solution_hash\": \"";
        let hstart = rest.find(hpat).expect("row has a solution_hash") + hpat.len();
        let hash: String = rest[hstart..].chars().take_while(|&c| c != '"').collect();
        out.push((n, hash));
    }
    out
}

/// Recomputes the time-boxed subset of large-tier solution hashes and
/// compares them against the committed `"large_determinism"` section.
/// Exits nonzero on any mismatch.
fn check_large(path: &str) {
    let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check --large: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let Some(section) = baseline.find("\"large_determinism\":") else {
        eprintln!(
            "bench_snapshot --check --large: {path} has no \"large_determinism\" section (regenerate the baseline)"
        );
        std::process::exit(1);
    };
    let want = parse_large_hashes(&baseline[section..]);
    let mut failed = false;
    for n in LARGE_CHECK_SIZES {
        let Some((_, want_hash)) = want.iter().find(|(wn, _)| *wn == n) else {
            eprintln!("bench_snapshot --check --large: baseline has no row for n={n}");
            failed = true;
            continue;
        };
        eprintln!("bench_snapshot --check --large: recomputing n={n}…");
        let (records, hash) = large_tier_instance(n, 1);
        let got_hash = format!("{hash:#018x}");
        if !records.iter().all(|r| r.bitwise_equal) {
            eprintln!(
                "bench_snapshot --check --large: n={n}: batched kernels are not bitwise equal to single-RHS runs"
            );
            failed = true;
        }
        if got_hash != *want_hash {
            eprintln!(
                "bench_snapshot --check --large: n={n}: solution hash drifted: baseline {want_hash} != current {got_hash}"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "bench_snapshot --check --large: OK — solution hashes match {path} for n ∈ {LARGE_CHECK_SIZES:?}"
    );
}

/// Per-phase congestion of representative solver runs, captured through
/// `TracingComm`. Unlike the wall-clock records these are deterministic —
/// the same JSON on every host — so diffs against a committed
/// `BENCH_*.json` flag real communication-pattern regressions.
fn congestion_section() -> String {
    type GraphBuilder = Box<dyn Fn() -> cc_graph::Graph>;
    let workloads: [(&str, GraphBuilder); 2] = [
        (
            "laplacian_solve/random_connected_32",
            Box::new(|| generators::random_connected(32, 96, 8, 1)),
        ),
        (
            "laplacian_solve/expander_32",
            Box::new(|| generators::expander(32)),
        ),
    ];
    let rows: Vec<String> = workloads
        .iter()
        .map(|(name, build)| {
            let g = build();
            let n = g.n();
            let mut b = vec![0.0; n];
            b[0] = 1.0;
            b[n - 1] = -1.0;
            let mut comm = TracingComm::new(Clique::new(n));
            solve_laplacian(&mut comm, &g, &b, 1e-6, &SolverOptions::default())
                .expect("representative solve succeeds");
            let stats: String = comm
                .congestion_json()
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i == 0 {
                        l.to_string()
                    } else {
                        format!("    {l}")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "    {{\"workload\": \"{}\", \"total_rounds\": {}, \"stats\": {}}}",
                name,
                comm.ledger().total_rounds(),
                stats
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// FNV-1a over the flow values' two's-complement bits — one word per
/// edge, so any single-edge change flips the digest.
fn hash_i64(xs: &[i64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in xs {
        h ^= x as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Golden end-to-end IPM runs: fixed instances through both
/// interior-point stacks, reporting exact values, ledger round totals,
/// flow-bit hashes and the barrier engine's per-stage stats. Everything
/// here is bitwise deterministic across hosts and thread counts.
fn ipm_section() -> String {
    let mut rows = Vec::new();
    for (n, extra, cap, seed, s, t) in [
        (8usize, 14usize, 3i64, 5u64, 0usize, 7usize),
        (12, 26, 4, 13, 0, 11),
    ] {
        let g = generators::random_flow_network(n, extra, cap, seed);
        let mut clique = Clique::new(n);
        let out =
            max_flow_ipm(&mut clique, &g, s, t, &IpmOptions::default()).expect("honest clique");
        rows.push(format!(
            "    {{\"instance\": \"maxflow/random_flow_network_{}_seed{}\", \"value\": {}, \"total_rounds\": {}, \"charged_rounds\": {}, \"implemented_rounds\": {}, \"flow_hash\": \"{:#018x}\", \"progress_steps\": {}, \"engine\": {}}}",
            n,
            seed,
            out.value,
            clique.ledger().total_rounds(),
            clique.ledger().charged_rounds(),
            clique.ledger().implemented_rounds(),
            hash_i64(&out.flow),
            out.stats.progress_steps,
            out.stats.engine.to_json(),
        ));
    }
    for (k, extra, cost, seed) in [(4usize, 2usize, 8i64, 7u64), (5, 3, 6, 11)] {
        let (g, sigma) = generators::bipartite_assignment(k, extra, cost, seed);
        let mut clique = Clique::new(g.n() + 2);
        let out =
            min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).expect("feasible");
        rows.push(format!(
            "    {{\"instance\": \"mcf/bipartite_assignment_{}_seed{}\", \"cost\": {}, \"total_rounds\": {}, \"charged_rounds\": {}, \"implemented_rounds\": {}, \"flow_hash\": \"{:#018x}\", \"progress_steps\": {}, \"engine\": {}}}",
            k,
            seed,
            out.cost,
            clique.ledger().total_rounds(),
            clique.ledger().charged_rounds(),
            clique.ledger().implemented_rounds(),
            hash_i64(&out.flow),
            out.stats.progress_steps,
            out.stats.engine.to_json(),
        ));
    }
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Deterministic replay of the service-layer soak: the whole conformance
/// corpus registered in one `FlowEngine`, a seeded randomized request
/// stream with randomized batch widths, every 10th response differenced
/// against the sequential oracles. Everything except the wall-clock
/// fields (`wall_ms`, `requests_per_sec`) is bitwise reproducible across
/// hosts and thread counts — `--check` recomputes the section and
/// compares rounds, cache hits, and the response fingerprint.
fn service_section() -> String {
    let config = cc_conform::SoakConfig {
        requests: 1000,
        oracle_every: 10,
        ..cc_conform::SoakConfig::default()
    };
    let t0 = Instant::now();
    let report = cc_conform::run_service_soak(&config);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.mismatches.is_empty(),
        "service soak disagreed with the sequential oracles: {:?}",
        report.mismatches
    );
    format!(
        "{{\"seed\": {}, \"requests\": {}, \"batches\": {}, \"batched_requests\": {}, \"oracle_checks\": {}, \"mismatches\": {}, \"template_cache_hits\": {}, \"builds\": {}, \"total_rounds\": {}, \"charged_rounds\": {}, \"fingerprint\": \"{:#018x}\", \"counts_by_kind\": [{}], \"wall_ms\": {:.1}, \"requests_per_sec\": {:.0}}}",
        config.seed,
        report.requests,
        report.batches,
        report.batched_requests,
        report.oracle_checks,
        report.mismatches.len(),
        report.template_cache_hits,
        report.builds,
        report.total_rounds,
        report.charged_rounds,
        report.fingerprint,
        report
            .counts_by_kind
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        wall_ms,
        report.requests as f64 / (wall_ms / 1e3).max(1e-9),
    )
}

/// Sizes of the threaded-scaling tier: virtual cliques sharded over the
/// persistent worker pool, up to `n = 2048` nodes.
const THREADED_SIZES: [usize; 3] = [256, 1024, 2048];
/// Worker counts of the threaded-scaling tier (the same matrix the CI
/// determinism job pins).
const THREADED_WORKERS: [usize; 3] = [1, 2, 8];
/// Synchronous rounds each threaded workload replays.
const THREADED_ROUNDS: usize = 4;

/// One deterministic round of unicast traffic: node `u` sends a 3-word
/// message to each of 8 strided neighbors, with the stride varying per
/// round so shards see different destination mixes.
fn threaded_outboxes(n: usize, round: usize) -> Vec<Vec<(usize, Vec<u64>)>> {
    (0..n)
        .map(|u| {
            (1..=8usize)
                .map(|d| {
                    let dst = (u + d * (round + 1) * 37) % n;
                    let w = (u as u64) << 32 | (round as u64) << 8 | d as u64;
                    (dst, vec![w, w.wrapping_mul(0x9e3779b97f4a7c15), !w])
                })
                .collect()
        })
        .collect()
}

/// Replays the threaded workload — alternating `route` and `exchange`
/// rounds — and folds every delivered envelope into an FNV-1a digest.
fn threaded_workload<C: Communicator>(comm: &mut C, n: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let fold = |h: &mut u64, w: u64| {
        *h ^= w;
        *h = h.wrapping_mul(0x100000001b3);
    };
    for round in 0..THREADED_ROUNDS {
        let routed = comm
            .route(threaded_outboxes(n, 2 * round))
            .expect("well-formed workload");
        let exchanged = comm
            .exchange(threaded_outboxes(n, 2 * round + 1))
            .expect("well-formed workload");
        for inbox in routed.iter().chain(exchanged.iter()) {
            for env in inbox {
                fold(&mut h, env.src as u64);
                for &w in &env.payload {
                    fold(&mut h, w);
                }
            }
        }
    }
    h
}

/// The threaded-scaling section (schema v5): the same deterministic
/// unicast workload through the sequential `Clique` and through
/// `ThreadedComm` at each worker count. Rounds and inbox hashes are
/// asserted identical across all transports before being reported —
/// they are the `--check`-gated fields — while `wall_ns` records the
/// per-host scaling curve and is excluded from drift checks.
fn threaded_section() -> String {
    let mut rows = Vec::new();
    for n in THREADED_SIZES {
        let mut seq = Clique::new(n);
        let want_hash = threaded_workload(&mut seq, n);
        let want_rounds = seq.ledger().total_rounds();
        for workers in THREADED_WORKERS {
            let t0 = Instant::now();
            let mut par = ThreadedComm::with_workers(n, workers);
            let hash = threaded_workload(&mut par, n);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let rounds = par.ledger().total_rounds();
            assert_eq!(
                (hash, rounds),
                (want_hash, want_rounds),
                "ThreadedComm diverged from Clique at n={n}, workers={workers}"
            );
            assert_eq!(
                seq.ledger().report(),
                par.ledger().report(),
                "ledger report diverged at n={n}, workers={workers}"
            );
            rows.push(format!(
                "    {{\"bench\": \"threaded_route_exchange\", \"n\": {}, \"workers\": {}, \"rounds\": {}, \"inbox_hash\": \"{:#018x}\", \"wall_ns\": {}}}",
                n, workers, rounds, hash, wall_ns
            ));
        }
    }
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// FNV-1a over raw bytes (used to pin the rendered chaos matrix).
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a over a service response's bits: a variant tag, then every
/// field (floats by IEEE-754 bits, integers by two's complement).
fn hash_response(r: &Response) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut fold = |w: u64| {
        h ^= w;
        h = h.wrapping_mul(0x100000001b3);
    };
    match r {
        Response::Potentials { x, iterations } => {
            fold(1);
            fold(*iterations as u64);
            x.iter().for_each(|v| fold(v.to_bits()));
        }
        Response::MaxFlow { flow, value } => {
            fold(3);
            fold(*value as u64);
            flow.iter().for_each(|&f| fold(f as u64));
        }
        other => unreachable!("recovery scenarios return potentials or flows, got {other:?}"),
    }
    h
}

/// Node count of the recovery scenarios (matches the service-layer
/// recovery suite).
const ADV_N: usize = 14;
/// The crash window: node 1 is dead for the first `ADV_CRASH_UNTIL`
/// ledger rounds, long enough that every scenario's opening
/// communication hits it.
const ADV_CRASH_UNTIL: u64 = 50;
/// Backoff charged before the retry; `≥ ADV_CRASH_UNTIL` guarantees
/// attempt 2 starts after the node recovered.
const ADV_BACKOFF: u64 = 200;

/// The adversary section (schema v6): chaos-matrix counts over the full
/// conformance corpus plus the pinned retry/backoff recovery scenarios.
/// Everything here is bitwise deterministic — the adversary streams are
/// pure functions of (schedule, call sequence, payload shapes) — so all
/// fields are `--check`-gated.
fn adversary_section() -> String {
    // A Corrupted cell panics inside the suite's catch_unwind; keep the
    // snapshot log readable by silencing the hook while the matrix runs.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = cc_conform::run_adversary_suite();
    std::panic::set_hook(hook);
    report.assert_detectable_strategies_never_corrupt();
    let chaos = format!(
        "{{\"cells\": {}, \"detected\": {}, \"tolerated\": {}, \"corrupted\": {}, \"matrix_hash\": \"{:#018x}\"}}",
        report.cells.len(),
        report.count(cc_conform::CellOutcome::Detected),
        report.count(cc_conform::CellOutcome::Tolerated),
        report.count(cc_conform::CellOutcome::Corrupted),
        hash_bytes(report.matrix_markdown().as_bytes()),
    );

    fn register<C: Communicator>(engine: &mut FlowEngine<C>) {
        engine.register(
            "lap",
            GraphSpec::Undirected(generators::random_connected(ADV_N, 34, 4, 3)),
        );
        engine.register(
            "net",
            GraphSpec::Directed(generators::random_flow_network(10, 18, 4, 2)),
        );
    }
    let mut b = vec![0.0; ADV_N];
    b[0] = 1.0;
    b[ADV_N - 1] = -1.0;
    let scenarios: [(&str, Request); 2] = [
        (
            "laplacian_solve/crash_recover",
            Request::LaplacianSolve {
                graph: "lap".into(),
                b,
                eps: 1e-8,
            },
        ),
        (
            "maxflow/crash_recover",
            Request::MaxFlow {
                graph: "net".into(),
                s: 0,
                t: 9,
            },
        ),
    ];
    let rows: Vec<String> = scenarios
        .into_iter()
        .map(|(label, request)| {
            // Fault-free baseline: what the recovered attempt must
            // reproduce bit for bit.
            let mut baseline = FlowEngine::new(Clique::new(ADV_N));
            register(&mut baseline);
            let want = baseline.submit(request.clone()).expect("honest clique");

            let schedule = AdversarySchedule::new(17).with(
                1,
                AdversaryStrategy::CrashRecover {
                    from_round: 0,
                    until_round: ADV_CRASH_UNTIL,
                },
            );
            let mut engine = FlowEngine::with_config(
                AdversaryComm::new(Clique::new(ADV_N), schedule),
                EngineConfig {
                    retry: RetryPolicy::retries(3, ADV_BACKOFF),
                    ..EngineConfig::default()
                },
            );
            register(&mut engine);
            let got = engine.submit(request).expect("retry must recover");
            let degraded = got.stats.degraded.expect("recovered request is degraded");
            assert_eq!(
                hash_response(&got.response),
                hash_response(&want.response),
                "{label}: recovered response diverged from the fault-free run"
            );
            format!(
                "    {{\"scenario\": \"{}\", \"attempts\": {}, \"faults_observed\": {}, \"retry_rounds\": {}, \"request_rounds\": {}, \"response_fingerprint\": \"{:#018x}\"}}",
                label,
                got.stats.attempts,
                degraded.faults_observed,
                engine.ledger().phase("service_retry").implemented,
                got.stats.rounds,
                hash_response(&got.response),
            )
        })
        .collect();
    format!(
        "{{\"chaos\": {}, \"recovery\": [\n{}\n  ]}}",
        chaos,
        rows.join(",\n")
    )
}

/// The broadcast section (schema v7): the sparsifier → solver → IPM
/// pipeline replayed over the measured Broadcast Congested Clique
/// (`BroadcastComm`) and differenced against the unicast clique.
/// Results are asserted bitwise identical across the two cost models
/// before being reported — measured mode simulates unicast primitives
/// at true broadcast cost, so only the ledgers may differ — and each
/// row pins both round totals plus their ratio. The solver row
/// additionally replays under *strict* mode (the Laplacian surface
/// never touches a unicast primitive) and a tracing row pins the
/// one-sender-to-all congestion attribution. All fields are
/// `--check`-gated.
fn broadcast_section() -> String {
    let mut rows = Vec::new();

    // Laplacian solve: unicast vs measured vs strict broadcast.
    let g = generators::random_connected(32, 96, 8, 1);
    let n = g.n();
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    let opts = SolverOptions::default();
    let mut uni = Clique::new(n);
    let want = solve_laplacian(&mut uni, &g, &b, 1e-6, &opts).expect("unicast solve");
    let mut bc = BroadcastComm::measured(Clique::new(n));
    let got = solve_laplacian(&mut bc, &g, &b, 1e-6, &opts).expect("broadcast solve");
    assert_eq!(
        (hash_f64(&want.x), want.iterations),
        (hash_f64(&got.x), got.iterations),
        "measured BroadcastComm must reproduce the unicast solution bitwise"
    );
    let mut strict = BroadcastComm::strict(Clique::new(n));
    let strict_out = solve_laplacian(&mut strict, &g, &b, 1e-6, &opts)
        .expect("the Laplacian surface is strictly broadcast-expressible");
    assert_eq!(
        (hash_f64(&strict_out.x), strict.ledger().report()),
        (hash_f64(&got.x), bc.ledger().report()),
        "strict and measured broadcast runs must agree on the broadcast surface"
    );
    rows.push(format!(
        "    {{\"pipeline\": \"laplacian_solve/random_connected_32\", \"result_hash\": \"{:#018x}\", \"unicast_rounds\": {}, \"broadcast_rounds\": {}, \"round_ratio\": {:.4}}}",
        hash_f64(&got.x),
        uni.ledger().total_rounds(),
        bc.ledger().total_rounds(),
        bc.ledger().total_rounds() as f64 / uni.ledger().total_rounds() as f64,
    ));

    // Sparsifier: the same template over both cost models.
    let mut uni = Clique::new(n);
    let want = build_sparsifier(&mut uni, &g, &SparsifyParams::default()).expect("unicast");
    let mut bc = BroadcastComm::measured(Clique::new(n));
    let got = build_sparsifier(&mut bc, &g, &SparsifyParams::default()).expect("broadcast");
    let edge_hash = |s: &cc_sparsify::SpectralSparsifier| {
        let mut h: u64 = 0xcbf29ce484222325;
        for &(u, v, w) in s.edges() {
            for word in [u as u64, v as u64, w.to_bits()] {
                h ^= word;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    };
    assert_eq!(
        (edge_hash(&want), want.alpha().to_bits()),
        (edge_hash(&got), got.alpha().to_bits()),
        "measured BroadcastComm must reproduce the sparsifier bitwise"
    );
    rows.push(format!(
        "    {{\"pipeline\": \"sparsifier/random_connected_32\", \"result_hash\": \"{:#018x}\", \"unicast_rounds\": {}, \"broadcast_rounds\": {}, \"round_ratio\": {:.4}}}",
        edge_hash(&got),
        uni.ledger().total_rounds(),
        bc.ledger().total_rounds(),
        bc.ledger().total_rounds() as f64 / uni.ledger().total_rounds() as f64,
    ));

    // Max-flow IPM: the unicast-shaped primitives (routing, Eulerian
    // orientation) simulated at broadcast cost.
    let gf = generators::random_flow_network(12, 26, 4, 13);
    let mut uni = Clique::new(12);
    let want = max_flow_ipm(&mut uni, &gf, 0, 11, &IpmOptions::default()).expect("unicast");
    let mut bc = BroadcastComm::measured(Clique::new(12));
    let got = max_flow_ipm(&mut bc, &gf, 0, 11, &IpmOptions::default()).expect("broadcast");
    assert_eq!(
        (want.value, hash_i64(&want.flow)),
        (got.value, hash_i64(&got.flow)),
        "measured BroadcastComm must reproduce the max flow bitwise"
    );
    rows.push(format!(
        "    {{\"pipeline\": \"maxflow_ipm/random_flow_network_12_seed13\", \"result_hash\": \"{:#018x}\", \"unicast_rounds\": {}, \"broadcast_rounds\": {}, \"round_ratio\": {:.4}}}",
        hash_i64(&got.flow),
        uni.ledger().total_rounds(),
        bc.ledger().total_rounds(),
        bc.ledger().total_rounds() as f64 / uni.ledger().total_rounds() as f64,
    ));

    // Congestion attribution under broadcast: one sender reaches all
    // n−1 receivers, so the per-pair congestion seam reports the
    // per-node send load instead of the max pair load.
    let mut trace = TracingComm::new(BroadcastComm::measured(Clique::new(n)));
    solve_laplacian(&mut trace, &g, &b, 1e-6, &opts).expect("traced broadcast solve");
    let trace_json = trace.congestion_json();
    format!(
        "{{\"pipelines\": [\n{}\n  ], \"trace_hash\": \"{:#018x}\", \"trace\": {}}}",
        rows.join(",\n"),
        hash_bytes(trace_json.as_bytes()),
        trace_json
            .lines()
            .enumerate()
            .map(|(i, l)| if i == 0 {
                l.to_string()
            } else {
                format!("  {l}")
            })
            .collect::<Vec<_>>()
            .join("\n"),
    )
}

/// Drift-sensitive fields of a snapshot document, in document order:
/// every round total, flow hash, exact value and solver count, plus the
/// service soak's cache-hit totals and response fingerprint. Wall-clock
/// fields are deliberately absent — they vary per host.
fn drift_fields(doc: &str) -> Vec<(usize, String, String)> {
    const KEYS: [&str; 29] = [
        "inbox_hash",
        "total_rounds",
        "charged_rounds",
        "implemented_rounds",
        "rounds",
        "flow_hash",
        "value",
        "cost",
        "solves",
        "chebyshev_iterations",
        "template_reuses",
        "template_cache_hits",
        "mismatches",
        "fingerprint",
        "detected",
        "tolerated",
        "corrupted",
        "cells",
        "matrix_hash",
        "attempts",
        "faults_observed",
        "retry_rounds",
        "request_rounds",
        "response_fingerprint",
        "result_hash",
        "unicast_rounds",
        "broadcast_rounds",
        "round_ratio",
        "trace_hash",
    ];
    let mut found = Vec::new();
    for key in KEYS {
        let pat = format!("\"{key}\":");
        for (pos, _) in doc.match_indices(&pat) {
            let rest = doc[pos + pat.len()..].trim_start();
            let val: String = rest
                .chars()
                .take_while(|c| !",}\n".contains(*c))
                .collect::<String>()
                .trim()
                .to_string();
            found.push((pos, key.to_string(), val));
        }
    }
    found.sort();
    found
}

/// Recomputes the deterministic sections and compares every
/// drift-sensitive field against the committed baseline. Exits nonzero
/// on any mismatch.
fn check_baseline(path: &str) {
    let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_snapshot --check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    if !baseline.contains("\"ipm\":") {
        eprintln!(
            "bench_snapshot --check: {path} has no \"ipm\" section (regenerate the baseline)"
        );
        std::process::exit(1);
    }
    if !baseline.contains("\"service\":") {
        eprintln!(
            "bench_snapshot --check: {path} has no \"service\" section (regenerate the baseline)"
        );
        std::process::exit(1);
    }
    if !baseline.contains("\"threaded\":") {
        eprintln!(
            "bench_snapshot --check: {path} has no \"threaded\" section (schema v5 — regenerate the baseline)"
        );
        std::process::exit(1);
    }
    if !baseline.contains("\"adversary\":") {
        eprintln!(
            "bench_snapshot --check: {path} has no \"adversary\" section (schema v6 — regenerate the baseline)"
        );
        std::process::exit(1);
    }
    if !baseline.contains("\"broadcast\":") {
        eprintln!(
            "bench_snapshot --check: {path} has no \"broadcast\" section (schema v7 — regenerate the baseline)"
        );
        std::process::exit(1);
    }
    eprintln!("bench_snapshot --check: recomputing deterministic sections…");
    let fresh = format!(
        "{{\n  \"ipm\": {},\n  \"congestion\": {},\n  \"service\": {},\n  \"threaded\": {},\n  \"adversary\": {},\n  \"broadcast\": {}\n}}\n",
        ipm_section(),
        congestion_section(),
        service_section(),
        threaded_section(),
        adversary_section(),
        broadcast_section(),
    );
    let want: Vec<(String, String)> = drift_fields(&baseline)
        .into_iter()
        .map(|(_, k, v)| (k, v))
        .collect();
    let got: Vec<(String, String)> = drift_fields(&fresh)
        .into_iter()
        .map(|(_, k, v)| (k, v))
        .collect();
    if want == got {
        eprintln!(
            "bench_snapshot --check: OK — {} drift-sensitive fields match {path}",
            want.len()
        );
        return;
    }
    for (i, (w, g)) in want.iter().zip(&got).enumerate() {
        if w != g {
            eprintln!(
                "bench_snapshot --check: field #{i} \"{}\" drifted: baseline {} != current {}",
                w.0, w.1, g.1
            );
        }
    }
    if want.len() != got.len() {
        eprintln!(
            "bench_snapshot --check: field count changed: baseline {} != current {}",
            want.len(),
            got.len()
        );
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let large = args.get(1).map(String::as_str) == Some("--large");
        let path = args
            .get(if large { 2 } else { 1 })
            .map(String::as_str)
            .unwrap_or("BENCH_baseline.json");
        if large {
            check_large(path);
        } else {
            check_baseline(path);
        }
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_baseline.json".into());
    let threads = par::max_threads();
    eprintln!("bench_snapshot: {threads} thread(s) available");

    let mut records = Vec::new();
    for &n in &[1024usize, 4096, 16384, 65536] {
        let reps = if n >= 16384 { 11 } else { 31 };
        eprintln!("  csr_matvec n={n}…");
        records.push(snapshot_matvec(n, reps));
    }
    for &n in &[96usize, 192, 384] {
        eprintln!("  dense_matmul n={n}…");
        records.push(snapshot_matmul(n, 7));
    }
    eprintln!("  chebyshev n=16384…");
    records.push(snapshot_chebyshev(16384, 40, 7));

    let mut large_records = Vec::new();
    let mut large_det_rows = Vec::new();
    for &n in &[256usize, 512, 1024, 2048] {
        let reps = if n >= 2048 { 3 } else { 5 };
        eprintln!("  large tier n={n} (k={LARGE_BATCH_K})…");
        let (rows, hash) = large_tier_instance(n, reps);
        large_det_rows.push(large_det_row(n, hash));
        large_records.extend(rows);
    }

    eprintln!("  ipm goldens…");
    let ipm = ipm_section();

    eprintln!("  congestion traces…");
    let congestion = congestion_section();

    eprintln!("  service soak…");
    let service = service_section();

    eprintln!("  threaded scaling…");
    let threaded = threaded_section();

    eprintln!("  adversary chaos + recovery…");
    let adversary = adversary_section();

    eprintln!("  broadcast clique…");
    let broadcast = broadcast_section();

    let all_equal =
        records.iter().all(|r| r.bitwise_equal) && large_records.iter().all(|r| r.bitwise_equal);
    let body: Vec<String> = records.iter().map(Record::json).collect();
    let large_body: Vec<String> = large_records.iter().map(LargeRecord::json).collect();
    // `"large_determinism"` stays the LAST section: `--check --large`
    // locates it by marker and reads to the end of the document.
    let json = format!(
        "{{\n  \"schema\": \"cc-bench/snapshot-v7\",\n  \"threads\": {},\n  \"parallel_feature\": {},\n  \"all_bitwise_equal\": {},\n  \"records\": [\n{}\n  ],\n  \"large\": [\n{}\n  ],\n  \"ipm\": {},\n  \"congestion\": {},\n  \"service\": {},\n  \"threaded\": {},\n  \"adversary\": {},\n  \"broadcast\": {},\n  \"large_determinism\": [\n{}\n  ]\n}}\n",
        threads,
        par::PARALLEL_ENABLED,
        all_equal,
        body.join(",\n"),
        large_body.join(",\n"),
        ipm,
        congestion,
        service,
        threaded,
        adversary,
        broadcast,
        large_det_rows.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    for r in &records {
        let speedup = r.serial_ns as f64 / r.parallel_ns.max(1) as f64;
        eprintln!(
            "  {:>14} n={:<6} serial {:>12}ns parallel {:>12}ns speedup {:.2}x bitwise_equal={}",
            r.bench, r.n, r.serial_ns, r.parallel_ns, speedup, r.bitwise_equal
        );
    }
    for r in &large_records {
        let speedup = r.single_ns as f64 / r.batched_ns.max(1) as f64;
        eprintln!(
            "  {:>26} n={:<5} single {:>12}ns batched {:>12}ns speedup {:.2}x bitwise_equal={}",
            r.bench, r.n, r.single_ns, r.batched_ns, speedup, r.bitwise_equal
        );
    }
    assert!(
        all_equal,
        "parallel/batched results must be bitwise identical to their serial/single twins"
    );
}
