//! Reproducible baseline snapshot of the parallel kernel layer.
//!
//! ```text
//! cargo run -p cc-bench --release --bin bench_snapshot              # writes BENCH_baseline.json
//! cargo run -p cc-bench --release --bin bench_snapshot -- out.json  # custom path
//! ```
//!
//! Times the hot kernels (CSR mat-vec, dense mat-mul, preconditioned
//! Chebyshev) serial vs. parallel on the current host and writes one JSON
//! document. Every parallel result is checked bitwise against the serial
//! run before it is reported — a snapshot with `"bitwise_equal": false`
//! anywhere means the determinism contract is broken and the numbers
//! should not be trusted.
//!
//! Wall-clock is the only nondeterministic output; the snapshot keeps the
//! median of an odd number of repetitions to damp scheduler noise.
//!
//! The snapshot also embeds a `"congestion"` section: per-phase message,
//! word, and link-congestion statistics of representative solver runs
//! captured through `TracingComm` — fully deterministic, so they diff
//! cleanly across commits.

use std::time::Instant;

use cc_core::{solve_laplacian, SolverOptions};
use cc_graph::generators;
use cc_linalg::{
    chebyshev_solve_fixed_into, laplacian_from_edges, par, vec_ops::remove_mean,
    ChebyshevWorkspace, CsrMatrix, DenseMatrix,
};
use cc_model::{Clique, Communicator, TracingComm};

/// Median wall-clock nanoseconds of `reps` runs of `f` (after one warm-up).
fn time_ns(reps: usize, mut f: impl FnMut()) -> u64 {
    f();
    let mut samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Banded Laplacian-like test matrix: path plus two skip-level bands, so
/// rows have a handful of off-diagonals like real graph Laplacians do.
fn banded_laplacian(n: usize) -> CsrMatrix {
    let mut edges: Vec<(usize, usize, f64)> = Vec::with_capacity(3 * n);
    for i in 0..n - 1 {
        edges.push((i, i + 1, 1.0 + (i % 7) as f64));
    }
    for i in 0..n.saturating_sub(16) {
        edges.push((i, i + 16, 0.5 + (i % 3) as f64));
    }
    for i in 0..n.saturating_sub(64) {
        edges.push((i, i + 64, 0.25));
    }
    laplacian_from_edges(n, &edges)
}

fn test_vector(n: usize) -> Vec<f64> {
    let mut b: Vec<f64> = (0..n)
        .map(|i| ((i * 2_654_435_761) % 1_000) as f64 - 500.0)
        .collect();
    remove_mean(&mut b);
    b
}

struct Record {
    bench: String,
    n: usize,
    work: usize,
    serial_ns: u64,
    parallel_ns: u64,
    bitwise_equal: bool,
}

impl Record {
    fn json(&self) -> String {
        let speedup = self.serial_ns as f64 / self.parallel_ns.max(1) as f64;
        format!(
            "    {{\"bench\": \"{}\", \"n\": {}, \"work\": {}, \"serial_ns\": {}, \"parallel_ns\": {}, \"speedup\": {:.3}, \"bitwise_equal\": {}}}",
            self.bench, self.n, self.work, self.serial_ns, self.parallel_ns, speedup, self.bitwise_equal
        )
    }
}

fn snapshot_matvec(n: usize, reps: usize) -> Record {
    let a = banded_laplacian(n);
    let x = test_vector(n);
    let mut y_serial = vec![0.0; n];
    let mut y_par = vec![0.0; n];
    let serial_ns = par::with_threads(1, || time_ns(reps, || a.matvec_into(&x, &mut y_serial)));
    let parallel_ns = time_ns(reps, || a.matvec_into(&x, &mut y_par));
    let bitwise_equal = y_serial
        .iter()
        .zip(&y_par)
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "csr_matvec".into(),
        n,
        work: a.nnz(),
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

fn snapshot_matmul(n: usize, reps: usize) -> Record {
    let dense = |salt: usize| {
        let data: Vec<f64> = (0..n * n)
            .map(|k| ((k * 31 + salt * 17) % 23) as f64 - 11.0)
            .collect();
        DenseMatrix::from_row_major(n, n, data)
    };
    let a = dense(1);
    let b = dense(2);
    let serial = par::with_threads(1, || a.matmul(&b)).expect("conforming shapes");
    let serial_ns = par::with_threads(1, || {
        time_ns(reps, || {
            let _ = a.matmul(&b);
        })
    });
    let parallel = a.matmul(&b).expect("conforming shapes");
    let parallel_ns = time_ns(reps, || {
        let _ = a.matmul(&b);
    });
    let bitwise_equal = serial
        .as_slice()
        .iter()
        .zip(parallel.as_slice())
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "dense_matmul".into(),
        n,
        work: n * n * n,
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

fn snapshot_chebyshev(n: usize, iterations: usize, reps: usize) -> Record {
    let a = banded_laplacian(n);
    let b = test_vector(n);
    let mut ws = ChebyshevWorkspace::new(n);
    let mut run = |x: &mut Vec<f64>| {
        chebyshev_solve_fixed_into(
            |p, ap| a.matvec_into(p, ap),
            |r, z| z.copy_from_slice(r),
            &b,
            16.0,
            iterations,
            x,
            &mut ws,
        );
    };
    let mut x_serial = vec![0.0; n];
    let serial_ns = par::with_threads(1, || time_ns(reps, || run(&mut x_serial)));
    let mut x_par = vec![0.0; n];
    let parallel_ns = time_ns(reps, || run(&mut x_par));
    let bitwise_equal = x_serial
        .iter()
        .zip(&x_par)
        .all(|(s, p)| s.to_bits() == p.to_bits());
    Record {
        bench: "chebyshev_fixed".into(),
        n,
        work: iterations * a.nnz(),
        serial_ns,
        parallel_ns,
        bitwise_equal,
    }
}

/// Per-phase congestion of representative solver runs, captured through
/// `TracingComm`. Unlike the wall-clock records these are deterministic —
/// the same JSON on every host — so diffs against a committed
/// `BENCH_*.json` flag real communication-pattern regressions.
fn congestion_section() -> String {
    type GraphBuilder = Box<dyn Fn() -> cc_graph::Graph>;
    let workloads: [(&str, GraphBuilder); 2] = [
        (
            "laplacian_solve/random_connected_32",
            Box::new(|| generators::random_connected(32, 96, 8, 1)),
        ),
        (
            "laplacian_solve/expander_32",
            Box::new(|| generators::expander(32)),
        ),
    ];
    let rows: Vec<String> = workloads
        .iter()
        .map(|(name, build)| {
            let g = build();
            let n = g.n();
            let mut b = vec![0.0; n];
            b[0] = 1.0;
            b[n - 1] = -1.0;
            let mut comm = TracingComm::new(Clique::new(n));
            solve_laplacian(&mut comm, &g, &b, 1e-6, &SolverOptions::default())
                .expect("representative solve succeeds");
            let stats: String = comm
                .congestion_json()
                .lines()
                .enumerate()
                .map(|(i, l)| {
                    if i == 0 {
                        l.to_string()
                    } else {
                        format!("    {l}")
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "    {{\"workload\": \"{}\", \"total_rounds\": {}, \"stats\": {}}}",
                name,
                comm.ledger().total_rounds(),
                stats
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_baseline.json".into());
    let threads = par::max_threads();
    eprintln!("bench_snapshot: {threads} thread(s) available");

    let mut records = Vec::new();
    for &n in &[1024usize, 4096, 16384, 65536] {
        let reps = if n >= 16384 { 11 } else { 31 };
        eprintln!("  csr_matvec n={n}…");
        records.push(snapshot_matvec(n, reps));
    }
    for &n in &[96usize, 192, 384] {
        eprintln!("  dense_matmul n={n}…");
        records.push(snapshot_matmul(n, 7));
    }
    eprintln!("  chebyshev n=16384…");
    records.push(snapshot_chebyshev(16384, 40, 7));

    eprintln!("  congestion traces…");
    let congestion = congestion_section();

    let all_equal = records.iter().all(|r| r.bitwise_equal);
    let body: Vec<String> = records.iter().map(Record::json).collect();
    let json = format!(
        "{{\n  \"schema\": \"cc-bench/snapshot-v2\",\n  \"threads\": {},\n  \"parallel_feature\": {},\n  \"all_bitwise_equal\": {},\n  \"records\": [\n{}\n  ],\n  \"congestion\": {}\n}}\n",
        threads,
        par::PARALLEL_ENABLED,
        all_equal,
        body.join(",\n"),
        congestion,
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("wrote {out_path}");
    for r in &records {
        let speedup = r.serial_ns as f64 / r.parallel_ns.max(1) as f64;
        eprintln!(
            "  {:>14} n={:<6} serial {:>12}ns parallel {:>12}ns speedup {:.2}x bitwise_equal={}",
            r.bench, r.n, r.serial_ns, r.parallel_ns, speedup, r.bitwise_equal
        );
    }
    assert!(
        all_equal,
        "parallel results must be bitwise identical to serial"
    );
}
