//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p cc-bench --release --bin exp_tables            # all
//! cargo run -p cc-bench --release --bin exp_tables -- e1 e4   # selected
//! ```

use cc_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    let all = args.is_empty();
    let want = |k: &str| all || args.iter().any(|a| a == k);
    type Experiment = (&'static str, fn() -> Table);
    let experiments: Vec<Experiment> = vec![
        ("e1", e1_laplacian),
        ("e1b", e1b_solver_ablation),
        ("e2", e2_sparsifier),
        ("e2b", e2b_sparsifier_ablation),
        ("e3", e3_chebyshev),
        ("e4", e4_euler),
        ("e4b", e4b_orientation_ablation),
        ("e5", e5_rounding),
        ("e6", e6_maxflow),
        ("e7", e7_mcf),
        ("e8", e8_comparison),
    ];
    for (key, run) in experiments {
        if want(key) {
            eprintln!("running {key}…");
            println!("{}\n", run());
        }
    }
}
