//! E1 kernel: one Laplacian solve (Theorem 1.1) at eps = 1e-8.

use cc_core::{LaplacianSolver, SolverOptions};
use cc_graph::generators;
use cc_model::Clique;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("laplacian_solve");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let g = generators::random_connected(n, 4 * n, 16, 7);
        let mut clique = Clique::new(n);
        let solver = LaplacianSolver::build(&mut clique, &g, &SolverOptions::default()).unwrap();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(n);
                solver.solve(&mut clique, &b, 1e-8)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
