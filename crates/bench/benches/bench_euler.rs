//! E4 kernel: Eulerian orientation (Theorem 1.4).

use cc_euler::eulerian_orientation;
use cc_graph::generators;
use cc_model::Clique;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("eulerian_orientation");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let g = generators::random_eulerian(n, 3, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(n);
                eulerian_orientation(&mut clique, &g)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
