//! E2 kernel: deterministic sparsifier construction (Theorem 3.3).

use cc_graph::generators;
use cc_model::Clique;
use cc_sparsify::{build_sparsifier, SparsifyParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_sparsifier");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let g = generators::random_connected(n, 4 * n, 16, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(n);
                build_sparsifier(&mut clique, &g, &SparsifyParams::default())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
