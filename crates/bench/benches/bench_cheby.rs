//! E3 kernel: preconditioned Chebyshev iteration (Corollary 2.3).

use cc_linalg::{
    chebyshev_iteration_bound, chebyshev_solve_fixed_into, laplacian_from_edges,
    ChebyshevWorkspace, GroundedCholesky, SolveScratch,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("chebyshev_solve");
    group.sample_size(20);
    let edges: Vec<(usize, usize, f64)> = (0..63).map(|i| (i, i + 1, 1.0)).collect();
    let lap = laplacian_from_edges(64, &edges);
    let chol = GroundedCholesky::new(&lap).unwrap();
    let mut b = vec![0.0; 64];
    b[0] = 1.0;
    b[63] = -1.0;
    // The benchmark measures the iteration, not the allocator: buffers are
    // hoisted and the allocation-free `_into` path (the one the solver
    // pipeline actually runs) does the work.
    let mut x = vec![0.0f64; 64];
    let mut ws = ChebyshevWorkspace::new(64);
    let mut scratch = SolveScratch::default();
    for &kappa in &[4.0f64, 64.0, 512.0] {
        let iters = chebyshev_iteration_bound(kappa, 1e-8);
        group.bench_with_input(
            BenchmarkId::from_parameter(kappa as u64),
            &kappa,
            |bench, &k| {
                bench.iter(|| {
                    chebyshev_solve_fixed_into(
                        |v, out| lap.matvec_into(v, out),
                        |r, out| {
                            chol.solve_into(r, out, &mut scratch);
                            for zi in out.iter_mut() {
                                *zi /= k;
                            }
                        },
                        &b,
                        k,
                        iters,
                        &mut x,
                        &mut ws,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
