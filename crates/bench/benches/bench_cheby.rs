//! E3 kernel: preconditioned Chebyshev iteration (Corollary 2.3).

use cc_linalg::{chebyshev_solve, laplacian_from_edges, GroundedCholesky};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("chebyshev_solve");
    group.sample_size(20);
    let edges: Vec<(usize, usize, f64)> = (0..63).map(|i| (i, i + 1, 1.0)).collect();
    let lap = laplacian_from_edges(64, &edges);
    let chol = GroundedCholesky::new(&lap).unwrap();
    let mut b = vec![0.0; 64];
    b[0] = 1.0;
    b[63] = -1.0;
    for &kappa in &[4.0f64, 64.0, 512.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kappa as u64),
            &kappa,
            |bench, &k| {
                bench.iter(|| {
                    chebyshev_solve(
                        |v| lap.matvec(v),
                        |r| {
                            let mut z = chol.solve(r);
                            for zi in z.iter_mut() {
                                *zi /= k;
                            }
                            z
                        },
                        &b,
                        k,
                        1e-8,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
