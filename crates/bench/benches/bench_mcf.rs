//! E7 kernel: unit-capacity min cost flow (Theorem 1.3).

use cc_graph::generators;
use cc_mcf::{min_cost_flow_ipm, ssp_min_cost_flow, McfOptions};
use cc_model::Clique;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("min_cost_flow");
    group.sample_size(10);
    let (g, sigma) = generators::bipartite_assignment(6, 3, 8, 2);
    group.bench_function("ipm_pipeline", |bench| {
        bench.iter(|| {
            let mut clique = Clique::new(g.n() + 2);
            min_cost_flow_ipm(&mut clique, &g, &sigma, &McfOptions::default()).unwrap()
        })
    });
    group.bench_function("ssp_reference", |bench| {
        bench.iter(|| ssp_min_cost_flow(&g, &sigma).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
