//! E5 kernel: Cohen's flow rounding (Lemma 4.2).

use cc_euler::{round_flow, FlowRoundingOptions};
use cc_graph::generators;
use cc_maxflow::dinic;
use cc_model::Clique;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_rounding");
    group.sample_size(10);
    let g = generators::random_flow_network(48, 120, 4, 9);
    let (opt, _) = dinic(&g, 0, 47);
    for &k in &[8u32, 16] {
        let delta = 1.0 / (1u64 << k) as f64;
        let scale = ((0.75 / delta).round()) * delta;
        let frac: Vec<f64> = opt.iter().map(|&f| f as f64 * scale).collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let mut clique = Clique::new(48);
                round_flow(
                    &mut clique,
                    &g,
                    &frac,
                    0,
                    47,
                    delta,
                    &FlowRoundingOptions::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
