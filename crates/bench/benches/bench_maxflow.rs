//! E6/E8 kernel: exact max flow — IPM pipeline vs the baselines.

use cc_apsp::RoundModel;
use cc_graph::generators;
use cc_maxflow::{max_flow_ford_fulkerson, max_flow_ipm, max_flow_trivial, IpmOptions};
use cc_model::Clique;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_flow");
    group.sample_size(10);
    let g = generators::random_flow_network(16, 48, 8, 2);
    group.bench_function("ipm_pipeline", |bench| {
        bench.iter(|| {
            let mut clique = Clique::new(16);
            max_flow_ipm(&mut clique, &g, 0, 15, &IpmOptions::default())
        })
    });
    group.bench_function("ford_fulkerson", |bench| {
        bench.iter(|| {
            let mut clique = Clique::new(16);
            max_flow_ford_fulkerson(&mut clique, &g, 0, 15, RoundModel::FastMatMul)
        })
    });
    group.bench_function("trivial", |bench| {
        bench.iter(|| {
            let mut clique = Clique::new(16);
            max_flow_trivial(&mut clique, &g, 0, 15)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
