//! Prints the E12 chaos matrix (the table EXPERIMENTS.md records).
fn main() {
    std::panic::set_hook(Box::new(|_| {}));
    let r = cc_conform::run_adversary_suite();
    print!("{}", r.matrix_markdown());
    println!(
        "detected={} tolerated={} corrupted={}",
        r.count(cc_conform::CellOutcome::Detected),
        r.count(cc_conform::CellOutcome::Tolerated),
        r.count(cc_conform::CellOutcome::Corrupted)
    );
}
