//! The fault-injection suite: every pipeline's checker, run under a
//! `FaultComm` armed with its phase-targeted plan from
//! [`cc_conform::driver::fault_plans`], must surface the injected fault
//! as a typed, comm-rooted error — never a panic, never a silently wrong
//! result. Also exercises the seeded-rate, payload-budget, and stacked /
//! tracing-composed plans.

use std::error::Error;

use cc_conform::driver::{
    check_maxflow_ff, check_maxflow_ipm, check_maxflow_trivial, check_mcf, check_orientation,
    check_resistance, check_rounding, check_solver, check_sparsifier, check_sssp, comm_rooted,
    fault_plans, FaultTarget, Tolerances,
};
use cc_conform::{
    arc_corpus, demand_corpus, eulerian_corpus, flow_corpus, undirected_corpus, FaultComm,
    FaultPlan,
};
use cc_model::{Clique, TracingComm};

/// Runs `target`'s checker on its first corpus instance under a
/// `FaultComm` armed with `plan`; returns the checker outcome (erased)
/// and the number of faults the wrapper injected.
fn run_target(target: FaultTarget, plan: FaultPlan) -> (Result<u64, Box<dyn Error>>, u64) {
    let tol = Tolerances::default();
    match target {
        FaultTarget::Solver => {
            let case = &undirected_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_solver(&mut comm, case, 1e-6, &tol).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Resistance => {
            let case = &undirected_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_resistance(&mut comm, case, &tol).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Sparsifier => {
            let case = &undirected_corpus(0)[2];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_sparsifier(&mut comm, case, &tol).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Orientation => {
            let case = &eulerian_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_orientation(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Rounding => {
            let case = &flow_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_rounding(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::MaxFlow => {
            let case = &flow_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_maxflow_ipm(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::FordFulkerson => {
            let case = &flow_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_maxflow_ff(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::TrivialFlow => {
            let case = &flow_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
            let r = check_maxflow_trivial(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Mcf => {
            let case = &demand_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.graph.n() + 2), plan);
            let r = check_mcf(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
        FaultTarget::Sssp => {
            let case = &arc_corpus(0)[0];
            let mut comm = FaultComm::new(Clique::new(case.n), plan);
            let r = check_sssp(&mut comm, case).map_err(|e| Box::new(e) as _);
            (r, comm.injected_faults())
        }
    }
}

#[test]
fn armed_plans_fail_with_comm_rooted_errors_and_count_injections() {
    let plans = fault_plans();
    assert_eq!(plans.len(), 10, "one plan per fault target");
    for (target, plan) in plans {
        let (result, injected) = run_target(target, plan);
        match result {
            Ok(_) => panic!("{target:?}: armed plan must surface a typed error, got Ok"),
            Err(e) => assert!(
                comm_rooted(e.as_ref()),
                "{target:?}: error not comm-rooted: {e}"
            ),
        }
        assert!(injected > 0, "{target:?}: no fault was injected");
    }
}

#[test]
fn seeded_random_faults_are_deterministic_per_seed() {
    let rate_plan = |seed| FaultPlan {
        seed,
        failure_rate: 0.4,
        ..FaultPlan::default()
    };
    let (r1, i1) = run_target(FaultTarget::Sssp, rate_plan(42));
    let (r2, i2) = run_target(FaultTarget::Sssp, rate_plan(42));
    assert_eq!(r1.is_err(), r2.is_err(), "same seed, same outcome");
    assert_eq!(i1, i2, "same seed, same injection count");
    if let Err(e) = &r1 {
        assert!(comm_rooted(e.as_ref()), "rate fault not comm-rooted: {e}");
    }

    // A certain fault rate always errors, on every pipeline it reaches.
    let certain = FaultPlan {
        seed: 7,
        failure_rate: 1.0,
        ..FaultPlan::default()
    };
    let (r, injected) = run_target(FaultTarget::Orientation, certain);
    assert!(r.is_err(), "failure_rate = 1 must fail the first primitive");
    assert!(injected > 0);
}

#[test]
#[should_panic(expected = "fault plan violated")]
fn oversized_payloads_panic_under_a_word_budget() {
    // Orientation routes multi-word messages; a zero-word budget is a
    // model violation and must panic at the send site (assertion, not a
    // typed error).
    let plan = FaultPlan {
        max_message_words: Some(0),
        ..FaultPlan::default()
    };
    let case = &eulerian_corpus(0)[0];
    let mut comm = FaultComm::new(Clique::new(case.graph.n()), plan);
    let _ = check_orientation(&mut comm, case);
}

#[test]
fn stacked_plans_compose_with_tracing() {
    // Benign inner wrapper, armed outer wrapper, tracing substrate: the
    // injected fault still surfaces as the pipeline's typed error and
    // the outer wrapper alone accounts for it.
    let armed = FaultPlan {
        seed: 11,
        fail_phases: vec!["eulerian_orientation".into()],
        ..FaultPlan::default()
    };
    let case = &eulerian_corpus(0)[1];
    let n = case.graph.n();
    let mut comm = FaultComm::new(
        FaultComm::new(TracingComm::new(Clique::new(n)), FaultPlan::default()),
        armed,
    );
    let err = check_orientation(&mut comm, case).expect_err("armed outer plan must fail");
    assert!(comm_rooted(&err), "stacked fault not comm-rooted: {err}");
    assert!(comm.injected_faults() > 0);
    assert_eq!(
        comm.inner().injected_faults(),
        0,
        "benign layer stays quiet"
    );
}
