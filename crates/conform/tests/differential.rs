//! The differential conformance suite: every public entry point against
//! its sequential oracle, over the full seeded corpus, on the plain
//! simulator. `CONFORM_CASES=N` appends N seeded random instances per
//! corpus for soak runs.

use cc_conform::driver::{
    check_apsp, check_maxflow_ff, check_maxflow_ipm, check_maxflow_trivial, check_mcf,
    check_orientation, check_resistance, check_rounding, check_solver, check_sparsifier,
    check_sssp, Tolerances,
};
use cc_conform::{
    arc_corpus, case_budget, demand_corpus, eulerian_corpus, flow_corpus, undirected_corpus,
};
use cc_model::Clique;

#[test]
fn solver_conforms_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_solver(&mut clique, &case, 1e-6, &tol).unwrap_or_else(|e| {
            panic!("{}: unexpected solver failure: {e}", case.id);
        });
    }
}

#[test]
fn effective_resistance_conforms_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_resistance(&mut clique, &case, &tol).unwrap_or_else(|e| {
            panic!("{}: unexpected resistance failure: {e}", case.id);
        });
    }
}

#[test]
fn sparsifier_conforms_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_sparsifier(&mut clique, &case, &tol).unwrap_or_else(|e| {
            panic!("{}: unexpected sparsifier failure: {e}", case.id);
        });
    }
}

#[test]
fn orientation_conforms_on_corpus() {
    for case in eulerian_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_orientation(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected orientation failure: {e}", case.id);
        });
    }
}

#[test]
fn flow_rounding_conforms_on_corpus() {
    for case in flow_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_rounding(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected rounding failure: {e}", case.id);
        });
    }
}

#[test]
fn maxflow_ipm_conforms_on_corpus() {
    for case in flow_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_maxflow_ipm(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected IPM failure: {e}", case.id);
        });
    }
}

#[test]
fn maxflow_baselines_conform_on_corpus() {
    for case in flow_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n());
        check_maxflow_ff(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected FF failure: {e}", case.id);
        });
        let mut clique = Clique::new(case.graph.n());
        check_maxflow_trivial(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected trivial-baseline failure: {e}", case.id);
        });
    }
}

#[test]
fn mcf_conforms_on_corpus() {
    for case in demand_corpus(case_budget()) {
        let mut clique = Clique::new(case.graph.n() + 2);
        check_mcf(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected MCF failure: {e}", case.id);
        });
    }
}

#[test]
fn shortest_paths_conform_on_corpus() {
    let tol = Tolerances::default();
    for case in arc_corpus(case_budget()) {
        let mut clique = Clique::new(case.n);
        check_sssp(&mut clique, &case).unwrap_or_else(|e| {
            panic!("{}: unexpected SSSP failure: {e}", case.id);
        });
        let mut clique = Clique::new(case.n);
        check_apsp(&mut clique, &case, &tol);
    }
}
