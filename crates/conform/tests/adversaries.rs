//! The chaos suite: the full (pipeline × adversary-strategy) matrix,
//! over the plain simulator and the concurrent sharded runtime, with the
//! E12 invariant — omission adversaries (silent, crash–recover) never
//! produce a silently wrong answer — and cross-substrate report
//! identity.

use cc_conform::{run_adversary_suite, run_adversary_suite_on, CellOutcome, FaultTarget};
use cc_model::{BroadcastComm, Clique, ThreadedComm};

/// Corrupted cells are part of the expected output of the corrupt
/// column, and each one panics inside `catch_unwind` — silence the
/// default hook so the suite's logs stay readable.
fn quiet_panics() {
    std::panic::set_hook(Box::new(|_| {}));
}

#[test]
fn chaos_matrix_holds_the_detectability_invariant() {
    quiet_panics();
    let report = run_adversary_suite();
    // 10 pipelines × (3 base strategies + soak budget).
    let slate = cc_conform::adversary_schedules().len();
    assert_eq!(report.cells.len(), 10 * slate);

    // The E12 invariant: no omission schedule ever corrupts silently.
    report.assert_detectable_strategies_never_corrupt();

    for cell in &report.cells {
        match cell.outcome {
            CellOutcome::Detected => {
                // Omission adversaries surface as comm-rooted typed
                // errors; a corrupt node's forgery may also trip typed
                // numerical errors, which need not be comm-rooted.
                if cell.detectable {
                    assert!(
                        cell.comm_rooted,
                        "{:?}/{}: omission not comm-rooted: {}",
                        cell.pipeline, cell.strategy, cell.detail
                    );
                    assert!(
                        cell.events > 0,
                        "{:?}/{}: detection without a recorded event",
                        cell.pipeline,
                        cell.strategy
                    );
                }
            }
            CellOutcome::Tolerated => {
                // Fine: the adversary never had to act (e.g. a crash
                // window that closed before the node's first send), or
                // the forgery was absorbed within tolerances.
            }
            CellOutcome::Corrupted => {
                assert!(
                    !cell.detectable,
                    "corrupted cell under an omission schedule: {cell:?}"
                );
            }
        }
    }

    // A permanently silent node must be detected by every pipeline —
    // these algorithms are all-to-all, so node 1 always owes a message.
    for cell in report.cells.iter().filter(|c| c.strategy == "silent") {
        assert_eq!(
            cell.outcome,
            CellOutcome::Detected,
            "{:?}: a silent node went unnoticed: {}",
            cell.pipeline,
            cell.detail
        );
    }

    // The matrix renders deterministically with every pipeline row.
    let matrix = report.matrix_markdown();
    assert_eq!(matrix, report.matrix_markdown());
    for p in [FaultTarget::Solver, FaultTarget::Mcf, FaultTarget::Sssp] {
        assert!(matrix.contains(&format!("{p:?}")), "{matrix}");
    }
}

/// The broadcast row of the chaos matrix: the full (pipeline ×
/// strategy) slate over the measured Broadcast Congested Clique. The
/// E12 invariant — omission adversaries never corrupt silently — must
/// hold under broadcast costs too, and the report must be bitwise
/// identical over `Clique` and `ThreadedComm` substrates.
#[test]
fn chaos_matrix_holds_over_broadcast_comm() {
    quiet_panics();
    let report = run_adversary_suite_on(|n| BroadcastComm::measured(Clique::new(n)));
    let slate = cc_conform::adversary_schedules().len();
    assert_eq!(report.cells.len(), 10 * slate);
    report.assert_detectable_strategies_never_corrupt();
    for cell in report.cells.iter().filter(|c| c.strategy == "silent") {
        assert_eq!(
            cell.outcome,
            CellOutcome::Detected,
            "{:?}: a silent node went unnoticed on the broadcast clique: {}",
            cell.pipeline,
            cell.detail
        );
    }
    for workers in [1usize, 2, 8] {
        let got = run_adversary_suite_on(|n| {
            BroadcastComm::measured(ThreadedComm::with_workers(n, workers))
        });
        assert_eq!(
            report, got,
            "broadcast chaos report diverged over ThreadedComm at {workers} workers"
        );
    }
}

#[test]
fn chaos_report_is_identical_over_threaded_workers() {
    quiet_panics();
    let base = run_adversary_suite();
    for workers in [1usize, 2, 8] {
        let got = run_adversary_suite_on(|n| ThreadedComm::with_workers(n, workers));
        assert_eq!(
            base, got,
            "chaos report diverged over ThreadedComm at {workers} workers"
        );
    }
}
