//! ThreadedComm conformance: every differential checker runs the full
//! corpus over the concurrent sharded runtime at worker counts 1, 2,
//! and 8, and every run must charge rounds *bitwise identical* to the
//! sequential `Clique` — the ledger phase map and report string, not
//! just the totals. `CONFORM_CASES=N` appends N seeded random instances
//! per corpus for soak runs, exactly as in the sequential suite.

use cc_conform::driver::{
    check_apsp, check_maxflow_ff, check_maxflow_ipm, check_maxflow_trivial, check_mcf,
    check_orientation, check_resistance, check_rounding, check_solver, check_sparsifier,
    check_sssp, Tolerances,
};
use cc_conform::{
    arc_corpus, case_budget, demand_corpus, eulerian_corpus, flow_corpus, undirected_corpus,
};
use cc_model::{Clique, Communicator, ThreadedComm};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// For one corpus case: run `$check` on a fresh `Clique` and on a fresh
/// `ThreadedComm` per worker count, asserting identical outcomes and
/// bitwise-identical ledgers.
macro_rules! round_identical {
    ($id:expr, $n:expr, |$comm:ident| $check:expr) => {{
        let mut seq = Clique::new($n);
        let want = {
            let $comm = &mut seq;
            $check
        };
        for workers in WORKER_COUNTS {
            let mut par = ThreadedComm::with_workers($n, workers);
            let got = {
                let $comm = &mut par;
                $check
            };
            assert_eq!(want, got, "{}: outcome at workers={workers}", $id);
            assert_eq!(
                seq.ledger().phases(),
                par.ledger().phases(),
                "{}: ledger phase map at workers={workers}",
                $id
            );
            assert_eq!(
                seq.ledger().report(),
                par.ledger().report(),
                "{}: ledger report at workers={workers}",
                $id
            );
        }
    }};
}

#[test]
fn solver_round_identity_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_solver(
            comm, &case, 1e-6, &tol
        )
        .unwrap());
    }
}

#[test]
fn resistance_round_identity_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_resistance(
            comm, &case, &tol
        )
        .unwrap());
    }
}

#[test]
fn sparsifier_round_identity_on_corpus() {
    let tol = Tolerances::default();
    for case in undirected_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_sparsifier(
            comm, &case, &tol
        )
        .unwrap());
    }
}

#[test]
fn orientation_round_identity_on_corpus() {
    for case in eulerian_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_orientation(
            comm, &case
        )
        .unwrap());
    }
}

#[test]
fn flow_rounding_round_identity_on_corpus() {
    for case in flow_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_rounding(comm, &case)
            .unwrap());
    }
}

#[test]
fn maxflow_round_identity_on_corpus() {
    for case in flow_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n(), |comm| check_maxflow_ipm(
            comm, &case
        )
        .unwrap());
        round_identical!(case.id, case.graph.n(), |comm| check_maxflow_ff(
            comm, &case
        )
        .unwrap());
        round_identical!(case.id, case.graph.n(), |comm| check_maxflow_trivial(
            comm, &case
        )
        .unwrap());
    }
}

#[test]
fn mcf_round_identity_on_corpus() {
    for case in demand_corpus(case_budget()) {
        round_identical!(case.id, case.graph.n() + 2, |comm| check_mcf(comm, &case)
            .unwrap());
    }
}

#[test]
fn shortest_paths_round_identity_on_corpus() {
    let tol = Tolerances::default();
    for case in arc_corpus(case_budget()) {
        round_identical!(case.id, case.n, |comm| check_sssp(comm, &case).unwrap());
        round_identical!(case.id, case.n, |comm| check_apsp(comm, &case, &tol));
    }
}
