//! Cross-transport conformance: the same checker run under the plain
//! simulator, the tracing wrapper, and benign (empty-plan) fault
//! wrappers — stacked — must charge identical rounds, and repeated runs
//! must be bitwise deterministic. Also asserts the theorem round shapes
//! through the shared `shapes` helpers.

use cc_conform::driver::{check_maxflow_ipm, check_orientation, check_solver, Tolerances};
use cc_conform::{eulerian_corpus, flow_corpus, shapes, undirected_corpus, FaultComm, FaultPlan};
use cc_model::{Clique, TracingComm};

#[test]
fn solver_rounds_identical_across_transports() {
    let tol = Tolerances::default();
    for case in undirected_corpus(0).into_iter().take(3) {
        let n = case.graph.n();
        let mut plain = Clique::new(n);
        let plain_rounds = check_solver(&mut plain, &case, 1e-6, &tol).unwrap();

        let mut traced = TracingComm::new(Clique::new(n));
        let traced_rounds = check_solver(&mut traced, &case, 1e-6, &tol).unwrap();
        assert_eq!(plain_rounds, traced_rounds, "{}: tracing", case.id);

        // Stacked benign fault wrappers: two layers, no knobs armed.
        let mut faulty = FaultComm::new(
            FaultComm::new(Clique::new(n), FaultPlan::default()),
            FaultPlan::default(),
        );
        let faulty_rounds = check_solver(&mut faulty, &case, 1e-6, &tol).unwrap();
        assert_eq!(plain_rounds, faulty_rounds, "{}: stacked fault", case.id);
        assert_eq!(faulty.injected_faults(), 0, "{}", case.id);
    }
}

#[test]
fn orientation_rounds_identical_across_transports_and_within_shape() {
    for case in eulerian_corpus(0) {
        let n = case.graph.n();
        let m = case.graph.m();
        let mut plain = Clique::new(n);
        let plain_rounds = check_orientation(&mut plain, &case).unwrap();

        let mut traced = TracingComm::new(Clique::new(n));
        let traced_rounds = check_orientation(&mut traced, &case).unwrap();
        assert_eq!(plain_rounds, traced_rounds, "{}", case.id);

        // Theorem 1.4 shape, via the shared helper.
        assert!(
            shapes::euler_rounds_per_log(plain_rounds, m) < shapes::EULER_PER_LOG_BOUND,
            "{}: orientation round shape",
            case.id
        );
        shapes::assert_phase_partition(plain.ledger());
    }
}

#[test]
fn maxflow_runs_are_deterministic_across_transports() {
    let case = &flow_corpus(0)[0];
    let n = case.graph.n();
    let mut plain = Clique::new(n);
    let r1 = check_maxflow_ipm(&mut plain, case).unwrap();
    let mut plain2 = Clique::new(n);
    let r2 = check_maxflow_ipm(&mut plain2, case).unwrap();
    assert_eq!(r1, r2, "repeat determinism");

    let mut traced = TracingComm::new(Clique::new(n));
    let r3 = check_maxflow_ipm(&mut traced, case).unwrap();
    assert_eq!(r1, r3, "tracing identity");

    let mut faulty = FaultComm::new(Clique::new(n), FaultPlan::default());
    let r4 = check_maxflow_ipm(&mut faulty, case).unwrap();
    assert_eq!(r1, r4, "benign fault identity");

    shapes::assert_phase_partition(plain.ledger());
}
