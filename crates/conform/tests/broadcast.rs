//! BroadcastComm conformance: the full differential corpus replayed
//! over the Broadcast Congested Clique transport.
//!
//! * **Measured mode** runs every checker — all ten pipelines — with
//!   sequential-oracle agreement (a checker panics on any mismatch, so
//!   a clean pass is zero oracle mismatches), and each run over
//!   `BroadcastComm<Clique>` must be bitwise identical — outcome and
//!   ledger — to `BroadcastComm<ThreadedComm>` at workers 1, 2, and 8.
//! * **Strict mode** runs the broadcast-expressible pipelines
//!   (sparsifier → solver → resistance, the Forster–de Vos arXiv:2205.12059
//!   surface) unchanged, and rejects the unicast-dependent ones
//!   (Eulerian orientation, flow rounding) with a typed, comm-rooted
//!   `UnicastInBroadcastModel` error — the paper's §1.1 hardness remark
//!   as a test.
//! * `CONFORM_BROADCAST_CASES=N` appends N seeded random instances per
//!   corpus for soak runs, mirroring `CONFORM_CASES`.

use cc_conform::driver::{
    check_apsp, check_maxflow_ff, check_maxflow_ipm, check_maxflow_trivial, check_mcf,
    check_orientation, check_resistance, check_rounding, check_solver, check_sparsifier,
    check_sssp, comm_rooted, Tolerances,
};
use cc_conform::{
    arc_corpus, broadcast_case_budget, demand_corpus, eulerian_corpus, flow_corpus,
    undirected_corpus,
};
use cc_model::{BroadcastComm, Clique, Communicator, ModelError, ThreadedComm};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// For one corpus case: run `$check` on a fresh measured
/// `BroadcastComm<Clique>` and on a fresh measured
/// `BroadcastComm<ThreadedComm>` per worker count, asserting identical
/// outcomes and bitwise-identical ledgers.
macro_rules! broadcast_identical {
    ($id:expr, $n:expr, |$comm:ident| $check:expr) => {{
        let mut seq = BroadcastComm::measured(Clique::new($n));
        let want = {
            let $comm = &mut seq;
            $check
        };
        for workers in WORKER_COUNTS {
            let mut par = BroadcastComm::measured(ThreadedComm::with_workers($n, workers));
            let got = {
                let $comm = &mut par;
                $check
            };
            assert_eq!(want, got, "{}: outcome at workers={workers}", $id);
            assert_eq!(
                seq.ledger().phases(),
                par.ledger().phases(),
                "{}: ledger phase map at workers={workers}",
                $id
            );
            assert_eq!(
                seq.ledger().report(),
                par.ledger().report(),
                "{}: ledger report at workers={workers}",
                $id
            );
        }
    }};
}

#[test]
fn solver_conformance_over_broadcast() {
    let tol = Tolerances::default();
    for case in undirected_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_solver(
            comm, &case, 1e-6, &tol
        )
        .unwrap());
    }
}

#[test]
fn resistance_conformance_over_broadcast() {
    let tol = Tolerances::default();
    for case in undirected_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_resistance(
            comm, &case, &tol
        )
        .unwrap());
    }
}

#[test]
fn sparsifier_conformance_over_broadcast() {
    let tol = Tolerances::default();
    for case in undirected_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_sparsifier(
            comm, &case, &tol
        )
        .unwrap());
    }
}

#[test]
fn orientation_conformance_over_broadcast() {
    for case in eulerian_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_orientation(
            comm, &case
        )
        .unwrap());
    }
}

#[test]
fn flow_rounding_conformance_over_broadcast() {
    for case in flow_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_rounding(comm, &case)
            .unwrap());
    }
}

#[test]
fn maxflow_conformance_over_broadcast() {
    for case in flow_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n(), |comm| check_maxflow_ipm(
            comm, &case
        )
        .unwrap());
        broadcast_identical!(case.id, case.graph.n(), |comm| check_maxflow_ff(
            comm, &case
        )
        .unwrap());
        broadcast_identical!(case.id, case.graph.n(), |comm| check_maxflow_trivial(
            comm, &case
        )
        .unwrap());
    }
}

#[test]
fn mcf_conformance_over_broadcast() {
    for case in demand_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.graph.n() + 2, |comm| check_mcf(comm, &case)
            .unwrap());
    }
}

#[test]
fn shortest_paths_conformance_over_broadcast() {
    let tol = Tolerances::default();
    for case in arc_corpus(broadcast_case_budget()) {
        broadcast_identical!(case.id, case.n, |comm| check_sssp(comm, &case).unwrap());
        broadcast_identical!(case.id, case.n, |comm| check_apsp(comm, &case, &tol));
    }
}

/// The Laplacian surface of the companion paper runs under the *strict*
/// broadcast clique — no unicast primitive is ever reached — and stays
/// bitwise identical to measured mode.
#[test]
fn laplacian_pipelines_run_under_strict_broadcast() {
    let tol = Tolerances::default();
    for case in undirected_corpus(broadcast_case_budget()) {
        let n = case.graph.n();
        let mut strict = BroadcastComm::strict(Clique::new(n));
        let mut measured = BroadcastComm::measured(Clique::new(n));
        let a = check_solver(&mut strict, &case, 1e-6, &tol).unwrap();
        let b = check_solver(&mut measured, &case, 1e-6, &tol).unwrap();
        assert_eq!(a, b, "{}: solver rounds strict vs measured", case.id);
        let a = check_resistance(&mut strict, &case, &tol).unwrap();
        let b = check_resistance(&mut measured, &case, &tol).unwrap();
        assert_eq!(a, b, "{}: resistance rounds strict vs measured", case.id);
        let a = check_sparsifier(&mut strict, &case, &tol).unwrap();
        let b = check_sparsifier(&mut measured, &case, &tol).unwrap();
        assert_eq!(a, b, "{}: sparsifier rounds strict vs measured", case.id);
        assert_eq!(
            strict.ledger().phases(),
            measured.ledger().phases(),
            "{}: strict and measured ledgers agree on the broadcast surface",
            case.id
        );
    }
}

/// Eulerian orientation needs point-to-point routing; under the strict
/// broadcast clique it must fail with the typed, comm-rooted
/// `UnicastInBroadcastModel` error — never a panic, never a silently
/// wrong orientation.
#[test]
fn orientation_is_typed_rejection_under_strict_broadcast() {
    let mut rejected = 0;
    for case in eulerian_corpus(0) {
        let mut strict = BroadcastComm::strict(Clique::new(case.graph.n()));
        let err = check_orientation(&mut strict, &case).unwrap_err();
        assert!(
            comm_rooted(&err),
            "{}: rejection must be comm-rooted, got {err}",
            case.id
        );
        let chain = format!("{err}");
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(&err);
        let mut found = false;
        while let Some(s) = cur {
            if let Some(m) = s.downcast_ref::<ModelError>() {
                assert!(
                    matches!(m, ModelError::UnicastInBroadcastModel { .. }),
                    "{}: unexpected model error {m:?}",
                    case.id
                );
                found = true;
            }
            cur = s.source();
        }
        assert!(found, "{}: no ModelError in chain of {chain}", case.id);
        rejected += 1;
    }
    assert!(rejected >= 5, "the whole Eulerian corpus must be exercised");
}
