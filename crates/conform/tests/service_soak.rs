//! Service-layer soak: a seeded randomized request stream through one
//! long-lived engine, spot-checked against the sequential oracles.
//!
//! `SERVICE_SOAK_REQUESTS=N` scales the stream (CI runs ≥ 10 000); the
//! default keeps the tier-1 run short. `SERVICE_SOAK_ORACLE_EVERY=K`
//! tunes the sampled-oracle density.

use cc_conform::{run_service_soak, run_service_soak_on, SoakConfig};
use cc_linalg::par::with_threads;
use cc_model::{BroadcastComm, Clique, ThreadedComm};

fn env_or(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn soak_config() -> SoakConfig {
    SoakConfig {
        requests: env_or("SERVICE_SOAK_REQUESTS", 120),
        oracle_every: env_or("SERVICE_SOAK_ORACLE_EVERY", 5),
        ..SoakConfig::default()
    }
}

#[test]
fn seeded_soak_has_zero_oracle_mismatches() {
    let report = run_service_soak(&soak_config());
    println!(
        "soak: {} requests in {} batches, {} oracle checks, \
         {} template cache hits, {} builds, {} rounds ({} charged)",
        report.requests,
        report.batches,
        report.oracle_checks,
        report.template_cache_hits,
        report.builds,
        report.total_rounds,
        report.charged_rounds,
    );
    assert!(report.oracle_checks > 0, "soak must sample the oracle");
    assert!(
        report.mismatches.is_empty(),
        "oracle mismatches: {:#?}",
        report.mismatches
    );
    assert!(
        report.template_cache_hits > 0,
        "the stream must observe cross-request cache reuse"
    );
}

#[test]
fn soak_stream_is_bitwise_identical_across_thread_counts() {
    // Skip the oracle inside the threaded replays: conformance is the
    // other test's job, identity of the response fingerprints is this
    // one's.
    let config = SoakConfig {
        oracle_every: 0,
        ..soak_config()
    };
    let base = with_threads(1, || run_service_soak(&config));
    for threads in [2, 8] {
        let got = with_threads(threads, || run_service_soak(&config));
        assert_eq!(
            base, got,
            "soak report diverged at {threads} worker threads"
        );
    }
}

#[test]
fn broadcast_soak_has_zero_oracle_mismatches() {
    // The registry leg of the broadcast model: the whole engine —
    // registration, sessions, batch admission, caching — over a measured
    // `BroadcastComm`, spot-checked against the same sequential oracles.
    let report = run_service_soak_on(&soak_config(), |n| BroadcastComm::measured(Clique::new(n)));
    assert!(report.oracle_checks > 0, "soak must sample the oracle");
    assert!(
        report.mismatches.is_empty(),
        "oracle mismatches over BroadcastComm: {:#?}",
        report.mismatches
    );
}

#[test]
fn broadcast_soak_is_bitwise_identical_over_threaded_comm() {
    let config = SoakConfig {
        oracle_every: 0,
        ..soak_config()
    };
    let base = run_service_soak_on(&config, |n| BroadcastComm::measured(Clique::new(n)));
    for workers in [1usize, 2, 8] {
        let got = run_service_soak_on(&config, |n| {
            BroadcastComm::measured(ThreadedComm::with_workers(n, workers))
        });
        assert_eq!(
            base, got,
            "broadcast soak report diverged over ThreadedComm at {workers} workers"
        );
    }
}

#[test]
fn soak_stream_is_bitwise_identical_over_threaded_comm() {
    // The whole service stack — engine, sessions, batch admission —
    // over the concurrent sharded transport must reproduce the
    // sequential SoakReport bit for bit, at every worker count.
    let config = SoakConfig {
        oracle_every: 0,
        ..soak_config()
    };
    let base = run_service_soak(&config);
    for workers in [1usize, 2, 8] {
        let got = run_service_soak_on(&config, |n| ThreadedComm::with_workers(n, workers));
        assert_eq!(
            base, got,
            "soak report diverged over ThreadedComm at {workers} workers"
        );
    }
}
