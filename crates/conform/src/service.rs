//! Seeded soak driver for the `cc-service` engine layer.
//!
//! [`run_service_soak`] registers the whole instance corpus in one
//! long-lived [`FlowEngine`], replays a SplitMix64-seeded stream of
//! randomized typed requests against it — mixed kinds, mixed graphs,
//! randomized batch widths so the Laplacian batch-admission path is
//! exercised — and spot-checks a sampled fraction of the responses
//! against the sequential [`crate::oracle`]s. The driver is fully
//! deterministic: same [`SoakConfig`], same [`SoakReport`] (including
//! the response fingerprint) on every run and every thread count, which
//! is exactly what the CI soak job and the bench snapshot pin.

use std::collections::BTreeMap;

use cc_graph::DiGraph;
use cc_model::{Clique, Communicator};
use cc_service::{FlowEngine, GraphSpec, Request, Response};

use crate::corpus;
use crate::oracle;

/// Parameters of one soak run. Everything is seeded — two runs with
/// equal configs produce equal [`SoakReport`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Seed of the request stream.
    pub seed: u64,
    /// Number of requests to replay.
    pub requests: usize,
    /// Check every `oracle_every`-th request against the sequential
    /// oracle (`1` = check everything, `0` = check nothing).
    pub oracle_every: usize,
    /// Extra seeded corpus instances per family (the `extra` argument
    /// of the [`crate::corpus`] generators).
    pub extra_cases: usize,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            seed: 0x5eed_cafe,
            requests: 200,
            oracle_every: 5,
            extra_cases: 0,
        }
    }
}

/// Deterministic outcome of a soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Requests replayed.
    pub requests: usize,
    /// `submit_batch` calls issued.
    pub batches: usize,
    /// Requests that were admitted into a multi-RHS solve group
    /// (`batched_with > 1`).
    pub batched_requests: usize,
    /// Responses checked against a sequential oracle.
    pub oracle_checks: usize,
    /// Oracle disagreements (descriptions; empty on a clean run).
    pub mismatches: Vec<String>,
    /// Template-cache hits summed over all per-request stats.
    pub template_cache_hits: u64,
    /// Requests that paid a per-graph build (solver factorization or
    /// APSP matrix).
    pub builds: usize,
    /// Total simulated rounds the stream cost.
    pub total_rounds: u64,
    /// Rounds charged under the theorem-shape accounting.
    pub charged_rounds: u64,
    /// FNV-1a fingerprint of every response payload, in submission
    /// order. Bitwise determinism across runs and thread counts is
    /// asserted by comparing fingerprints.
    pub fingerprint: u64,
    /// Requests per kind, in the order: Laplacian solve, effective
    /// resistance, max flow, min-cost flow, SSSP, APSP.
    pub counts_by_kind: [usize; 6],
}

/// What the oracle needs to recheck responses against one registered
/// graph.
enum OracleData {
    Laplacian {
        n: usize,
        edges: Vec<(usize, usize, f64)>,
    },
    Flow {
        graph: DiGraph,
    },
    Demand {
        graph: DiGraph,
        sigma: Vec<i64>,
    },
    Arcs {
        n: usize,
        arcs: Vec<(usize, usize, i64)>,
    },
}

/// A SplitMix64 stream — the same generator the oracle probes use.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    /// Uniform in `[-0.5, 0.5)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }
}

/// FNV-1a over one 64-bit word (little-endian bytes).
fn fnv_word(mut h: u64, w: u64) -> u64 {
    for b in w.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn fnv_opt(h: u64, v: Option<i64>) -> u64 {
    match v {
        Some(d) => fnv_word(fnv_word(h, 1), d as u64),
        None => fnv_word(h, 0),
    }
}

/// Folds a response into the stream fingerprint (floats by bits).
fn fingerprint_response(mut h: u64, resp: &Response) -> u64 {
    match resp {
        Response::Potentials { x, iterations } => {
            h = fnv_word(h, 1);
            h = fnv_word(h, *iterations as u64);
            x.iter().fold(h, |h, v| fnv_word(h, v.to_bits()))
        }
        Response::Resistance { value, iterations } => {
            h = fnv_word(h, 2);
            h = fnv_word(h, *iterations as u64);
            fnv_word(h, value.to_bits())
        }
        Response::MaxFlow { flow, value } => {
            h = fnv_word(h, 3);
            h = fnv_word(h, *value as u64);
            flow.iter().fold(h, |h, f| fnv_word(h, *f as u64))
        }
        Response::MinCostFlow { flow, cost } => {
            h = fnv_word(h, 4);
            h = fnv_word(h, *cost as u64);
            flow.iter().fold(h, |h, f| fnv_word(h, *f as u64))
        }
        Response::Sssp {
            dist,
            negative_cycle,
        } => {
            h = fnv_word(h, 5);
            h = fnv_word(h, *negative_cycle as u64);
            dist.iter().fold(h, |h, d| fnv_opt(h, *d))
        }
        Response::Apsp { dist } => {
            h = fnv_word(h, 6);
            dist.iter()
                .fold(h, |h, row| row.iter().fold(h, |h, d| fnv_opt(h, *d)))
        }
    }
}

/// Registers the full corpus in one engine; returns the engine plus the
/// oracle-side view of every graph, keyed by registered name.
fn build_engine<C: Communicator>(
    extra: usize,
    make: impl FnOnce(usize) -> C,
) -> (FlowEngine<C>, BTreeMap<String, OracleData>) {
    let undirected = corpus::undirected_corpus(extra);
    let flows = corpus::flow_corpus(extra);
    let demands = corpus::demand_corpus(extra);
    let arcs = corpus::arc_corpus(extra);

    // Two extra clique nodes beyond the largest graph: the min-cost-flow
    // rounding stage needs a super source and sink.
    let max_n = undirected
        .iter()
        .map(|c| c.graph.n())
        .chain(flows.iter().map(|c| c.graph.n()))
        .chain(demands.iter().map(|c| c.graph.n()))
        .chain(arcs.iter().map(|c| c.n))
        .max()
        .expect("non-empty corpus");
    let mut engine = FlowEngine::new(make(max_n + 2));

    let mut oracles = BTreeMap::new();
    for case in undirected {
        let name = format!("u/{}", case.id);
        oracles.insert(
            name.clone(),
            OracleData::Laplacian {
                n: case.graph.n(),
                edges: case.graph.edge_triples(),
            },
        );
        engine.register(&name, GraphSpec::Undirected(case.graph));
    }
    for case in flows {
        let name = format!("f/{}", case.id);
        oracles.insert(
            name.clone(),
            OracleData::Flow {
                graph: case.graph.clone(),
            },
        );
        engine.register(&name, GraphSpec::Directed(case.graph));
    }
    for case in demands {
        let name = format!("d/{}", case.id);
        oracles.insert(
            name.clone(),
            OracleData::Demand {
                graph: case.graph.clone(),
                sigma: case.sigma,
            },
        );
        engine.register(&name, GraphSpec::Directed(case.graph));
    }
    for case in arcs {
        let name = format!("a/{}", case.id);
        oracles.insert(
            name.clone(),
            OracleData::Arcs {
                n: case.n,
                arcs: case.arcs.clone(),
            },
        );
        engine.register(
            &name,
            GraphSpec::Arcs {
                n: case.n,
                arcs: case.arcs,
            },
        );
    }
    (engine, oracles)
}

/// Synthesizes the next request. The kind mix is weighted toward the
/// cheap reentrant paths (solves, resistances, memoized APSP) with a
/// steady trickle of interior-point flow requests, so long streams stay
/// inside a CI time box while still hitting every pipeline.
fn next_request(
    rng: &mut SplitMix64,
    oracles: &BTreeMap<String, OracleData>,
    names: &Names,
    counts: &mut [usize; 6],
) -> Request {
    match rng.below(16) {
        // 6/16 Laplacian solves.
        0..=5 => {
            counts[0] += 1;
            let name = &names.laplacian[rng.below(names.laplacian.len())];
            let n = match &oracles[name] {
                OracleData::Laplacian { n, .. } => *n,
                _ => unreachable!(),
            };
            let mut b: Vec<f64> = (0..n).map(|_| rng.unit()).collect();
            let mean = b.iter().sum::<f64>() / n as f64;
            for v in &mut b {
                *v -= mean;
            }
            // Two eps tiers give batch admission two distinct group keys.
            let eps = if rng.below(2) == 0 { 1e-8 } else { 1e-6 };
            Request::LaplacianSolve {
                graph: name.clone(),
                b,
                eps,
            }
        }
        // 3/16 effective resistances.
        6..=8 => {
            counts[1] += 1;
            let name = &names.laplacian[rng.below(names.laplacian.len())];
            let n = match &oracles[name] {
                OracleData::Laplacian { n, .. } => *n,
                _ => unreachable!(),
            };
            let s = rng.below(n);
            let t = (s + 1 + rng.below(n - 1)) % n;
            Request::EffectiveResistance {
                graph: name.clone(),
                s,
                t,
                eps: 1e-8,
            }
        }
        // 2/16 max flows (corpus terminals).
        9..=10 => {
            counts[2] += 1;
            let (name, s, t) = &names.flow[rng.below(names.flow.len())];
            Request::MaxFlow {
                graph: name.clone(),
                s: *s,
                t: *t,
            }
        }
        // 2/16 min-cost flows (corpus demands).
        11..=12 => {
            counts[3] += 1;
            let name = &names.demand[rng.below(names.demand.len())];
            let sigma = match &oracles[name] {
                OracleData::Demand { sigma, .. } => sigma.clone(),
                _ => unreachable!(),
            };
            Request::MinCostFlow {
                graph: name.clone(),
                demands: sigma,
            }
        }
        // 2/16 SSSP from a random source.
        13..=14 => {
            counts[4] += 1;
            let name = &names.arcs[rng.below(names.arcs.len())];
            let n = match &oracles[name] {
                OracleData::Arcs { n, .. } => *n,
                _ => unreachable!(),
            };
            Request::Sssp {
                graph: name.clone(),
                source: rng.below(n),
            }
        }
        // 1/16 APSP (memoized after the first request per graph).
        _ => {
            counts[5] += 1;
            let name = &names.arcs[rng.below(names.arcs.len())];
            Request::Apsp {
                graph: name.clone(),
            }
        }
    }
}

/// Registered names by request domain.
struct Names {
    laplacian: Vec<String>,
    flow: Vec<(String, usize, usize)>,
    demand: Vec<String>,
    arcs: Vec<String>,
}

/// Differences one response against the sequential oracle. Returns a
/// description of the disagreement, or `None` if the response conforms.
fn oracle_check(
    oracles: &BTreeMap<String, OracleData>,
    req: &Request,
    resp: &Response,
) -> Option<String> {
    let data = &oracles[req.graph()];
    match (req, resp, data) {
        (
            Request::LaplacianSolve { graph, b, eps },
            Response::Potentials { x, .. },
            OracleData::Laplacian { n, edges },
        ) => {
            let want = oracle::dense_laplacian_solve(*n, edges, b)
                .expect("oracle factorization on corpus instance");
            let diff: Vec<f64> = x.iter().zip(&want).map(|(a, w)| a - w).collect();
            let err = oracle::quadratic_form(edges, &diff).sqrt();
            let scale = oracle::quadratic_form(edges, &want).sqrt();
            // The solver guarantees eps relative error in the L-seminorm;
            // 10x slack absorbs broadcast quantization.
            if err > 10.0 * eps * scale.max(1e-12) {
                return Some(format!(
                    "{graph}: laplacian solve off by {err:.3e} in L-norm (scale {scale:.3e}, eps {eps:.0e})"
                ));
            }
            None
        }
        (
            Request::EffectiveResistance { graph, s, t, .. },
            Response::Resistance { value, .. },
            OracleData::Laplacian { n, edges },
        ) => {
            let want = oracle::effective_resistance_dense(*n, edges, *s, *t)
                .expect("oracle factorization on corpus instance");
            if (value - want).abs() > 1e-6 * want.abs().max(1e-9) {
                return Some(format!(
                    "{graph}: R_eff({s},{t}) = {value:.12e}, oracle {want:.12e}"
                ));
            }
            None
        }
        (
            Request::MaxFlow { graph, s, t },
            Response::MaxFlow { value, .. },
            OracleData::Flow { graph: g },
        ) => {
            let (_, want) = oracle::edmonds_karp(g, *s, *t);
            if *value != want {
                return Some(format!("{graph}: max flow {value}, oracle {want}"));
            }
            None
        }
        (
            Request::MinCostFlow { graph, .. },
            Response::MinCostFlow { cost, .. },
            OracleData::Demand { graph: g, sigma },
        ) => {
            let Some((_, want)) = oracle::ssp_mcf(g, sigma) else {
                return Some(format!("{graph}: oracle says infeasible, engine routed it"));
            };
            if *cost != want {
                return Some(format!("{graph}: min-cost flow cost {cost}, oracle {want}"));
            }
            None
        }
        (
            Request::Sssp { graph, source },
            Response::Sssp {
                dist,
                negative_cycle,
            },
            OracleData::Arcs { n, arcs },
        ) => {
            if *negative_cycle {
                return Some(format!("{graph}: negative cycle on non-negative arcs"));
            }
            let want = oracle::dijkstra_sssp(*n, arcs, *source);
            if *dist != want {
                return Some(format!(
                    "{graph}: SSSP from {source} disagrees with Dijkstra"
                ));
            }
            None
        }
        (Request::Apsp { graph }, Response::Apsp { dist }, OracleData::Arcs { n, arcs }) => {
            let want = oracle::dijkstra_apsp(*n, arcs);
            if *dist != want {
                return Some(format!("{graph}: APSP disagrees with Dijkstra"));
            }
            None
        }
        (req, resp, _) => Some(format!(
            "{}: response kind does not match request ({resp:?} for {req:?})",
            req.graph()
        )),
    }
}

/// Replays a seeded randomized request stream through one long-lived
/// engine, spot-checking responses against the sequential oracles.
///
/// The run is deterministic end to end: graph registry, request
/// synthesis, batch widths, and oracle sampling all derive from
/// `config`, so [`SoakReport`]s (including the bitwise response
/// fingerprint) are comparable across runs, machines, and thread
/// counts.
///
/// # Panics
///
/// Panics if the engine rejects a synthesized request — the stream is
/// well-formed by construction, so a typed error here is a harness bug,
/// not a conformance finding.
pub fn run_service_soak(config: &SoakConfig) -> SoakReport {
    run_service_soak_on(config, Clique::new)
}

/// [`run_service_soak`], but over a caller-chosen transport: `make`
/// receives the clique size and builds the engine's communicator. The
/// CI soak runs this with [`cc_model::ThreadedComm`] to pin the whole
/// service stack — engine, sessions, batch admission — to bitwise
/// report identity across transports.
///
/// # Panics
///
/// Panics if the engine rejects a synthesized request, as in
/// [`run_service_soak`].
pub fn run_service_soak_on<C: Communicator>(
    config: &SoakConfig,
    make: impl FnOnce(usize) -> C,
) -> SoakReport {
    let (mut engine, oracles) = build_engine(config.extra_cases, make);
    let names = Names {
        laplacian: oracles
            .iter()
            .filter(|(_, d)| matches!(d, OracleData::Laplacian { .. }))
            .map(|(k, _)| k.clone())
            .collect(),
        flow: oracles
            .iter()
            .filter_map(|(k, d)| match d {
                OracleData::Flow { .. } => {
                    // Corpus flow terminals are always 0 and n-1.
                    let n = match d {
                        OracleData::Flow { graph } => graph.n(),
                        _ => unreachable!(),
                    };
                    Some((k.clone(), 0, n - 1))
                }
                _ => None,
            })
            .collect(),
        demand: oracles
            .iter()
            .filter(|(_, d)| matches!(d, OracleData::Demand { .. }))
            .map(|(k, _)| k.clone())
            .collect(),
        arcs: oracles
            .iter()
            .filter(|(_, d)| matches!(d, OracleData::Arcs { .. }))
            .map(|(k, _)| k.clone())
            .collect(),
    };

    let mut rng = SplitMix64::new(config.seed);
    let mut report = SoakReport {
        requests: 0,
        batches: 0,
        batched_requests: 0,
        oracle_checks: 0,
        mismatches: Vec::new(),
        template_cache_hits: 0,
        builds: 0,
        total_rounds: 0,
        charged_rounds: 0,
        fingerprint: 0xcbf2_9ce4_8422_2325,
        counts_by_kind: [0; 6],
    };

    let mut emitted = 0usize;
    while emitted < config.requests {
        let width = (1 + rng.below(4)).min(config.requests - emitted);
        let batch: Vec<Request> = (0..width)
            .map(|_| next_request(&mut rng, &oracles, &names, &mut report.counts_by_kind))
            .collect();
        let outcomes = engine.submit_batch(batch.clone());
        report.batches += 1;

        for (req, outcome) in batch.iter().zip(outcomes) {
            let out = match outcome {
                Ok(out) => out,
                Err(e) => panic!("well-formed soak request rejected: {e}"),
            };
            emitted += 1;
            report.requests += 1;
            report.template_cache_hits += out.stats.template_cache_hits;
            report.builds += out.stats.built as usize;
            if out.stats.batched_with > 1 {
                report.batched_requests += 1;
            }
            report.fingerprint = fingerprint_response(report.fingerprint, &out.response);
            if config.oracle_every > 0 && report.requests.is_multiple_of(config.oracle_every) {
                report.oracle_checks += 1;
                if let Some(m) = oracle_check(&oracles, req, &out.response) {
                    report.mismatches.push(m);
                }
            }
        }
    }

    report.total_rounds = engine.ledger().total_rounds();
    report.charged_rounds = engine.ledger().charged_rounds();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soak_is_deterministic_and_clean_on_a_short_stream() {
        let config = SoakConfig {
            requests: 40,
            oracle_every: 4,
            ..SoakConfig::default()
        };
        let a = run_service_soak(&config);
        assert_eq!(a.requests, 40);
        assert!(a.oracle_checks >= 10);
        assert!(a.mismatches.is_empty(), "{:?}", a.mismatches);
        let b = run_service_soak(&config);
        assert_eq!(a, b, "soak must be bitwise deterministic");
    }

    #[test]
    fn soak_reuses_cached_state_across_the_stream() {
        let config = SoakConfig {
            requests: 60,
            oracle_every: 0,
            ..SoakConfig::default()
        };
        let report = run_service_soak(&config);
        assert!(
            report.template_cache_hits > 0,
            "a 60-request stream must revisit a flow support: {report:?}"
        );
        // Builds are bounded by the number of registered graphs — every
        // later request rides a session.
        assert!(report.builds <= 21 + report.counts_by_kind[5]);
        assert!(report.batched_requests > 0, "batch admission never fired");
    }
}
