//! Theorem-predicted round shapes, in one place.
//!
//! The integration suites (`tests/theorem_claims.rs`,
//! `tests/round_accounting.rs`, and the conformance tests in this crate)
//! assert the same bounds — routing them through these helpers keeps the
//! constants from drifting apart between suites.

use cc_model::RoundLedger;

/// Theorem 1.4's measured constant: Eulerian orientation spends at most
/// this many rounds per `log₂(2m)` across two decades of `n`
/// (`O(log n log* n)` with `log* ≤ 5` at simulable sizes).
pub const EULER_PER_LOG_BOUND: f64 = 40.0;

/// Rounds per `log₂(2m)` — the quantity bounded by
/// [`EULER_PER_LOG_BOUND`].
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn euler_rounds_per_log(rounds: u64, m: usize) -> f64 {
    assert!(m > 0, "per-log shape needs at least one edge");
    rounds as f64 / ((2 * m) as f64).log2()
}

/// Theorem 3.3's sparsifier size bound `O(n log n log U)` with unit
/// constant: `n · ln n · ln U` (with `U` clamped to `e` so small weights
/// don't vacuously zero the bound).
pub fn sparsifier_edge_bound(n: usize, max_weight: f64) -> f64 {
    let n = n as f64;
    n * n.ln() * max_weight.max(std::f64::consts::E).ln()
}

/// Ledger bookkeeping invariant: per-phase totals partition the grand
/// total, for both implemented and charged rounds.
///
/// # Panics
///
/// Panics (with the offending sums) if the partition does not hold.
pub fn assert_phase_partition(ledger: &RoundLedger) {
    let sum: u64 = ledger.phases().values().map(|c| c.total()).sum();
    assert_eq!(
        sum,
        ledger.total_rounds(),
        "phase totals must partition the grand total"
    );
    let impl_sum: u64 = ledger.phases().values().map(|c| c.implemented).sum();
    assert_eq!(
        impl_sum,
        ledger.implemented_rounds(),
        "implemented rounds must partition"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euler_shape_is_rounds_over_log() {
        assert!((euler_rounds_per_log(40, 8) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sparsifier_bound_matches_theorem_3_3_constants() {
        let bound = sparsifier_edge_bound(48, 64.0);
        assert!((bound - 48.0 * (48f64).ln() * (64f64).ln()).abs() < 1e-9);
        // Small weights clamp to ln(e) = 1, not 0.
        assert!(sparsifier_edge_bound(10, 0.5) > 0.0);
    }

    #[test]
    fn phase_partition_accepts_a_real_ledger() {
        use cc_model::Clique;
        let mut clique = Clique::new(4);
        clique.phase("a", |c| {
            c.broadcast_all(&[0, 1, 2, 3]).unwrap();
        });
        assert_phase_partition(clique.ledger());
    }
}
