//! The seeded deterministic instance corpus.
//!
//! Every case carries a stable ID (`family/params[-sK]`) so a failure
//! report pinpoints the instance exactly and regressions can be pinned
//! by name. The base slate covers the qualitative regimes each pipeline
//! must survive — paths (diameter), grids (locality), expanders
//! (conditioning), random weighted graphs, adversarially
//! near-disconnected graphs (tiny spectral gap), and high-dynamic-range
//! weights (large `U`) — and `CONFORM_CASES=N` appends `N` extra seeded
//! random instances per corpus for soak runs.

use cc_graph::{generators, DiGraph, Graph};

/// Reads the `CONFORM_CASES` environment variable: the number of extra
/// seeded random instances to append to each corpus (0 outside soak
/// runs, or on an unparsable value).
pub fn case_budget() -> usize {
    std::env::var("CONFORM_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Reads the `CONFORM_ADVERSARY_CASES` environment variable: the number
/// of extra seeded adversary schedules the chaos suite
/// ([`crate::run_adversary_suite`]) appends to its base slate, per
/// pipeline (0 outside soak runs, or on an unparsable value). Mirrors
/// [`case_budget`]/`CONFORM_CASES`.
pub fn adversary_case_budget() -> usize {
    std::env::var("CONFORM_ADVERSARY_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Reads the `CONFORM_BROADCAST_CASES` environment variable: the number
/// of extra seeded random instances the broadcast conformance leg
/// (`tests/broadcast.rs`) appends to each corpus it replays over
/// `cc_model::BroadcastComm` (0 outside soak runs, or on an unparsable
/// value). Mirrors [`case_budget`]/`CONFORM_CASES`.
pub fn broadcast_case_budget() -> usize {
    std::env::var("CONFORM_BROADCAST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// An undirected weighted instance (solver / sparsifier / orientation
/// corpora).
#[derive(Debug, Clone)]
pub struct UndirectedCase {
    /// Stable instance ID.
    pub id: String,
    /// The graph.
    pub graph: Graph,
}

/// A directed `s`–`t` capacitated instance (max-flow corpus).
#[derive(Debug, Clone)]
pub struct FlowCase {
    /// Stable instance ID.
    pub id: String,
    /// The network.
    pub graph: DiGraph,
    /// Source vertex.
    pub s: usize,
    /// Sink vertex.
    pub t: usize,
}

/// A directed instance with a demand vector (min-cost-flow corpus).
#[derive(Debug, Clone)]
pub struct DemandCase {
    /// Stable instance ID.
    pub id: String,
    /// The network (unit capacities, integer costs).
    pub graph: DiGraph,
    /// Demand vector (positive = supply).
    pub sigma: Vec<i64>,
}

/// A non-negatively weighted arc list (shortest-path corpus).
#[derive(Debug, Clone)]
pub struct ArcCase {
    /// Stable instance ID.
    pub id: String,
    /// Vertex count.
    pub n: usize,
    /// Arcs `(from, to, weight ≥ 0)`.
    pub arcs: Vec<(usize, usize, i64)>,
    /// Distinguished source for SSSP checks.
    pub source: usize,
}

/// Two expanders joined by a single light bridge: connected, but with a
/// spectral gap governed by the bridge weight — the adversarial regime
/// for solver conditioning and expander decomposition.
fn near_disconnected(half: usize, bridge_weight: f64) -> Graph {
    let a = generators::expander(half);
    let mut g = Graph::new(2 * half);
    for e in a.edges() {
        g.add_edge(e.u, e.v, e.weight);
        g.add_edge(e.u + half, e.v + half, e.weight);
    }
    g.add_edge(half - 1, half, bridge_weight);
    g
}

/// A path whose weights sweep a `2^16` dynamic range: large `U` without
/// large `n`.
fn high_dynamic_range(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 0..n - 1 {
        g.add_edge(
            i,
            i + 1,
            (2.0f64).powi((i as i32 * 16) / (n as i32 - 2).max(1)),
        );
    }
    // A few chords so the graph isn't a tree.
    for i in 0..n / 3 {
        g.add_edge(3 * i, (3 * i + n / 2) % n, 4.0);
    }
    g
}

/// The undirected corpus (solver, sparsifier, effective resistance).
/// Base slate of six families plus `extra` seeded random instances.
pub fn undirected_corpus(extra: usize) -> Vec<UndirectedCase> {
    let mut cases = vec![
        UndirectedCase {
            id: "path/16".into(),
            graph: generators::path(16),
        },
        UndirectedCase {
            id: "grid/4x5".into(),
            graph: generators::grid(4, 5),
        },
        UndirectedCase {
            id: "expander/24".into(),
            graph: generators::expander(24),
        },
        UndirectedCase {
            id: "random/20-50-8-s3".into(),
            graph: generators::random_connected(20, 50, 8, 3),
        },
        UndirectedCase {
            id: "bridge/10".into(),
            graph: near_disconnected(10, 1e-3),
        },
        UndirectedCase {
            id: "hdr/12".into(),
            graph: high_dynamic_range(12),
        },
    ];
    for k in 0..extra {
        let seed = 100 + k as u64;
        cases.push(UndirectedCase {
            id: format!("random/18-40-16-s{seed}"),
            graph: generators::random_connected(18, 40, 16, seed),
        });
    }
    cases
}

/// The Eulerian corpus (orientation): all degrees even.
pub fn eulerian_corpus(extra: usize) -> Vec<UndirectedCase> {
    let mut cases = vec![
        UndirectedCase {
            id: "cycle/12".into(),
            graph: generators::cycle(12),
        },
        UndirectedCase {
            id: "euler/20-3-s1".into(),
            graph: generators::random_eulerian(20, 3, 1),
        },
        UndirectedCase {
            id: "euler/30-4-s2".into(),
            graph: generators::random_eulerian(30, 4, 2),
        },
        UndirectedCase {
            id: "euler/16-2-s9".into(),
            graph: generators::random_eulerian(16, 2, 9),
        },
        UndirectedCase {
            id: "euler/40-5-s4".into(),
            graph: generators::random_eulerian(40, 5, 4),
        },
    ];
    for k in 0..extra {
        let seed = 200 + k as u64;
        cases.push(UndirectedCase {
            id: format!("euler/24-3-s{seed}"),
            graph: generators::random_eulerian(24, 3, seed),
        });
    }
    cases
}

/// The max-flow corpus.
pub fn flow_corpus(extra: usize) -> Vec<FlowCase> {
    let mut cases = vec![
        FlowCase {
            id: "flow/10-20-4-s1".into(),
            graph: generators::random_flow_network(10, 20, 4, 1),
            s: 0,
            t: 9,
        },
        FlowCase {
            id: "flow/12-26-3-s5".into(),
            graph: generators::random_flow_network(12, 26, 3, 5),
            s: 0,
            t: 11,
        },
        FlowCase {
            id: "flow/8-14-7-s2".into(),
            graph: generators::random_flow_network(8, 14, 7, 2),
            s: 0,
            t: 7,
        },
        FlowCase {
            id: "flowgrid/3x4-5-s3".into(),
            graph: generators::grid_flow_network(3, 4, 5, 3),
            s: 0,
            t: 11,
        },
        FlowCase {
            id: "flow/14-30-2-s8".into(),
            graph: generators::random_flow_network(14, 30, 2, 8),
            s: 0,
            t: 13,
        },
    ];
    for k in 0..extra {
        let seed = 300 + k as u64;
        cases.push(FlowCase {
            id: format!("flow/11-22-5-s{seed}"),
            graph: generators::random_flow_network(11, 22, 5, seed),
            s: 0,
            t: 10,
        });
    }
    cases
}

/// The min-cost-flow corpus (unit-capacity assignment instances).
pub fn demand_corpus(extra: usize) -> Vec<DemandCase> {
    let mut cases = Vec::new();
    for (k, extra_edges, w, seed) in [
        (3usize, 2usize, 7i64, 1u64),
        (4, 2, 9, 3),
        (5, 3, 5, 7),
        (4, 1, 15, 11),
        (6, 2, 31, 77),
    ] {
        let (graph, sigma) = generators::bipartite_assignment(k, extra_edges, w, seed);
        cases.push(DemandCase {
            id: format!("assign/{k}-{extra_edges}-{w}-s{seed}"),
            graph,
            sigma,
        });
    }
    for j in 0..extra {
        let seed = 400 + j as u64;
        let (graph, sigma) = generators::bipartite_assignment(4, 2, 12, seed);
        cases.push(DemandCase {
            id: format!("assign/4-2-12-s{seed}"),
            graph,
            sigma,
        });
    }
    cases
}

/// The shortest-path corpus: non-negative arc lists from unit digraphs
/// (weight = cost).
pub fn arc_corpus(extra: usize) -> Vec<ArcCase> {
    let mut cases = Vec::new();
    for (n, extra_edges, w, seed) in [
        (8usize, 12usize, 6i64, 1u64),
        (12, 20, 9, 2),
        (10, 16, 3, 5),
        (14, 24, 12, 7),
        (9, 10, 1, 4),
    ] {
        let g = generators::random_unit_digraph(n, extra_edges, w, seed);
        cases.push(ArcCase {
            id: format!("arcs/{n}-{extra_edges}-{w}-s{seed}"),
            n,
            arcs: g.edges().iter().map(|e| (e.from, e.to, e.cost)).collect(),
            source: 0,
        });
    }
    for j in 0..extra {
        let seed = 500 + j as u64;
        let g = generators::random_unit_digraph(11, 18, 8, seed);
        cases.push(ArcCase {
            id: format!("arcs/11-18-8-s{seed}"),
            n: 11,
            arcs: g.edges().iter().map(|e| (e.from, e.to, e.cost)).collect(),
            source: 0,
        });
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_have_stable_unique_ids() {
        let ids: Vec<String> = undirected_corpus(3)
            .into_iter()
            .map(|c| c.id)
            .chain(eulerian_corpus(2).into_iter().map(|c| c.id))
            .chain(flow_corpus(2).into_iter().map(|c| c.id))
            .chain(demand_corpus(2).into_iter().map(|c| c.id))
            .chain(arc_corpus(2).into_iter().map(|c| c.id))
            .collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate corpus IDs");
    }

    #[test]
    fn corpus_instances_are_deterministic() {
        let a = undirected_corpus(2);
        let b = undirected_corpus(2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.graph.edge_triples(), y.graph.edge_triples());
        }
    }

    #[test]
    fn base_slates_cover_at_least_five_instances() {
        assert!(undirected_corpus(0).len() >= 5);
        assert!(eulerian_corpus(0).len() >= 5);
        assert!(flow_corpus(0).len() >= 5);
        assert!(demand_corpus(0).len() >= 5);
        assert!(arc_corpus(0).len() >= 5);
    }

    #[test]
    fn adversarial_families_have_their_defining_shape() {
        let bridge = near_disconnected(8, 1e-3);
        assert!(bridge.is_connected());
        assert!(bridge.edges().iter().any(|e| e.weight < 1e-2));
        let hdr = high_dynamic_range(12);
        assert!(hdr.max_weight() / 1.0 >= 2.0f64.powi(15));
        for c in eulerian_corpus(0) {
            assert!(c.graph.is_eulerian(), "{}", c.id);
        }
    }

    #[test]
    fn case_budget_reads_environment() {
        let want = std::env::var("CONFORM_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        assert_eq!(case_budget(), want);
    }
}
