//! The differential driver: one checker per public entry point, generic
//! over the transport.
//!
//! Each checker runs a pipeline on a corpus instance against any
//! `C: Communicator`, differences the result against the sequential
//! [`crate::oracle`] within the typed [`Tolerances`], and returns the
//! rounds the run charged — so callers can also assert theorem shapes
//! ([`crate::shapes`]) and cross-transport round identity. On an honest
//! substrate a checker panics on any disagreement (it is a test
//! harness); under a fault-injecting substrate it propagates the
//! pipeline's typed error, which [`comm_rooted`] classifies.

use cc_apsp::{approx_apsp, apsp_from_arcs, sssp_bellman_ford, ApspError, RoundModel, SsspOutcome};
use cc_core::{CoreError, ElectricalNetwork, LaplacianSolver, SolverOptions};
use cc_euler::{eulerian_orientation, round_flow, EulerError, FlowRoundingOptions};
use cc_linalg::LaplacianNorm;
use cc_maxflow::{
    max_flow_ford_fulkerson, max_flow_ipm, max_flow_trivial, IpmOptions, MaxFlowError,
};
use cc_mcf::{min_cost_flow_ipm, McfError, McfOptions};
use cc_model::{Communicator, FaultPlan, ModelError};
use cc_sparsify::{build_sparsifier, SparsifyError, SparsifyParams};

use crate::corpus::{ArcCase, DemandCase, FlowCase, UndirectedCase};
use crate::oracle;

/// Typed comparison tolerances of the differential checks.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Multiplicative slack on the solver's ε guarantee (quantization of
    /// broadcast payloads keeps runs a hair above the exact bound).
    pub solver_slack: f64,
    /// Relative tolerance on effective-resistance agreement.
    pub resistance_rel: f64,
    /// Multiplicative slack on the sparsifier's `[1/α, α]` sandwich.
    pub sparsifier_slack: f64,
    /// `ε` passed to (and asserted of) the approximate APSP.
    pub apsp_eps: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            solver_slack: 1.05,
            resistance_rel: 1e-6,
            sparsifier_slack: 1e-6,
            apsp_eps: 0.25,
        }
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn dipole(n: usize) -> Vec<f64> {
    let mut b = vec![0.0; n];
    b[0] = 1.0;
    b[n - 1] = -1.0;
    b
}

/// Differential check of the Laplacian solver (Theorem 1.1): solve the
/// dipole system to precision `eps` and difference against the dense
/// grounded oracle in the `L_G` seminorm. Returns the rounds charged.
///
/// # Errors
///
/// Propagates the pipeline's [`CoreError`] (typed faults under a
/// fault-injecting transport).
pub fn check_solver<C: Communicator>(
    comm: &mut C,
    case: &UndirectedCase,
    eps: f64,
    tol: &Tolerances,
) -> Result<u64, CoreError> {
    let g = &case.graph;
    let solver = LaplacianSolver::build(comm, g, &SolverOptions::default())?;
    let b = dipole(g.n());
    let before = comm.ledger().total_rounds();
    let out = solver.solve(comm, &b, eps)?;
    let rounds = comm.ledger().total_rounds() - before;
    let x_star = oracle::dense_laplacian_solve(g.n(), &g.edge_triples(), &b)
        .expect("oracle factorization on corpus instance");
    let norm = LaplacianNorm::new(g.edge_triples());
    let denom = norm.norm(&x_star);
    assert!(
        norm.distance(&out.x, &x_star) <= eps * tol.solver_slack * denom.max(1e-300),
        "{}: solver diverges from dense oracle beyond {eps}",
        case.id
    );
    Ok(rounds)
}

/// Differential check of effective resistance against the brute-force
/// dense oracle, between the instance's first and last vertices.
///
/// # Errors
///
/// Propagates the pipeline's [`CoreError`].
pub fn check_resistance<C: Communicator>(
    comm: &mut C,
    case: &UndirectedCase,
    tol: &Tolerances,
) -> Result<u64, CoreError> {
    let g = &case.graph;
    let (s, t) = (0, g.n() - 1);
    // The network takes resistances; the graph's weights are conductances.
    let resistors: Vec<(usize, usize, f64)> = g
        .edge_triples()
        .into_iter()
        .map(|(u, v, w)| (u, v, 1.0 / w))
        .collect();
    let net = ElectricalNetwork::build(comm, g.n(), &resistors, &SolverOptions::default())?;
    let before = comm.ledger().total_rounds();
    let r = net.effective_resistance(comm, s, t, 1e-9)?;
    let rounds = comm.ledger().total_rounds() - before;
    let want = oracle::effective_resistance_dense(g.n(), &g.edge_triples(), s, t)
        .expect("oracle factorization on corpus instance");
    assert!(
        (r - want).abs() <= tol.resistance_rel * want.abs().max(1e-12),
        "{}: R_eff {r} vs oracle {want}",
        case.id
    );
    Ok(rounds)
}

/// Differential check of the sparsifier (Theorem 3.3): the certified
/// `(1/α)·S_H ⪯ L_G ⪯ α·S_H` sandwich is probed *directly* on the
/// quadratic forms — deterministic probe vectors, with the Schur
/// complement recomputed from scratch by the oracle.
///
/// # Errors
///
/// Propagates the pipeline's [`SparsifyError`].
pub fn check_sparsifier<C: Communicator>(
    comm: &mut C,
    case: &UndirectedCase,
    tol: &Tolerances,
) -> Result<u64, SparsifyError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let h = build_sparsifier(comm, g, &SparsifyParams::default())?;
    let rounds = comm.ledger().total_rounds() - before;
    let alpha = h.alpha();
    assert!(
        alpha.is_finite() && alpha >= 1.0,
        "{}: certified α must be a finite value ≥ 1, got {alpha}",
        case.id
    );
    let probes = oracle::probe_vectors(g.n(), 8, fnv(&case.id));
    let (lo, hi) =
        oracle::schur_quadratic_ratio_bounds(g.n(), h.edges(), &g.edge_triples(), &probes);
    assert!(
        hi <= alpha * (1.0 + tol.sparsifier_slack),
        "{}: probe ratio {hi} above certified α {alpha}",
        case.id
    );
    assert!(
        lo * alpha >= 1.0 - tol.sparsifier_slack,
        "{}: probe ratio {lo} below certified 1/α {}",
        case.id,
        1.0 / alpha
    );
    Ok(rounds)
}

/// Differential check of the Eulerian orientation (Theorem 1.4) against
/// the independent balance certificate.
///
/// # Errors
///
/// Propagates the pipeline's [`EulerError`].
pub fn check_orientation<C: Communicator>(
    comm: &mut C,
    case: &UndirectedCase,
) -> Result<u64, EulerError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let o = eulerian_orientation(comm, g)?;
    let rounds = comm.ledger().total_rounds() - before;
    assert!(
        oracle::orientation_balanced(g, &o),
        "{}: orientation is not Eulerian",
        case.id
    );
    Ok(rounds)
}

/// Differential check of flow rounding (Lemma 4.2): scale the oracle's
/// optimal flow by 3/4 and round at `Δ = 1/4`; the result must be
/// integral, floor/ceil per edge, and lose no value.
///
/// # Errors
///
/// Propagates the pipeline's [`EulerError`].
pub fn check_rounding<C: Communicator>(comm: &mut C, case: &FlowCase) -> Result<u64, EulerError> {
    let g = &case.graph;
    let (opt, value) = oracle::edmonds_karp(g, case.s, case.t);
    let frac: Vec<f64> = opt.iter().map(|&f| f as f64 * 0.75).collect();
    let before = comm.ledger().total_rounds();
    let out = round_flow(
        comm,
        g,
        &frac,
        case.s,
        case.t,
        0.25,
        &FlowRoundingOptions::default(),
    )?;
    let rounds = comm.ledger().total_rounds() - before;
    let got = g.flow_value(&out.flow, case.s);
    assert!(
        got as f64 >= 0.75 * value as f64 - 1e-9,
        "{}: rounding lost value ({got} < 3/4 · {value})",
        case.id
    );
    for (i, &f) in out.flow.iter().enumerate() {
        assert!(
            f == frac[i].floor() as i64 || f == frac[i].ceil() as i64,
            "{}: edge {i} rounded outside floor/ceil",
            case.id
        );
    }
    Ok(rounds)
}

/// Differential check of the IPM max-flow pipeline (Theorem 1.2) against
/// the Edmonds–Karp oracle: exact value, feasible flow.
///
/// # Errors
///
/// Propagates the pipeline's [`MaxFlowError`].
pub fn check_maxflow_ipm<C: Communicator>(
    comm: &mut C,
    case: &FlowCase,
) -> Result<u64, MaxFlowError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let out = max_flow_ipm(comm, g, case.s, case.t, &IpmOptions::default())?;
    let rounds = comm.ledger().total_rounds() - before;
    let (_, want) = oracle::edmonds_karp(g, case.s, case.t);
    assert_eq!(out.value, want, "{}: IPM value vs oracle", case.id);
    assert!(
        g.is_feasible_flow(&out.flow, &g.st_demand(case.s, case.t, want)),
        "{}: IPM flow infeasible",
        case.id
    );
    Ok(rounds)
}

/// Differential check of the Ford–Fulkerson baseline against the
/// Edmonds–Karp oracle.
///
/// # Errors
///
/// Propagates the pipeline's [`MaxFlowError`].
pub fn check_maxflow_ff<C: Communicator>(
    comm: &mut C,
    case: &FlowCase,
) -> Result<u64, MaxFlowError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let out = max_flow_ford_fulkerson(comm, g, case.s, case.t, RoundModel::Semiring)?;
    let rounds = comm.ledger().total_rounds() - before;
    let (_, want) = oracle::edmonds_karp(g, case.s, case.t);
    assert_eq!(out.value, want, "{}: FF value vs oracle", case.id);
    Ok(rounds)
}

/// Differential check of the trivial gather-and-solve baseline against
/// the Edmonds–Karp oracle.
///
/// # Errors
///
/// Propagates the pipeline's [`MaxFlowError`].
pub fn check_maxflow_trivial<C: Communicator>(
    comm: &mut C,
    case: &FlowCase,
) -> Result<u64, MaxFlowError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let out = max_flow_trivial(comm, g, case.s, case.t)?;
    let rounds = comm.ledger().total_rounds() - before;
    let (_, want) = oracle::edmonds_karp(g, case.s, case.t);
    assert_eq!(out.value, want, "{}: trivial value vs oracle", case.id);
    Ok(rounds)
}

/// Differential check of the min-cost-flow pipeline (Theorem 1.3)
/// against the independent Bellman–Ford SSP oracle: exact cost,
/// feasible flow, unit capacities respected.
///
/// # Errors
///
/// Propagates the pipeline's [`McfError`].
pub fn check_mcf<C: Communicator>(comm: &mut C, case: &DemandCase) -> Result<u64, McfError> {
    let g = &case.graph;
    let before = comm.ledger().total_rounds();
    let out = min_cost_flow_ipm(comm, g, &case.sigma, &McfOptions::default())?;
    let rounds = comm.ledger().total_rounds() - before;
    let (_, want) = oracle::ssp_mcf(g, &case.sigma).expect("corpus demands are feasible");
    assert_eq!(out.cost, want, "{}: MCF cost vs oracle", case.id);
    assert!(
        g.is_feasible_flow(&out.flow, &case.sigma),
        "{}: MCF flow infeasible",
        case.id
    );
    Ok(rounds)
}

/// Differential check of distributed Bellman–Ford SSSP against the
/// Dijkstra oracle (exact distances on the non-negative corpus).
///
/// # Errors
///
/// Propagates the pipeline's [`ApspError`].
pub fn check_sssp<C: Communicator>(comm: &mut C, case: &ArcCase) -> Result<u64, ApspError> {
    let before = comm.ledger().total_rounds();
    let out = sssp_bellman_ford(comm, case.n, &case.arcs, case.source)?;
    let rounds = comm.ledger().total_rounds() - before;
    let want = oracle::dijkstra_sssp(case.n, &case.arcs, case.source);
    match out {
        SsspOutcome::Converged { dist, .. } => {
            assert_eq!(dist, want, "{}: Bellman–Ford vs Dijkstra", case.id)
        }
        SsspOutcome::NegativeCycle { witness } => panic!(
            "{}: spurious negative cycle (witness {witness}) on non-negative arcs",
            case.id
        ),
    }
    Ok(rounds)
}

/// Differential check of exact and `(1+ε)`-approximate APSP against the
/// Dijkstra oracle. Infallible: both pipelines only *charge* rounds to
/// the ledger — they move no payload, so no substrate failure can reach
/// them. Returns the rounds charged.
pub fn check_apsp<C: Communicator>(comm: &mut C, case: &ArcCase, tol: &Tolerances) -> u64 {
    let before = comm.ledger().total_rounds();
    let exact = apsp_from_arcs(comm, case.n, &case.arcs, RoundModel::Semiring);
    let approx = approx_apsp(
        comm,
        case.n,
        &case.arcs,
        tol.apsp_eps,
        RoundModel::FastMatMul,
    );
    let rounds = comm.ledger().total_rounds() - before;
    let want = oracle::dijkstra_apsp(case.n, &case.arcs);
    for (u, row) in want.iter().enumerate() {
        for (v, &w) in row.iter().enumerate() {
            assert_eq!(exact.dist(u, v), w, "{}: exact APSP {u}→{v}", case.id);
            match (approx.dist(u, v), w) {
                (None, None) => {}
                (Some(a), Some(d)) => assert!(
                    a >= d && a as f64 <= (1.0 + tol.apsp_eps) * d as f64 + 1e-9,
                    "{}: approx APSP {u}→{v}: {a} outside [{d}, (1+ε)·{d}]",
                    case.id
                ),
                (a, d) => panic!("{}: approx reachability {u}→{v}: {a:?} vs {d:?}", case.id),
            }
        }
    }
    rounds
}

/// True if `e`'s source chain bottoms out in a [`ModelError`] — the
/// classifier the fault suites use to assert an injected fault surfaced
/// as a typed, comm-rooted error (and not, say, a numerical fallback).
pub fn comm_rooted(e: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(e);
    while let Some(s) = cur {
        if s.is::<ModelError>() {
            return true;
        }
        cur = s.source();
    }
    false
}

/// The pipelines the fault suite targets, one per public entry point
/// with a communication payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// [`check_solver`] — fails inside `laplacian_solve`.
    Solver,
    /// [`check_resistance`] — fails the electrical solve.
    Resistance,
    /// [`check_sparsifier`] — fails inside `sparsify`.
    Sparsifier,
    /// [`check_orientation`] — fails inside `eulerian_orientation`.
    Orientation,
    /// [`check_rounding`] — fails inside `flow_rounding`.
    Rounding,
    /// [`check_maxflow_ipm`] — fails inside `maxflow`.
    MaxFlow,
    /// [`check_maxflow_ff`] — fails inside `ford_fulkerson`.
    FordFulkerson,
    /// [`check_maxflow_trivial`] — fails the gather.
    TrivialFlow,
    /// [`check_mcf`] — fails inside `mincostflow`.
    Mcf,
    /// [`check_sssp`] — fails a relaxation sweep.
    Sssp,
}

/// One phase-targeted [`FaultPlan`] per [`FaultTarget`]: running the
/// target's checker under `FaultComm` with its plan must produce the
/// pipeline's typed error — never a panic, never a silently wrong
/// result. Deterministic: plan seeds derive from the target index.
pub fn fault_plans() -> Vec<(FaultTarget, FaultPlan)> {
    let phase_plan = |seed: u64, fragment: &str| FaultPlan {
        seed,
        fail_phases: vec![fragment.to_string()],
        ..FaultPlan::default()
    };
    vec![
        (FaultTarget::Solver, phase_plan(1, "laplacian_solve")),
        (FaultTarget::Resistance, phase_plan(2, "laplacian_solve")),
        (FaultTarget::Sparsifier, phase_plan(3, "sparsify")),
        (
            FaultTarget::Orientation,
            phase_plan(4, "eulerian_orientation"),
        ),
        (FaultTarget::Rounding, phase_plan(5, "flow_rounding")),
        (FaultTarget::MaxFlow, phase_plan(6, "maxflow")),
        (FaultTarget::FordFulkerson, phase_plan(7, "ford_fulkerson")),
        (FaultTarget::TrivialFlow, phase_plan(8, "trivial_gather")),
        (FaultTarget::Mcf, phase_plan(9, "mincostflow")),
        (FaultTarget::Sssp, phase_plan(10, "sssp_bellman_ford")),
    ]
}
