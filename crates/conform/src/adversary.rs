//! The chaos suite: every pipeline's differential checker, replayed
//! under node-level [`AdversarySchedule`]s, with each (pipeline ×
//! strategy) cell classified as
//!
//! * **detected** — the pipeline surfaced a typed error (for silent and
//!   crash–recover adversaries always comm-rooted: the transport turns
//!   the withheld message into [`cc_model::ModelError::NodeSilenced`]);
//! * **tolerated** — the pipeline completed and its result passed the
//!   checker's differential oracle;
//! * **corrupted** — the checker panicked: a silently wrong answer (the
//!   oracle assert fired) or an ungraceful crash on perturbed data.
//!
//! The invariant the suite enforces (EXPERIMENTS.md E12): **corrupted
//! cells are impossible for detectable strategies** — a silent or
//! crashed node can never produce a wrong answer, only a typed error or
//! a correct result, because the synchronous model makes omissions
//! observable the round they happen. Value-corrupting adversaries are
//! the counterpoint: they forge payloads within the congestion budget,
//! which no transport can detect — those cells document which pipelines
//! happen to absorb, reject, or propagate a one-bit forgery.
//!
//! The suite is deterministic (fixed schedule slate, seeded corruption
//! streams) and substrate-agnostic: [`run_adversary_suite_on`] produces
//! cell-for-cell identical reports over `Clique` and `ThreadedComm` at
//! any worker count. `CONFORM_ADVERSARY_CASES=N` appends `N` extra
//! seeded schedules per pipeline for chaos soak runs.

use std::error::Error;
use std::panic::{catch_unwind, AssertUnwindSafe};

use cc_model::{AdversaryComm, AdversarySchedule, AdversaryStrategy, Clique, Communicator};

use crate::corpus::{self, adversary_case_budget, ArcCase, DemandCase, FlowCase, UndirectedCase};
use crate::driver::{
    check_maxflow_ff, check_maxflow_ipm, check_maxflow_trivial, check_mcf, check_orientation,
    check_resistance, check_rounding, check_solver, check_sparsifier, check_sssp, comm_rooted,
    FaultTarget, Tolerances,
};

/// Classification of one (pipeline × strategy) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOutcome {
    /// Typed error surfaced (never a wrong answer).
    Detected,
    /// Completed and passed the differential oracle.
    Tolerated,
    /// Checker panicked: silent wrong answer or crash.
    Corrupted,
}

impl CellOutcome {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Detected => "detected",
            CellOutcome::Tolerated => "tolerated",
            CellOutcome::Corrupted => "corrupted",
        }
    }
}

/// One classified (pipeline × strategy) run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryCell {
    /// Pipeline under test.
    pub pipeline: FaultTarget,
    /// Name of the schedule from the slate (e.g. `silent`).
    pub strategy: String,
    /// True if the schedule is omission-only (no value-corrupting
    /// node) — the class whose cells must never be `Corrupted`.
    pub detectable: bool,
    /// The classification.
    pub outcome: CellOutcome,
    /// True when the surfaced error was comm-rooted.
    pub comm_rooted: bool,
    /// Adversary events (omissions + corruptions) the transport
    /// recorded during the run.
    pub events: u64,
    /// Deterministic human-readable detail (rounds or error display).
    pub detail: String,
}

/// The full matrix of one suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryReport {
    /// All cells, pipeline-major in slate order.
    pub cells: Vec<AdversaryCell>,
}

impl AdversaryReport {
    /// Cells with the given outcome.
    pub fn count(&self, outcome: CellOutcome) -> usize {
        self.cells.iter().filter(|c| c.outcome == outcome).count()
    }

    /// The cells violating the detectability invariant: `Corrupted`
    /// under an omission-only schedule. Must always be empty.
    pub fn detectable_corruptions(&self) -> Vec<&AdversaryCell> {
        self.cells
            .iter()
            .filter(|c| c.detectable && c.outcome == CellOutcome::Corrupted)
            .collect()
    }

    /// Panics if any omission-only schedule produced a `Corrupted`
    /// cell (the E12 invariant).
    pub fn assert_detectable_strategies_never_corrupt(&self) {
        let bad = self.detectable_corruptions();
        assert!(
            bad.is_empty(),
            "omission adversaries must never corrupt silently: {bad:?}"
        );
    }

    /// The matrix as deterministic markdown (pipelines × strategies),
    /// the table EXPERIMENTS.md E12 records.
    pub fn matrix_markdown(&self) -> String {
        let mut strategies: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !strategies.contains(&c.strategy.as_str()) {
                strategies.push(&c.strategy);
            }
        }
        let mut out = String::from("| pipeline |");
        for s in &strategies {
            out.push_str(&format!(" {s} |"));
        }
        out.push_str("\n|---|");
        out.push_str(&"---|".repeat(strategies.len()));
        out.push('\n');
        let mut pipelines: Vec<FaultTarget> = Vec::new();
        for c in &self.cells {
            if !pipelines.contains(&c.pipeline) {
                pipelines.push(c.pipeline);
            }
        }
        for p in pipelines {
            out.push_str(&format!("| {p:?} |"));
            for s in &strategies {
                let cell = self
                    .cells
                    .iter()
                    .find(|c| c.pipeline == p && c.strategy == **s);
                out.push_str(&format!(" {} |", cell.map_or("—", |c| c.outcome.label())));
            }
            out.push('\n');
        }
        out
    }
}

/// The deterministic schedule slate: one omission adversary of each
/// kind plus a value-corrupting one, all on node 1 with fixed seeds,
/// extended by `CONFORM_ADVERSARY_CASES` seeded soak schedules cycling
/// the strategies over varying nodes, seeds, and crash windows.
pub fn adversary_schedules() -> Vec<(String, AdversarySchedule)> {
    let mut slate = vec![
        (
            "silent".to_string(),
            AdversarySchedule::new(101).with(1, AdversaryStrategy::Silent),
        ),
        (
            "crash_recover".to_string(),
            AdversarySchedule::new(102).with(
                1,
                AdversaryStrategy::CrashRecover {
                    from_round: 0,
                    until_round: 6,
                },
            ),
        ),
        (
            "corrupt".to_string(),
            AdversarySchedule::new(103).with(1, AdversaryStrategy::Corrupt),
        ),
    ];
    for k in 0..adversary_case_budget() {
        // Node ids stay below the smallest corpus instance size.
        let node = 1 + k % 3;
        let seed = 200 + k as u64;
        let (name, strategy) = match k % 3 {
            0 => ("silent", AdversaryStrategy::Silent),
            1 => (
                "crash_recover",
                AdversaryStrategy::CrashRecover {
                    from_round: (k as u64 / 3) % 4,
                    until_round: (k as u64 / 3) % 4 + 4 + (k as u64 % 5),
                },
            ),
            _ => ("corrupt", AdversaryStrategy::Corrupt),
        };
        slate.push((
            format!("soak{k}_{name}_n{node}"),
            AdversarySchedule::new(seed).with(node, strategy),
        ));
    }
    slate
}

/// Runs one pipeline's checker on its first corpus instance under the
/// schedule, over a substrate from `make`, and classifies the outcome.
fn run_cell<C: Communicator>(
    target: FaultTarget,
    name: &str,
    schedule: &AdversarySchedule,
    make: &impl Fn(usize) -> C,
) -> AdversaryCell {
    let tol = Tolerances::default();
    type Checker<'a, C> =
        Box<dyn FnOnce(&mut AdversaryComm<C>) -> Result<u64, Box<dyn Error>> + 'a>;
    let undirected = |i: usize| -> UndirectedCase { corpus::undirected_corpus(0).swap_remove(i) };
    let flow = || -> FlowCase { corpus::flow_corpus(0).swap_remove(0) };
    let (n, run): (usize, Checker<'_, C>) = match target {
        FaultTarget::Solver => {
            let case = undirected(0);
            (
                case.graph.n(),
                Box::new(move |comm| {
                    check_solver(comm, &case, 1e-6, &tol).map_err(|e| Box::new(e) as _)
                }),
            )
        }
        FaultTarget::Resistance => {
            let case = undirected(0);
            (
                case.graph.n(),
                Box::new(move |comm| {
                    check_resistance(comm, &case, &tol).map_err(|e| Box::new(e) as _)
                }),
            )
        }
        FaultTarget::Sparsifier => {
            let case = undirected(2);
            (
                case.graph.n(),
                Box::new(move |comm| {
                    check_sparsifier(comm, &case, &tol).map_err(|e| Box::new(e) as _)
                }),
            )
        }
        FaultTarget::Orientation => {
            let case = corpus::eulerian_corpus(0).swap_remove(0);
            (
                case.graph.n(),
                Box::new(move |comm| check_orientation(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
        FaultTarget::Rounding => {
            let case = flow();
            (
                case.graph.n(),
                Box::new(move |comm| check_rounding(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
        FaultTarget::MaxFlow => {
            let case = flow();
            (
                case.graph.n(),
                Box::new(move |comm| check_maxflow_ipm(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
        FaultTarget::FordFulkerson => {
            let case = flow();
            (
                case.graph.n(),
                Box::new(move |comm| check_maxflow_ff(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
        FaultTarget::TrivialFlow => {
            let case = flow();
            (
                case.graph.n(),
                Box::new(move |comm| {
                    check_maxflow_trivial(comm, &case).map_err(|e| Box::new(e) as _)
                }),
            )
        }
        FaultTarget::Mcf => {
            let case: DemandCase = corpus::demand_corpus(0).swap_remove(0);
            (
                case.graph.n() + 2,
                Box::new(move |comm| check_mcf(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
        FaultTarget::Sssp => {
            let case: ArcCase = corpus::arc_corpus(0).swap_remove(0);
            (
                case.n,
                Box::new(move |comm| check_sssp(comm, &case).map_err(|e| Box::new(e) as _)),
            )
        }
    };

    let mut comm = AdversaryComm::new(make(n), schedule.clone());
    let result = catch_unwind(AssertUnwindSafe(|| run(&mut comm)));
    let events = comm.faults_observed();
    let detectable = schedule
        .scheduled()
        .all(|(_, s)| *s != AdversaryStrategy::Corrupt);
    let (outcome, rooted, detail) = match result {
        Ok(Ok(rounds)) => (
            CellOutcome::Tolerated,
            false,
            format!("oracle-correct in {rounds} rounds"),
        ),
        Ok(Err(e)) => (
            CellOutcome::Detected,
            comm_rooted(e.as_ref()),
            e.to_string(),
        ),
        Err(_) => (
            CellOutcome::Corrupted,
            false,
            "checker panicked (wrong answer or crash)".to_string(),
        ),
    };
    AdversaryCell {
        pipeline: target,
        strategy: name.to_string(),
        detectable,
        outcome,
        comm_rooted: rooted,
        events,
        detail,
    }
}

/// The ten fault-suite pipelines, in [`crate::fault_plans`] order.
fn pipelines() -> [FaultTarget; 10] {
    [
        FaultTarget::Solver,
        FaultTarget::Resistance,
        FaultTarget::Sparsifier,
        FaultTarget::Orientation,
        FaultTarget::Rounding,
        FaultTarget::MaxFlow,
        FaultTarget::FordFulkerson,
        FaultTarget::TrivialFlow,
        FaultTarget::Mcf,
        FaultTarget::Sssp,
    ]
}

/// Runs the full chaos matrix — every pipeline under every slate
/// schedule — over substrates from `make` (one fresh substrate per
/// cell). The report is deterministic and bitwise identical across
/// substrates for any deterministic `make`.
pub fn run_adversary_suite_on<C: Communicator>(make: impl Fn(usize) -> C) -> AdversaryReport {
    let slate = adversary_schedules();
    let mut cells = Vec::with_capacity(pipelines().len() * slate.len());
    for target in pipelines() {
        for (name, schedule) in &slate {
            cells.push(run_cell(target, name, schedule, &make));
        }
    }
    AdversaryReport { cells }
}

/// [`run_adversary_suite_on`] over plain [`Clique`]s — the CI chaos
/// job's plain leg.
pub fn run_adversary_suite() -> AdversaryReport {
    run_adversary_suite_on(Clique::new)
}
