//! Sequential reference oracles.
//!
//! Textbook implementations against plain graph data — deliberately
//! boring, single-threaded, and free of any dependence on the
//! communication model. They are the ground truth the distributed
//! pipelines are differenced against: where the workspace already ships
//! a sequential baseline (Dinic, the cc-mcf SSP), the oracle here is an
//! *independent second implementation* (Edmonds–Karp, a Bellman–Ford
//! SSP), so a shared bug cannot silently certify itself.

use cc_graph::{DiGraph, Graph};
use cc_linalg::{laplacian_from_edges, laplacian_quadratic_form, GroundedCholesky, LinalgError};

/// Exact solution of `L x = b` (zero mean per connected component) via
/// the dense/grounded LDLᵀ factorization, for differencing against the
/// distributed Chebyshev solver.
///
/// # Errors
///
/// [`LinalgError`] if the grounded factorization fails (numerically
/// degenerate weights).
///
/// # Panics
///
/// Panics if `b.len() != n`.
pub fn dense_laplacian_solve(
    n: usize,
    edges: &[(usize, usize, f64)],
    b: &[f64],
) -> Result<Vec<f64>, LinalgError> {
    assert_eq!(b.len(), n, "rhs length mismatch");
    let lap = laplacian_from_edges(n, edges);
    let chol = GroundedCholesky::new(&lap)?;
    let mut x = chol.solve(b);
    // Project to zero mean per component — the normal form the
    // distributed solver returns.
    let comp = chol.components();
    let num = comp.iter().copied().max().map_or(0, |c| c + 1);
    let mut sums = vec![0.0; num];
    let mut counts = vec![0usize; num];
    for (v, &c) in comp.iter().enumerate() {
        sums[c] += x[v];
        counts[c] += 1;
    }
    for (v, &c) in comp.iter().enumerate() {
        x[v] -= sums[c] / counts[c].max(1) as f64;
    }
    Ok(x)
}

/// Exact effective resistance between `s` and `t` by a dense solve of
/// `L x = e_s − e_t` and reading `x_s − x_t`.
///
/// # Errors
///
/// [`LinalgError`] if the factorization fails.
///
/// # Panics
///
/// Panics if `s` or `t` is out of range or `s == t`.
pub fn effective_resistance_dense(
    n: usize,
    edges: &[(usize, usize, f64)],
    s: usize,
    t: usize,
) -> Result<f64, LinalgError> {
    assert!(s < n && t < n && s != t, "bad terminals");
    let mut b = vec![0.0; n];
    b[s] = 1.0;
    b[t] = -1.0;
    let x = dense_laplacian_solve(n, edges, &b)?;
    Ok(x[s] - x[t])
}

/// The Laplacian quadratic form `xᵀ L x = Σ w_{uv} (x_u − x_v)²`.
pub fn quadratic_form(edges: &[(usize, usize, f64)], x: &[f64]) -> f64 {
    laplacian_quadratic_form(edges, x)
}

/// Deterministic probe vectors for quadratic-form differencing: `count`
/// vectors on `n` coordinates from a SplitMix64 stream seeded by `seed`,
/// each centered to zero mean (so they lie in the range of a connected
/// Laplacian).
pub fn probe_vectors(n: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let mut v: Vec<f64> = (0..n)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
                .collect();
            let mean = v.iter().sum::<f64>() / n.max(1) as f64;
            for x in &mut v {
                *x -= mean;
            }
            v
        })
        .collect()
}

/// Extreme ratios `xᵀ L_G x / xᵀ S_H x` over probe vectors, where `S_H`
/// is the Schur complement of the star-gadget edge list `gadget_edges`
/// (vertices `>= n` are star centers) onto the original `n` vertices —
/// computed here from scratch, independently of `cc-sparsify`'s own
/// certification. A sparsifier honoring `(1/α)·S_H ⪯ L_G ⪯ α·S_H` must
/// see every ratio inside `[1/α, α]`.
///
/// Returns `(min_ratio, max_ratio)` over the probes with nonzero
/// denominator.
///
/// # Panics
///
/// Panics if two star centers are adjacent (malformed gadget), or a
/// probe has a different length than `n`.
pub fn schur_quadratic_ratio_bounds(
    n: usize,
    gadget_edges: &[(usize, usize, f64)],
    g_edges: &[(usize, usize, f64)],
    probes: &[Vec<f64>],
) -> (f64, f64) {
    // Dense Schur complement S = A_oo − Σ_c w_c w_cᵀ / s_c over the
    // star centers c (pairwise non-adjacent by construction).
    let aux = gadget_edges
        .iter()
        .flat_map(|&(u, v, _)| [u, v])
        .filter(|&v| v >= n)
        .max()
        .map_or(0, |v| v + 1 - n);
    let mut s = vec![0.0; n * n];
    let mut centers: Vec<Vec<(usize, f64)>> = vec![Vec::new(); aux];
    for &(u, v, w) in gadget_edges {
        match (u >= n, v >= n) {
            (false, false) => {
                s[u * n + u] += w;
                s[v * n + v] += w;
                s[u * n + v] -= w;
                s[v * n + u] -= w;
            }
            (false, true) => {
                s[u * n + u] += w;
                centers[v - n].push((u, w));
            }
            (true, false) => {
                s[v * n + v] += w;
                centers[u - n].push((v, w));
            }
            (true, true) => panic!("star centers must not be adjacent"),
        }
    }
    for ws in &centers {
        let total: f64 = ws.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            continue;
        }
        for &(u, wu) in ws {
            for &(v, wv) in ws {
                s[u * n + v] -= wu * wv / total;
            }
        }
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in probes {
        assert_eq!(x.len(), n, "probe length mismatch");
        let num = quadratic_form(g_edges, x);
        let mut den = 0.0;
        for u in 0..n {
            let mut row = 0.0;
            for v in 0..n {
                row += s[u * n + v] * x[v];
            }
            den += x[u] * row;
        }
        if den.abs() > 1e-12 * num.abs().max(1.0) {
            let r = num / den;
            lo = lo.min(r);
            hi = hi.max(r);
        }
    }
    (lo, hi)
}

/// Dijkstra single-source shortest paths over non-negative arcs.
/// `None` marks unreachable vertices.
///
/// # Panics
///
/// Panics on negative arc weights, out-of-range arcs, or
/// `source >= n`.
pub fn dijkstra_sssp(n: usize, arcs: &[(usize, usize, i64)], source: usize) -> Vec<Option<i64>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    assert!(source < n, "source out of range");
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n];
    for &(u, v, w) in arcs {
        assert!(u < n && v < n, "arc out of range");
        assert!(w >= 0, "Dijkstra oracle requires non-negative weights");
        adj[u].push((v, w));
    }
    let mut dist: Vec<Option<i64>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        match dist[u] {
            Some(best) if best <= d => continue,
            _ => dist[u] = Some(d),
        }
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if dist[v].is_none_or(|best| nd < best) {
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Dijkstra all-pairs shortest paths (one SSSP per source).
pub fn dijkstra_apsp(n: usize, arcs: &[(usize, usize, i64)]) -> Vec<Vec<Option<i64>>> {
    (0..n).map(|s| dijkstra_sssp(n, arcs, s)).collect()
}

/// Edmonds–Karp maximum flow (BFS augmenting paths on the residual
/// graph): an independent check on both Dinic and the IPM pipeline.
/// Returns the per-edge flow and its value.
///
/// # Panics
///
/// Panics on bad terminals.
pub fn edmonds_karp(g: &DiGraph, s: usize, t: usize) -> (Vec<i64>, i64) {
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    let n = g.n();
    let m = g.m();
    // Residual arcs 2i (forward) / 2i+1 (backward) for edge i.
    let mut cap: Vec<i64> = Vec::with_capacity(2 * m);
    for e in g.edges() {
        cap.push(e.capacity);
        cap.push(0);
    }
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in g.edges().iter().enumerate() {
        adj[e.from].push(2 * i);
        adj[e.to].push(2 * i + 1);
    }
    let arc_to = |a: usize| {
        let e = g.edge(a / 2);
        if a.is_multiple_of(2) {
            e.to
        } else {
            e.from
        }
    };
    let mut value = 0i64;
    loop {
        // BFS for a shortest augmenting path.
        let mut parent_arc = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(s);
        let mut seen = vec![false; n];
        seen[s] = true;
        while let Some(u) = queue.pop_front() {
            for &a in &adj[u] {
                let v = arc_to(a);
                if !seen[v] && cap[a] > 0 {
                    seen[v] = true;
                    parent_arc[v] = a;
                    queue.push_back(v);
                }
            }
        }
        if !seen[t] {
            break;
        }
        // Bottleneck and augment.
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let a = parent_arc[v];
            bottleneck = bottleneck.min(cap[a]);
            v = if a.is_multiple_of(2) {
                g.edge(a / 2).from
            } else {
                g.edge(a / 2).to
            };
        }
        let mut v = t;
        while v != s {
            let a = parent_arc[v];
            cap[a] -= bottleneck;
            cap[a ^ 1] += bottleneck;
            v = if a.is_multiple_of(2) {
                g.edge(a / 2).from
            } else {
                g.edge(a / 2).to
            };
        }
        value += bottleneck;
    }
    let flow: Vec<i64> = (0..m).map(|i| cap[2 * i + 1]).collect();
    (flow, value)
}

/// Successive-shortest-paths minimum-cost flow for a demand vector
/// `sigma` (positive = supply, negative = demand), using Bellman–Ford on
/// the residual graph so negative reduced costs need no potentials — an
/// independent second implementation against `cc-mcf`'s SSP baseline.
/// Returns `None` when the demands are infeasible.
///
/// # Panics
///
/// Panics if `sigma.len() != g.n()` or the demands don't sum to zero.
pub fn ssp_mcf(g: &DiGraph, sigma: &[i64]) -> Option<(Vec<i64>, i64)> {
    assert_eq!(sigma.len(), g.n(), "demand length mismatch");
    assert_eq!(sigma.iter().sum::<i64>(), 0, "demands must balance");
    let n = g.n();
    let m = g.m();
    let mut flow = vec![0i64; m];
    let mut excess: Vec<i64> = sigma.to_vec();
    while let Some(src) = (0..n).find(|&v| excess[v] > 0) {
        // Bellman–Ford from src on the residual graph.
        const INF: i64 = i64::MAX / 4;
        let mut dist = vec![INF; n];
        let mut parent: Vec<Option<(usize, bool)>> = vec![None; n]; // (edge, forward)
        dist[src] = 0;
        for _ in 0..n {
            let mut improved = false;
            for (i, e) in g.edges().iter().enumerate() {
                if flow[i] < e.capacity && dist[e.from] < INF {
                    let nd = dist[e.from] + e.cost;
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        parent[e.to] = Some((i, true));
                        improved = true;
                    }
                }
                if flow[i] > 0 && dist[e.to] < INF {
                    let nd = dist[e.to] - e.cost;
                    if nd < dist[e.from] {
                        dist[e.from] = nd;
                        parent[e.from] = Some((i, false));
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        // Route to the closest reachable deficit vertex.
        let sink = (0..n)
            .filter(|&v| excess[v] < 0 && dist[v] < INF)
            .min_by_key(|&v| (dist[v], v))?;
        // Bottleneck along the path.
        let mut bottleneck = excess[src].min(-excess[sink]);
        let mut v = sink;
        while v != src {
            let (i, fwd) = parent[v].expect("path exists");
            let e = g.edge(i);
            bottleneck = bottleneck.min(if fwd { e.capacity - flow[i] } else { flow[i] });
            v = if fwd { e.from } else { e.to };
        }
        let mut v = sink;
        while v != src {
            let (i, fwd) = parent[v].expect("path exists");
            let e = g.edge(i);
            if fwd {
                flow[i] += bottleneck;
            } else {
                flow[i] -= bottleneck;
            }
            v = if fwd { e.from } else { e.to };
        }
        excess[src] -= bottleneck;
        excess[sink] += bottleneck;
    }
    let cost: i64 = g.edges().iter().zip(&flow).map(|(e, &f)| e.cost * f).sum();
    Some((flow, cost))
}

/// Independent Eulerian-orientation certificate: `oriented[e] = true`
/// sends edge `e` from `u` to `v`; valid iff every vertex has in-degree
/// equal to out-degree.
pub fn orientation_balanced(g: &Graph, oriented: &[bool]) -> bool {
    if oriented.len() != g.m() {
        return false;
    }
    let mut balance = vec![0i64; g.n()];
    for (e, &fwd) in oriented.iter().enumerate() {
        let edge = g.edge(e);
        if fwd {
            balance[edge.u] += 1;
            balance[edge.v] -= 1;
        } else {
            balance[edge.v] += 1;
            balance[edge.u] -= 1;
        }
    }
    balance.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn dense_solve_matches_series_resistance() {
        let edges: Vec<(usize, usize, f64)> = (0..7).map(|i| (i, i + 1, 1.0)).collect();
        let r = effective_resistance_dense(8, &edges, 0, 7).unwrap();
        assert!((r - 7.0).abs() < 1e-9, "series chain, got {r}");
    }

    #[test]
    fn dense_solve_is_zero_mean_per_component() {
        // Two disjoint paths.
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 2.0)];
        let mut b = vec![0.0; 5];
        b[0] = 1.0;
        b[2] = -1.0;
        let x = dense_laplacian_solve(5, &edges, &b).unwrap();
        assert!((x[0] + x[1] + x[2]).abs() < 1e-12);
        assert!((x[3] + x[4]).abs() < 1e-12);
    }

    #[test]
    fn dijkstra_matches_hand_distances() {
        let arcs = vec![(0, 1, 2), (1, 2, 3), (0, 2, 10), (2, 3, 1)];
        let d = dijkstra_sssp(4, &arcs, 0);
        assert_eq!(d, vec![Some(0), Some(2), Some(5), Some(6)]);
        let all = dijkstra_apsp(4, &arcs);
        assert_eq!(all[1][3], Some(4));
        assert_eq!(all[3][0], None);
    }

    #[test]
    fn edmonds_karp_agrees_with_dinic() {
        for seed in 0..6 {
            let g = generators::random_flow_network(10, 22, 5, seed);
            let (_, want) = cc_maxflow_dinic(&g, 0, 9);
            let (flow, value) = edmonds_karp(&g, 0, 9);
            assert_eq!(value, want, "seed {seed}");
            assert!(g.is_feasible_flow(&flow, &g.st_demand(0, 9, value)));
        }
    }

    // Local re-implementation guard: call through the real Dinic to keep
    // this test honest without a dev-dependency cycle.
    fn cc_maxflow_dinic(g: &DiGraph, s: usize, t: usize) -> (Vec<i64>, i64) {
        cc_maxflow::dinic(g, s, t)
    }

    #[test]
    fn ssp_oracle_finds_optimal_assignment() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 9, 3);
        let (flow, cost) = ssp_mcf(&g, &sigma).unwrap();
        assert!(g.is_feasible_flow(&flow, &sigma));
        let (_, want) = cc_mcf::ssp_min_cost_flow(&g, &sigma).unwrap();
        assert_eq!(cost, want);
    }

    #[test]
    fn ssp_oracle_reports_infeasible() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1, 1);
        // Vertex 2 demands a unit no edge can deliver.
        assert!(ssp_mcf(&g, &[1, 0, -1]).is_none());
    }

    #[test]
    fn probe_vectors_are_deterministic_and_centered() {
        let a = probe_vectors(12, 4, 7);
        let b = probe_vectors(12, 4, 7);
        assert_eq!(a, b);
        for v in &a {
            assert!(v.iter().sum::<f64>().abs() < 1e-9);
        }
    }

    #[test]
    fn orientation_certificate_rejects_imbalance() {
        let g = generators::cycle(4);
        assert!(orientation_balanced(&g, &[true, true, true, true]));
        assert!(!orientation_balanced(&g, &[true, false, true, true]));
        assert!(!orientation_balanced(&g, &[true; 3]));
    }
}
