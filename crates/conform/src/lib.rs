//! # cc-conform — differential conformance harness
//!
//! Every theorem pipeline in this workspace is checked against a
//! *sequential reference oracle* on a *seeded instance corpus*, under
//! *every transport* — the plain simulator, the tracing wrapper, and
//! stacked fault-injecting wrappers. The three layers:
//!
//! * [`oracle`] — textbook sequential implementations (dense grounded
//!   Laplacian solves, Dijkstra, Edmonds–Karp, successive shortest
//!   paths, brute-force effective resistance and quadratic-form probes)
//!   written against plain graph data, with **no dependence on the
//!   communication model**. These are the ground truth the distributed
//!   pipelines must agree with.
//! * [`corpus`] — a deterministic instance corpus with stable IDs over
//!   the `cc-graph` generators: paths, grids, expanders, random weighted
//!   graphs, adversarially near-disconnected graphs, and high-dynamic-
//!   range weights. `CONFORM_CASES=N` scales the randomized slice for
//!   soak runs without changing the base corpus.
//! * [`driver`] — the differential checkers, generic over
//!   `C: Communicator`: run a public entry point on a corpus instance,
//!   compare against the oracle within a typed [`driver::Tolerances`],
//!   and return the round count so callers can assert theorem shapes via
//!   [`shapes`]. [`driver::fault_plans`] enumerates per-pipeline
//!   [`FaultPlan`]s whose injected faults must surface as typed errors —
//!   never panics, never silently wrong results.
//! * [`adversary`] — the chaos matrix: [`run_adversary_suite`] replays
//!   every checker under seeded node-level adversary schedules
//!   (silent, crash–recover, value-corrupting `cc_model::AdversaryComm`
//!   nodes), classifying each (pipeline × strategy) cell as detected /
//!   tolerated / corrupted and enforcing that omission adversaries can
//!   never corrupt silently. `CONFORM_ADVERSARY_CASES=N` extends the
//!   slate for chaos soak runs.
//! * [`service`] — a seeded soak driver for the `cc-service` engine:
//!   [`run_service_soak`] replays a randomized typed request stream
//!   against the whole corpus registered in one long-lived
//!   `FlowEngine`, spot-checking sampled responses against the same
//!   oracles and fingerprinting every response for cross-run and
//!   cross-thread-count bitwise comparison.
//!
//! The harness is itself deterministic: same corpus, same probes, same
//! fault streams on every run and every thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod corpus;
pub mod driver;
pub mod oracle;
pub mod service;
pub mod shapes;

pub use adversary::{
    adversary_schedules, run_adversary_suite, run_adversary_suite_on, AdversaryCell,
    AdversaryReport, CellOutcome,
};
pub use cc_model::{AdversaryComm, AdversarySchedule, AdversaryStrategy, FaultComm, FaultPlan};
pub use corpus::{
    adversary_case_budget, arc_corpus, broadcast_case_budget, case_budget, demand_corpus,
    eulerian_corpus, flow_corpus, undirected_corpus, ArcCase, DemandCase, FlowCase, UndirectedCase,
};
pub use driver::{fault_plans, FaultTarget, Tolerances};
pub use service::{run_service_soak, run_service_soak_on, SoakConfig, SoakReport};
