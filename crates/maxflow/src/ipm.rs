//! Mądry's interior point method in the congested clique
//! (Algorithm 2 + Augmentation/Fixing/Boosting of Appendix B).
//!
//! The implementation keeps the paper's control flow and communication
//! profile — per progress step one `Augmentation` electrical solve plus
//! one `Fixing` electrical solve (both through the Theorem 1.1 Laplacian
//! solver, every round charged), `‖ρ‖₃`-gated step sizes, and a boosting
//! rule for congested edges — with two documented engineering deviations
//! (`DESIGN.md` §2.5): boosting damps congested edges in place instead of
//! physically splitting arcs, and progress steps terminate early once the
//! target value is reached or the step size stalls. Exactness of the final
//! flow never depends on the IPM: rounding + repair finish the job
//! unconditionally.
//!
//! Since the barrier-engine refactor (`DESIGN.md` §8) this module is a
//! thin *problem adapter*: it supplies the transformed-graph barrier
//! gradient, the `‖ρ‖₃` step rule and the rounding/repair hooks, while
//! [`cc_ipm::BarrierEngine`] owns the electrical builds (with sparsifier
//! template reuse), the allocation-free solve workspace and the
//! per-stage [`EngineStats`].

use cc_apsp::RoundModel;
use cc_core::{ElectricalFlow, SolverOptions};
use cc_graph::DiGraph;
use cc_ipm::{BarrierEngine, EngineOptions, EngineStats, EDGE_CHUNK};
use cc_model::Communicator;
use cc_sparsify::TemplateCache;

use crate::error::comm_rooted;
use crate::residual::augment_to_optimality;
use crate::rounding_bridge::{snap_to_delta_multiples, SnapOutcome};
use crate::MaxFlowError;

/// Options of [`max_flow_ipm`].
#[derive(Debug, Clone, Copy)]
pub struct IpmOptions {
    /// Accuracy of every Laplacian solve (`Ω(1/poly m)` per the paper).
    pub solver_eps: f64,
    /// Progress-step budget; `None` selects the paper's
    /// `Õ(m^{3/7} U^{1/7})` formula (with small constants suited to
    /// simulable sizes).
    pub max_progress_steps: Option<usize>,
    /// Mądry's trade-off parameter `η` (paper: `1/14 − o(1)`); controls
    /// the boosting threshold `m^{1/2−η}/33` and boost set size `m^{4η}`.
    pub eta: f64,
    /// Round accounting model of the repair phase's APSP calls.
    pub round_model: RoundModel,
    /// Laplacian solver (sparsifier) options.
    pub solver: SolverOptions,
    /// Reuse one expander decomposition across the IPM's electrical
    /// solves (the edge support never changes; per-cluster certificates
    /// are recomputed exactly per step — see
    /// `cc_sparsify::SparsifierTemplate`). Default true; disable to
    /// measure the rebuild-every-step cost the paper's accounting assumes.
    pub reuse_sparsifier: bool,
}

impl Default for IpmOptions {
    fn default() -> Self {
        Self {
            solver_eps: 1e-10,
            max_progress_steps: None,
            eta: 1.0 / 14.0,
            round_model: RoundModel::FastMatMul,
            solver: SolverOptions {
                // The IPM never reads the exact reference solution; skip
                // its O(n³) factorization per electrical solve.
                skip_reference: true,
                ..SolverOptions::default()
            },
            reuse_sparsifier: true,
        }
    }
}

/// The engine-facing slice of [`IpmOptions`].
fn engine_options(options: &IpmOptions) -> EngineOptions {
    EngineOptions {
        solver_eps: options.solver_eps,
        solver: options.solver,
        reuse_sparsifier: options.reuse_sparsifier,
    }
}

/// Execution statistics of the pipeline — what the E6 experiment reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpmStats {
    /// Progress steps executed (Augmentation + Fixing pairs).
    pub progress_steps: usize,
    /// Boosting steps executed.
    pub boosting_steps: usize,
    /// Fraction of the target the IPM routed before rounding (`0..=1`).
    pub ipm_progress: f64,
    /// `s`-`t` value of the integral flow right after rounding.
    pub rounded_value: i64,
    /// Augmenting paths the repair phase needed.
    pub repair_paths: usize,
    /// True if the snap/rounding guard rejected the fractional flow and the
    /// repair started from zero (pure Ford–Fulkerson fallback).
    pub fell_back_to_zero: bool,
    /// Per-stage barrier-engine accounting (`augmentation` / `fixing` /
    /// `cleanup` solves, Chebyshev iterations, sparsifier builds vs
    /// template reuses, ledger rounds).
    pub engine: EngineStats,
}

/// Result of a distributed max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowOutcome {
    /// Exact maximum flow, one value per edge of the input graph.
    pub flow: Vec<i64>,
    /// Its value.
    pub value: i64,
    /// Pipeline statistics.
    pub stats: IpmStats,
}

/// The paper's default progress-step budget `Õ(m^{3/7} U^{1/7})`, with
/// constants scaled for simulable instances.
pub fn default_step_budget(m: usize, max_capacity: i64) -> usize {
    let m = m.max(2) as f64;
    let u = max_capacity.max(1) as f64;
    let steps = 2.0 * m.powf(3.0 / 7.0) * u.powf(1.0 / 7.0) * (u + 2.0).ln();
    (steps.ceil() as usize).clamp(8, 600)
}

/// Kind of a transformed (Algorithm 2 lines 1–4) edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TKind {
    /// The `(a, b)` copy of original arc `e`.
    Original(usize),
    /// The `(s, b)` auxiliary edge of arc `e`.
    AuxS(usize),
    /// The `(a, t)` auxiliary edge of arc `e`.
    AuxT(usize),
    /// One of the `m` preconditioner `(t, s)` edges (capacity `2U`).
    Precond,
}

/// A two-sided ("undirected") edge of the transformed graph: flow
/// `x ∈ (−cap, +cap)`, barrier on both residuals.
#[derive(Debug, Clone, Copy)]
struct TEdge {
    a: usize,
    b: usize,
    cap: f64,
    kind: TKind,
}

fn transform(g: &DiGraph, s: usize, t: usize) -> Vec<TEdge> {
    let u_max = g.max_capacity().max(1) as f64;
    let mut edges = Vec::with_capacity(4 * g.m());
    for (i, e) in g.edges().iter().enumerate() {
        let cap = e.capacity.max(1) as f64;
        edges.push(TEdge {
            a: e.from,
            b: e.to,
            cap,
            kind: TKind::Original(i),
        });
        if e.to != s {
            edges.push(TEdge {
                a: s,
                b: e.to,
                cap,
                kind: TKind::AuxS(i),
            });
        }
        if e.from != t {
            edges.push(TEdge {
                a: e.from,
                b: t,
                cap,
                kind: TKind::AuxT(i),
            });
        }
    }
    for _ in 0..g.m() {
        edges.push(TEdge {
            a: t,
            b: s,
            cap: 2.0 * u_max,
            kind: TKind::Precond,
        });
    }
    edges
}

/// The transformed-graph barrier gradient, one fixed chunk at a time:
/// `r_e = d_e²(1/gf² + 1/gb²)`, both residuals floored at `gap_floor`
/// (`NEG_INFINITY` leaves them untouched). Handed to
/// [`BarrierEngine::resistances_into`]; every slot is a pure function of
/// its edge index, so the fan-out is bitwise thread-count independent.
fn fill_barrier(
    t_edges: &[TEdge],
    x: &[f64],
    damp: &[f64],
    gap_floor: f64,
    base: usize,
    out: &mut [(usize, usize, f64)],
) {
    for (j, slot) in out.iter_mut().enumerate() {
        let i = base + j;
        let te = &t_edges[i];
        let gf = (te.cap - x[i]).max(gap_floor);
        let gb = (te.cap + x[i]).max(gap_floor);
        let de = damp[i];
        let r = de * de * (1.0 / (gf * gf) + 1.0 / (gb * gb));
        *slot = (te.a, te.b, r.clamp(1e-12, 1e12));
    }
}

/// The interior point method core: returns the recovered fractional flow
/// on the ORIGINAL arcs plus statistics. Charges every electrical solve's
/// rounds to `clique`.
fn ipm_core<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    s: usize,
    t: usize,
    options: &IpmOptions,
    cache: Option<&TemplateCache>,
) -> Result<(Vec<f64>, IpmStats), MaxFlowError> {
    let t_edges = transform(g, s, t);
    let mt = t_edges.len();
    let n = g.n();
    let mut x = vec![0.0f64; mt]; // strictly interior at 0 by construction
    let mut y = vec![0.0f64; n]; // dual iterate (Algorithm 2 line 5)
    let mut damp = vec![1.0f64; mt]; // boosting-lite damping
    let mut stats = IpmStats::default();
    let mut engine: BarrierEngine<C> = BarrierEngine::new(n, engine_options(options));
    if let Some(cache) = cache {
        engine.set_template_cache(cache.clone());
    }

    // Per-iteration buffers, sized once: the steady-state loop body's
    // solve path allocates nothing (see `crates/ipm/tests/alloc_free.rs`).
    let mut chi = vec![0.0f64; n];
    let mut residue = vec![0.0f64; n];
    let mut minus: Vec<f64> = Vec::with_capacity(n);
    let mut electrical = ElectricalFlow::default();
    let mut correction = ElectricalFlow::default();

    // Target: route the original upper bound plus the Σu/2 the gadget
    // absorbs (see DESIGN.md §2.5 — overshoot is safe, congestion control
    // stalls gracefully and repair finishes exactly).
    let cap_out: i64 = g.out_edges(s).iter().map(|&e| g.edge(e).capacity).sum();
    let cap_in: i64 = g.in_edges(t).iter().map(|&e| g.edge(e).capacity).sum();
    let f_ub = cap_out.min(cap_in) as f64;
    let gadget_half: f64 = g.edges().iter().map(|e| e.capacity as f64 / 2.0).sum();
    let f_target = f_ub + gadget_half;
    if f_target <= 0.0 {
        return Ok((vec![0.0; g.m()], stats));
    }

    let budget = options
        .max_progress_steps
        .unwrap_or_else(|| default_step_budget(g.m(), g.max_capacity()));
    let m_f = (g.m().max(2)) as f64;
    let rho_threshold = m_f.powf(0.5 - options.eta) / 33.0;
    let boost_size = (m_f.powf(4.0 * options.eta).ceil() as usize).max(1);

    let value = |x: &[f64]| -> f64 {
        let mut v = 0.0;
        for (xe, te) in x.iter().zip(&t_edges) {
            if te.a == s {
                v += xe;
            }
            if te.b == s {
                v -= xe;
            }
        }
        v
    };

    clique.phase("maxflow_ipm", |clique| -> Result<(), MaxFlowError> {
        for _step in 0..budget {
            let routed = value(&x);
            let remaining = f_target - routed;
            if remaining <= 0.25 {
                break;
            }
            // ---- Augmentation (Algorithm 3) ----
            let min_gap = engine.resistances_into(
                mt,
                |base, out| fill_barrier(&t_edges, &x, &damp, f64::NEG_INFINITY, base, out),
                |i| {
                    let te = &t_edges[i];
                    (te.cap - x[i]).min(te.cap + x[i])
                },
            );
            if min_gap < 1e-7 {
                break; // numerically at the boundary: hand over to repair
            }
            let net = match engine.build_network(clique, "augmentation") {
                Ok(net) => net,
                // Comm-rooted failures (injected faults, congestion
                // rejections) must surface; numerical degradation hands
                // over to repair as before.
                Err(e) if comm_rooted(&e) => return Err(e.into()),
                Err(_) => break,
            };
            chi.fill(0.0);
            chi[s] = remaining;
            chi[t] = -remaining;
            engine.flow_into(clique, "augmentation", &net, &chi, &mut electrical)?;
            let f_tilde = &electrical.flows;

            // Congestion vector ρ (Algorithm 2 lines 7/14); one broadcast
            // round aggregates the norms.
            let mut rho3 = 0.0f64;
            let mut rho_raw_inf = 0.0f64;
            for ((te, &xe), (&fe, &de)) in t_edges.iter().zip(&x).zip(f_tilde.iter().zip(&damp)) {
                let gap = (te.cap - xe).min(te.cap + xe);
                let rho = fe / (de * gap);
                rho3 += rho.abs().powi(3);
                rho_raw_inf = rho_raw_inf.max((fe / gap).abs());
            }
            let rho3 = rho3.cbrt();
            engine.norm_roundtrip(clique)?;

            if rho3 > rho_threshold {
                // ---- Boosting (Algorithm 5, damping stand-in) ----
                // Deviation from the strict either/or of Algorithm 2: at
                // simulable sizes the asymptotic threshold constants would
                // starve progress entirely, so boosting is applied *in
                // addition to* (not instead of) the progress step.
                let mut by_rho: Vec<(usize, f64)> = t_edges
                    .iter()
                    .zip(&x)
                    .zip(f_tilde.iter().zip(&damp))
                    .enumerate()
                    .map(|(i, ((te, &xe), (&fe, &de)))| {
                        let gap = (te.cap - xe).min(te.cap + xe);
                        (i, (fe / (de * gap)).abs())
                    })
                    .collect();
                by_rho.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .expect("finite rho")
                        .then(a.0.cmp(&b.0))
                });
                for &(i, _) in by_rho.iter().take(boost_size) {
                    damp[i] *= 2.0;
                }
                stats.boosting_steps += 1;
                // Selecting S* globally: one small allgather.
                engine.norm_roundtrip(clique)?;
            }

            // Step size: the paper's 1/(33‖ρ‖₃) rule, capped by hard
            // feasibility (δ·|f̃| must stay inside every gap) and by
            // full completion (δ = 1 routes everything).
            let delta = (1.0 / (33.0 * rho3.max(1e-12)))
                .min(0.25 / rho_raw_inf.max(1e-12))
                .min(1.0);
            if delta * remaining < 1e-9 {
                break; // stalled
            }
            cc_linalg::par::par_chunks_mut(&mut x, EDGE_CHUNK, |ci, xs| {
                let base = ci * EDGE_CHUNK;
                for (j, xe) in xs.iter_mut().enumerate() {
                    *xe += delta * f_tilde[base + j];
                }
            });
            for (yv, &phi) in y.iter_mut().zip(&electrical.potentials) {
                *yv += delta * phi;
            }

            // ---- Fixing (Algorithm 4): electrical correction of the
            // conservation residue accumulated by the approximate solve ----
            let target_routed = routed + delta * remaining;
            residue.fill(0.0);
            for (xe, te) in x.iter().zip(&t_edges) {
                residue[te.a] += xe;
                residue[te.b] -= xe;
            }
            residue[s] -= target_routed;
            residue[t] += target_routed;
            let resid_norm: f64 = residue.iter().map(|r| r * r).sum::<f64>().sqrt();
            engine.record_residual("fixing", resid_norm);
            if resid_norm > 1e-12 {
                engine.resistances_into(
                    mt,
                    |base, out| fill_barrier(&t_edges, &x, &damp, 1e-9, base, out),
                    |_| f64::INFINITY, // gap unused on the fixing build
                );
                let net2 = match engine.build_network(clique, "fixing") {
                    Ok(net2) => Some(net2),
                    Err(e) if comm_rooted(&e) => return Err(e.into()),
                    Err(_) => None,
                };
                if let Some(net2) = net2 {
                    minus.clear();
                    minus.extend(residue.iter().map(|r| -r));
                    engine.flow_into(clique, "fixing", &net2, &minus, &mut correction)?;
                    // Guarded application: halve until strictly feasible.
                    let mut scale = 1.0;
                    'guard: for _ in 0..40 {
                        let ok = t_edges.iter().zip(&x).zip(&correction.flows).all(
                            |((te, &xe), &ce)| {
                                let nx = xe + scale * ce;
                                nx < te.cap - 1e-9 && nx > -te.cap + 1e-9
                            },
                        );
                        if ok {
                            for ((xe, &ce), (yv, &pv)) in x
                                .iter_mut()
                                .zip(&correction.flows)
                                .zip(y.iter_mut().zip(&correction.potentials))
                            {
                                *xe += scale * ce;
                                *yv += scale * pv;
                            }
                            break 'guard;
                        }
                        scale *= 0.5;
                    }
                }
            }
            stats.progress_steps += 1;
        }

        let routed = value(&x).max(0.0);
        stats.ipm_progress = if f_target > 0.0 {
            (routed / f_target).clamp(0.0, 1.0)
        } else {
            1.0
        };
        Ok(())
    })?;
    stats.engine = engine.into_stats();

    // Recover a fractional flow on the original arcs via the gadget
    // correspondence f_e = x₁ + (x₂ + x₃)/2 (an original flow f maps to
    // x₁ = f − c, x₂ = x₃ = c; see DESIGN.md §2.5), clamped to [0, u_e].
    // Arcs whose aux edge was suppressed (endpoint coincidence) use the
    // surviving aux flow alone.
    let mut x1 = vec![0.0f64; g.m()];
    let mut aux_sum = vec![0.0f64; g.m()];
    let mut aux_cnt = vec![0u32; g.m()];
    for (xe, te) in x.iter().zip(&t_edges) {
        match te.kind {
            TKind::Original(e) => x1[e] = *xe,
            TKind::AuxS(e) | TKind::AuxT(e) => {
                aux_sum[e] += *xe;
                aux_cnt[e] += 1;
            }
            TKind::Precond => {}
        }
    }
    let mut recovered = vec![0.0f64; g.m()];
    for e in 0..g.m() {
        let u = g.edge(e).capacity as f64;
        let c = if aux_cnt[e] > 0 {
            aux_sum[e] / aux_cnt[e] as f64
        } else {
            u / 2.0
        };
        recovered[e] = (x1[e] + c).clamp(0.0, u);
    }
    Ok((recovered, stats))
}

/// Post-IPM conservation cleanup on the original graph: the gadget
/// recovery (`f_e = x_(a,b) + u_e/2`, clamped) leaves conservation
/// violations proportional to how far the transformed iterate drifted off
/// center. A few electrical correction solves — the Fixing pattern of
/// Algorithm 4 applied to the original network — shrink them to solver
/// precision so the spanning-forest snap succeeds. All rounds charged.
/// Runs on its own [`BarrierEngine`] (different edge support than the
/// transformed graph); returns its engine statistics for merging.
fn fractional_cleanup<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    f: &mut [f64],
    s: usize,
    t: usize,
    options: &IpmOptions,
    cache: Option<&TemplateCache>,
) -> Result<EngineStats, MaxFlowError> {
    let n = g.n();
    let edges = g.edges();
    let mut engine: BarrierEngine<C> = BarrierEngine::new(n, engine_options(options));
    if let Some(cache) = cache {
        engine.set_template_cache(cache.clone());
    }
    let mut violation = vec![0.0f64; n];
    let mut minus: Vec<f64> = Vec::with_capacity(n);
    let mut corr = ElectricalFlow::default();
    clique.phase("maxflow_cleanup", |clique| -> Result<(), MaxFlowError> {
        for _ in 0..6 {
            // Conservation violation at non-terminals.
            violation.fill(0.0);
            for (i, e) in edges.iter().enumerate() {
                violation[e.from] += f[i];
                violation[e.to] -= f[i];
            }
            violation[s] = 0.0;
            violation[t] = 0.0;
            let worst = violation.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if worst < 1e-9 {
                break;
            }
            let flows: &[f64] = f;
            engine.resistances_into(
                g.m(),
                |base, out| {
                    for (j, slot) in out.iter_mut().enumerate() {
                        let i = base + j;
                        let e = &edges[i];
                        let u = e.capacity as f64;
                        let gf = (u - flows[i]).max(1e-6);
                        let gb = flows[i].max(1e-6);
                        *slot = (
                            e.from,
                            e.to,
                            (1.0 / (gf * gf) + 1.0 / (gb * gb)).clamp(1e-12, 1e12),
                        );
                    }
                },
                |_| f64::INFINITY, // the cleanup pass has no gap cutoff
            );
            let net = match engine.build_network(clique, "cleanup") {
                Ok(net) => net,
                Err(e) if comm_rooted(&e) => return Err(e.into()),
                Err(_) => break,
            };
            minus.clear();
            minus.extend(violation.iter().map(|v| -v));
            engine.flow_into(clique, "cleanup", &net, &minus, &mut corr)?;
            // Apply with step halving so f stays within [0, u].
            let mut scale = 1.0;
            for _ in 0..40 {
                let ok = edges
                    .iter()
                    .zip(f.iter())
                    .zip(&corr.flows)
                    .all(|((e, &fe), &ce)| {
                        let nf = fe + scale * ce;
                        (0.0..=e.capacity as f64).contains(&nf)
                    });
                if ok {
                    for (fe, &ce) in f.iter_mut().zip(&corr.flows) {
                        *fe += scale * ce;
                    }
                    break;
                }
                scale *= 0.5;
            }
            if scale < 1e-9 {
                break;
            }
        }
        Ok(())
    })?;
    Ok(engine.into_stats())
}

/// Exact deterministic maximum flow in the congested clique
/// (Theorem 1.2): IPM → flow rounding (Lemma 4.2) → augmenting-path
/// repair. See the crate docs for the pipeline and accounting.
///
/// # Errors
///
/// [`MaxFlowError`] if the communication substrate rejects a primitive
/// call in any stage (IPM solves, rounding, repair) — injected faults
/// surface here, never as panics or silently wrong flows.
///
/// # Panics
///
/// Panics if terminals are invalid or `clique.n() < g.n()`.
pub fn max_flow_ipm<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    s: usize,
    t: usize,
    options: &IpmOptions,
) -> Result<MaxFlowOutcome, MaxFlowError> {
    max_flow_ipm_inner(clique, g, s, t, options, None)
}

/// Shared implementation of [`max_flow_ipm`] (no cache) and
/// [`crate::MaxFlowSession::max_flow`] (session-owned [`TemplateCache`]):
/// with a cache, both engines (IPM core on the transformed support,
/// cleanup on the original support) consult it before their first
/// sparsifier build and publish what they capture. Per-cluster
/// certificates are recomputed exactly on every instantiation, so the
/// flow value is identical with or without the cache (iteration counts,
/// and hence bit-level flows, may differ when the certified `α` of a
/// cached template differs from a fresh build's).
pub(crate) fn max_flow_ipm_inner<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    s: usize,
    t: usize,
    options: &IpmOptions,
    cache: Option<&TemplateCache>,
) -> Result<MaxFlowOutcome, MaxFlowError> {
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    assert!(clique.n() >= g.n(), "clique too small");
    clique.phase("maxflow", |clique| {
        let (mut fractional, mut stats) = if g.m() == 0 {
            (Vec::new(), IpmStats::default())
        } else {
            ipm_core(clique, g, s, t, options, cache)?
        };
        if g.m() > 0 {
            let cleanup = fractional_cleanup(clique, g, &mut fractional, s, t, options, cache)?;
            stats.engine.merge(&cleanup);
        }

        // Δ = 2^{-⌈log₂(2m)⌉} ≤ 1/(2m): the precision the IPM maintains.
        let k = ((2 * g.m().max(1)) as f64).log2().ceil() as u32;
        let delta = 1.0 / (1u64 << k.min(40)) as f64;

        let mut flow: Vec<i64> = vec![0; g.m()];
        if g.m() > 0 {
            match snap_to_delta_multiples(g, &fractional, s, t, delta) {
                SnapOutcome::Snapped(snapped) => {
                    let rounded = cc_euler::round_flow(
                        clique,
                        g,
                        &snapped,
                        s,
                        t,
                        delta,
                        &cc_euler::FlowRoundingOptions::default(),
                    )?;
                    let value = g.flow_value(&rounded.flow, s);
                    if g.is_feasible_flow(&rounded.flow, &g.st_demand(s, t, value)) {
                        flow = rounded.flow;
                        stats.rounded_value = value;
                    } else {
                        stats.fell_back_to_zero = true;
                    }
                }
                SnapOutcome::Infeasible => {
                    stats.fell_back_to_zero = true;
                }
            }
        }

        let repair = augment_to_optimality(clique, g, &mut flow, s, t, options.round_model)?;
        stats.repair_paths = repair.paths;
        let value = g.flow_value(&flow, s);
        Ok(MaxFlowOutcome { flow, value, stats })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use cc_graph::generators;
    use cc_model::Clique;

    fn check_exact(g: &DiGraph, s: usize, t: usize) -> (MaxFlowOutcome, u64) {
        let (_, want) = dinic(g, s, t);
        let mut clique = Clique::new(g.n().max(2));
        let out = max_flow_ipm(&mut clique, g, s, t, &IpmOptions::default()).unwrap();
        assert_eq!(out.value, want, "IPM pipeline must be exact");
        let sigma = g.st_demand(s, t, out.value);
        assert!(g.is_feasible_flow(&out.flow, &sigma));
        (out, clique.ledger().total_rounds())
    }

    #[test]
    fn exact_on_diamond() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 2)]);
        let (out, rounds) = check_exact(&g, 0, 3);
        assert_eq!(out.value, 2);
        assert!(rounds > 0);
    }

    #[test]
    fn exact_on_random_networks() {
        for seed in 0..4 {
            let g = generators::random_flow_network(10, 18, 4, seed);
            let (out, _) = check_exact(&g, 0, 9);
            assert!(out.stats.progress_steps > 0, "IPM must run");
        }
    }

    #[test]
    fn exact_on_grid_network() {
        let g = generators::grid_flow_network(3, 3, 3, 7);
        let (_, rounds) = check_exact(&g, 0, 8);
        assert!(rounds > 0);
    }

    #[test]
    fn exact_with_unit_capacities() {
        let g = generators::random_unit_digraph(9, 16, 1, 2);
        let g2 = DiGraph::from_capacities(
            9,
            &g.edges()
                .iter()
                .map(|e| (e.from, e.to, e.capacity))
                .collect::<Vec<_>>(),
        );
        check_exact(&g2, 0, 8);
    }

    #[test]
    fn zero_flow_instances() {
        // t unreachable from s.
        let g = DiGraph::from_capacities(4, &[(1, 0, 3), (2, 3, 1)]);
        let (out, _) = check_exact(&g, 0, 3);
        assert_eq!(out.value, 0);
    }

    #[test]
    fn shared_cache_preserves_value_and_skips_decompositions() {
        let g = generators::random_flow_network(10, 18, 4, 2);
        let (_, want) = dinic(&g, 0, 9);
        let session = crate::MaxFlowSession::new(IpmOptions::default());
        let cache = session.cache().clone();
        let mut clique = Clique::new(10);
        let first = session.max_flow(&mut clique, &g, 0, 9).unwrap();
        assert_eq!(first.value, want);
        // Both engines (core + cleanup) published their supports.
        assert!(!cache.is_empty());
        assert_eq!(first.stats.engine.total_template_cache_hits(), 0);
        let published = cache.len();

        let second = session.max_flow(&mut clique, &g, 0, 9).unwrap();
        assert_eq!(second.value, want, "cache must not change the flow value");
        assert_eq!(cache.len(), published, "same supports, no new templates");
        assert!(
            second.stats.engine.total_template_cache_hits() >= 1,
            "second run must reuse at least one cached template: {}",
            second.stats.engine.to_json()
        );
        assert_eq!(
            second.stats.engine.stage("augmentation").builds,
            0,
            "cached template must replace the core's first build"
        );
        // The uncached entry point matches too.
        let third = max_flow_ipm(&mut clique, &g, 0, 9, &IpmOptions::default()).unwrap();
        assert_eq!(third.value, want);
        assert_eq!(third.stats.engine.total_template_cache_hits(), 0);
    }

    #[test]
    fn ipm_reduces_repair_work() {
        // On a simple instance the IPM should route most of the flow so the
        // repair needs far fewer paths than |f*|.
        let g = generators::random_flow_network(12, 30, 6, 11);
        let (_, want) = dinic(&g, 0, 11);
        let mut clique = Clique::new(12);
        let out = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
        assert_eq!(out.value, want);
        assert!(
            out.stats.fell_back_to_zero || out.stats.rounded_value > 0 || want == 0,
            "stats: {:?}",
            out.stats
        );
    }

    #[test]
    fn deterministic_pipeline() {
        let g = generators::random_flow_network(8, 14, 3, 5);
        let run = || {
            let mut clique = Clique::new(8);
            let out = max_flow_ipm(&mut clique, &g, 0, 7, &IpmOptions::default()).unwrap();
            (out.flow, out.value, clique.ledger().total_rounds())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sparsifier_reuse_preserves_exactness_and_saves_oracle_rounds() {
        let g = generators::random_flow_network(12, 26, 4, 13);
        let (_, want) = dinic(&g, 0, 11);
        let run = |reuse: bool| {
            let mut clique = Clique::new(12);
            let out = max_flow_ipm(
                &mut clique,
                &g,
                0,
                11,
                &IpmOptions {
                    reuse_sparsifier: reuse,
                    ..Default::default()
                },
            )
            .unwrap();
            (out.value, clique.ledger().charged_rounds())
        };
        let (v_reuse, charged_reuse) = run(true);
        let (v_fresh, charged_fresh) = run(false);
        assert_eq!(v_reuse, want);
        assert_eq!(v_fresh, want);
        // Reuse skips the per-step [CS20] oracle charges.
        assert!(
            charged_reuse < charged_fresh,
            "reuse {charged_reuse} vs fresh {charged_fresh}"
        );
    }

    #[test]
    fn zero_step_budget_still_exact_via_repair() {
        let g = generators::random_flow_network(10, 20, 4, 4);
        let (_, want) = dinic(&g, 0, 9);
        let mut clique = Clique::new(10);
        let out = max_flow_ipm(
            &mut clique,
            &g,
            0,
            9,
            &IpmOptions {
                max_progress_steps: Some(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(out.value, want);
        assert_eq!(out.stats.progress_steps, 0);
    }

    #[test]
    fn pipeline_flow_certified_by_min_cut() {
        let g = generators::random_flow_network(12, 26, 5, 8);
        let mut clique = Clique::new(12);
        let out = max_flow_ipm(&mut clique, &g, 0, 11, &IpmOptions::default()).unwrap();
        let cut = crate::min_cut_from_max_flow(&g, &out.flow, 0, 11);
        assert_eq!(cut.capacity, out.value);
    }

    #[test]
    fn step_budget_formula_shape() {
        // Grows with m and U, stays within the clamp.
        assert!(default_step_budget(100, 1) <= default_step_budget(1000, 1));
        assert!(default_step_budget(100, 1) <= default_step_budget(100, 64));
        assert!(default_step_budget(2, 1) >= 8);
        assert!(default_step_budget(1_000_000, 1 << 30) <= 600);
    }

    #[test]
    fn phase_ledger_has_all_stages() {
        let g = generators::random_flow_network(8, 16, 4, 9);
        let mut clique = Clique::new(8);
        let _ = max_flow_ipm(&mut clique, &g, 0, 7, &IpmOptions::default()).unwrap();
        let phases = clique.ledger().phases();
        assert!(phases.keys().any(|k| k.contains("maxflow_ipm")));
        assert!(phases.keys().any(|k| k.contains("repair_augmenting_paths")));
    }

    #[test]
    fn engine_stats_cover_every_ipm_stage() {
        let g = generators::random_flow_network(10, 18, 4, 0);
        let mut clique = Clique::new(10);
        let out = max_flow_ipm(&mut clique, &g, 0, 9, &IpmOptions::default()).unwrap();
        let aug = out.stats.engine.stage("augmentation");
        assert_eq!(aug.solves, out.stats.progress_steps);
        assert!(aug.builds >= 1, "first build captures the template");
        assert!(aug.chebyshev_iterations > 0);
        assert!(aug.rounds > 0);
        assert!(out.stats.engine.stage("fixing").solves <= out.stats.progress_steps);
        // The engine only accounts build/solve rounds, never more than
        // the whole pipeline cost.
        assert!(out.stats.engine.total_rounds() <= clique.ledger().total_rounds());
    }
}
