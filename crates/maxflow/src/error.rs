//! Typed errors of the max-flow pipelines.

use std::fmt;

use cc_euler::EulerError;
use cc_ipm::IpmError;
use cc_model::ModelError;

/// Failure of a distributed max-flow run.
///
/// Precondition violations (bad terminals, infeasible starting flows,
/// clique too small) remain panics; runtime failures — the communication
/// substrate rejecting a primitive call anywhere in the IPM, rounding or
/// repair stages — surface here instead of aborting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MaxFlowError {
    /// The communication substrate rejected a primitive call.
    Comm(ModelError),
    /// An electrical solve inside the interior point method failed.
    Solver(IpmError),
    /// The flow-rounding stage (Lemma 4.2, `cc-euler`) failed.
    Rounding(EulerError),
}

impl fmt::Display for MaxFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxFlowError::Comm(e) => write!(f, "communication failure during max flow: {e}"),
            MaxFlowError::Solver(e) => write!(f, "electrical solve failed during max flow: {e}"),
            MaxFlowError::Rounding(e) => write!(f, "flow rounding failed during max flow: {e}"),
        }
    }
}

impl std::error::Error for MaxFlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MaxFlowError::Comm(e) => Some(e),
            MaxFlowError::Solver(e) => Some(e),
            MaxFlowError::Rounding(e) => Some(e),
        }
    }
}

impl From<ModelError> for MaxFlowError {
    fn from(e: ModelError) -> Self {
        MaxFlowError::Comm(e)
    }
}

impl From<IpmError> for MaxFlowError {
    fn from(e: IpmError) -> Self {
        MaxFlowError::Solver(e)
    }
}

impl From<EulerError> for MaxFlowError {
    fn from(e: EulerError) -> Self {
        MaxFlowError::Rounding(e)
    }
}

/// True if `e`'s source chain bottoms out in a [`ModelError`] — i.e. the
/// failure is rooted in the communication substrate (an injected fault or
/// a congestion rejection) rather than numerical degradation. The IPM
/// propagates comm-rooted build failures but degrades gracefully (hands
/// over to repair) on numerical ones.
pub(crate) fn comm_rooted(e: &(dyn std::error::Error + 'static)) -> bool {
    let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(e);
    while let Some(s) = cur {
        if s.is::<ModelError>() {
            return true;
        }
        cur = s.source();
    }
    false
}
