//! Residual-graph repair: augmenting paths via algebraic APSP
//! (lines 20–21 of Algorithm 2).

use cc_apsp::{apsp_from_arcs, RoundModel};
use cc_graph::DiGraph;
use cc_model::Communicator;

use crate::MaxFlowError;

/// Statistics of a repair run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Augmenting paths applied.
    pub paths: usize,
    /// Total units of flow the repair added.
    pub added_value: i64,
}

/// Augments the feasible integral flow `flow` of `g` along shortest
/// residual `s`-`t` paths (bottleneck augmentation) until no augmenting
/// path remains — producing an **exact** maximum flow.
///
/// Each iteration runs one reachability/shortest-path computation with the
/// algebraic APSP of `cc-apsp` (round model `model`, the \[CKKL+19\]
/// `O(n^{0.158})` substitute) and one broadcast round to apply the
/// augmentation.
///
/// # Errors
///
/// [`MaxFlowError::Comm`] if the communication substrate rejects an
/// augmentation broadcast (injected faults surface here, never as
/// panics).
///
/// # Panics
///
/// Panics if `flow` is not a feasible flow of some value (capacity or
/// conservation violations) or terminals are invalid.
pub fn augment_to_optimality<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    flow: &mut [i64],
    s: usize,
    t: usize,
    model: RoundModel,
) -> Result<RepairStats, MaxFlowError> {
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    assert_eq!(flow.len(), g.m(), "flow length mismatch");
    let value = g.flow_value(flow, s);
    assert!(
        g.is_feasible_flow(flow, &g.st_demand(s, t, value)),
        "repair requires a feasible starting flow"
    );

    clique.phase("repair_augmenting_paths", |clique| {
        let mut stats = RepairStats::default();
        loop {
            // Residual arcs with unit lengths; remember originating edge
            // and direction for augmentation.
            let mut arcs: Vec<(usize, usize, i64)> = Vec::new();
            for (i, e) in g.edges().iter().enumerate() {
                let _ = i;
                if flow[i] < e.capacity {
                    arcs.push((e.from, e.to, 1));
                }
                if flow[i] > 0 {
                    arcs.push((e.to, e.from, 1));
                }
            }
            let apsp = apsp_from_arcs(clique, g.n(), &arcs, model);
            let Some(path) = apsp.path(s, t) else {
                break;
            };
            // Bottleneck over the path, taking residual capacities.
            let mut bottleneck = i64::MAX;
            let mut steps: Vec<(usize, bool)> = Vec::new(); // (edge, forward?)
            for w in path.windows(2) {
                let (a, b) = (w[0], w[1]);
                // Deterministically pick the best residual edge realizing
                // the hop: largest residual, then smallest id.
                let mut best: Option<(usize, bool, i64)> = None;
                for (i, e) in g.edges().iter().enumerate() {
                    let cand = if e.from == a && e.to == b && flow[i] < e.capacity {
                        Some((i, true, e.capacity - flow[i]))
                    } else if e.to == a && e.from == b && flow[i] > 0 {
                        Some((i, false, flow[i]))
                    } else {
                        None
                    };
                    if let Some((i, fwd, res)) = cand {
                        let better = match best {
                            None => true,
                            Some((bi, _, bres)) => res > bres || (res == bres && i < bi),
                        };
                        if better {
                            best = Some((i, fwd, res));
                        }
                    }
                }
                let (i, fwd, res) = best.expect("path hop must have a residual edge");
                bottleneck = bottleneck.min(res);
                steps.push((i, fwd));
            }
            debug_assert!(bottleneck > 0 && bottleneck < i64::MAX);
            for (i, fwd) in steps {
                if fwd {
                    flow[i] += bottleneck;
                } else {
                    flow[i] -= bottleneck;
                }
            }
            // One broadcast round: the path vertices announce the update.
            clique.broadcast_all(&vec![0u64; clique.n()])?;
            stats.paths += 1;
            stats.added_value += bottleneck;
        }
        Ok(stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn repair_from_zero_is_full_max_flow() {
        for seed in 0..5 {
            let g = generators::random_flow_network(10, 20, 4, seed);
            let (_, want) = dinic(&g, 0, 9);
            let mut flow = vec![0i64; g.m()];
            let mut clique = Clique::new(10);
            let stats =
                augment_to_optimality(&mut clique, &g, &mut flow, 0, 9, RoundModel::Semiring)
                    .unwrap();
            assert_eq!(g.flow_value(&flow, 0), want, "seed {seed}");
            assert_eq!(stats.added_value, want);
            assert!(g.is_feasible_flow(&flow, &g.st_demand(0, 9, want)));
        }
    }

    #[test]
    fn repair_from_optimal_does_nothing() {
        let g = generators::random_flow_network(8, 15, 3, 1);
        let (mut flow, want) = dinic(&g, 0, 7);
        let mut clique = Clique::new(8);
        let stats =
            augment_to_optimality(&mut clique, &g, &mut flow, 0, 7, RoundModel::Semiring).unwrap();
        assert_eq!(stats.paths, 0);
        assert_eq!(g.flow_value(&flow, 0), want);
    }

    #[test]
    fn repair_uses_backward_residual_edges() {
        // Classic example where a greedy path must be partially undone.
        //    0 → 1 → 3
        //    0 → 2 → 3  and 1 → 2
        let g =
            DiGraph::from_capacities(4, &[(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1)]);
        // Adversarial start: route 0→1→2→3 (value 1), blocking both routes.
        let mut flow = vec![1, 0, 1, 0, 0];
        flow[4] = 1; // 2→3 carries it
        let mut clique = Clique::new(4);
        let stats =
            augment_to_optimality(&mut clique, &g, &mut flow, 0, 3, RoundModel::Semiring).unwrap();
        assert_eq!(g.flow_value(&flow, 0), 2);
        assert!(stats.paths >= 1);
    }

    #[test]
    #[should_panic(expected = "feasible starting flow")]
    fn rejects_infeasible_start() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut flow = vec![1, 0]; // violates conservation at 1
        let mut clique = Clique::new(3);
        let _ = augment_to_optimality(&mut clique, &g, &mut flow, 0, 2, RoundModel::Semiring);
    }

    #[test]
    fn rounds_charged_per_iteration() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut flow = vec![0i64, 0];
        let mut clique = Clique::new(3);
        let stats =
            augment_to_optimality(&mut clique, &g, &mut flow, 0, 2, RoundModel::Semiring).unwrap();
        assert_eq!(stats.paths, 1);
        assert!(clique.ledger().total_rounds() > 0);
        assert!(clique
            .ledger()
            .phases()
            .keys()
            .any(|k| k.contains("repair_augmenting_paths")));
    }
}
