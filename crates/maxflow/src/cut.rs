//! Minimum cut extraction — the optimality certificate of a maximum flow.

use cc_graph::{DiGraph, EdgeId, VertexId};

/// A minimum `s`-`t` cut certifying a maximum flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// `side[v]` is true iff `v` lies on the source side.
    pub side: Vec<bool>,
    /// Ids of the (forward) edges crossing from the source side to the
    /// sink side, ascending.
    pub edges: Vec<EdgeId>,
    /// Total capacity of the crossing edges.
    pub capacity: i64,
}

/// Extracts the canonical minimum cut from a **maximum** flow: the source
/// side is the set of vertices reachable from `s` in the residual graph.
/// By max-flow/min-cut, `capacity == flow value` certifies optimality;
/// callers can assert that equality as an end-to-end check.
///
/// # Panics
///
/// Panics if `flow` has the wrong length, violates capacities, or the
/// residual graph still contains an augmenting path (the flow was not
/// maximum — the "cut" would not separate `s` from `t`).
pub fn min_cut_from_max_flow(g: &DiGraph, flow: &[i64], s: VertexId, t: VertexId) -> MinCut {
    assert_eq!(flow.len(), g.m(), "flow length mismatch");
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    for (i, e) in g.edges().iter().enumerate() {
        assert!(
            flow[i] >= 0 && flow[i] <= e.capacity,
            "flow violates capacity on edge {i}"
        );
    }
    let n = g.n();
    let mut side = vec![false; n];
    side[s] = true;
    let mut stack = vec![s];
    while let Some(v) = stack.pop() {
        for (i, e) in g.edges().iter().enumerate() {
            if e.from == v && !side[e.to] && flow[i] < e.capacity {
                side[e.to] = true;
                stack.push(e.to);
            }
            if e.to == v && !side[e.from] && flow[i] > 0 {
                side[e.from] = true;
                stack.push(e.from);
            }
        }
    }
    assert!(
        !side[t],
        "flow is not maximum: t is residual-reachable from s"
    );
    let mut edges = Vec::new();
    let mut capacity = 0;
    for (i, e) in g.edges().iter().enumerate() {
        if side[e.from] && !side[e.to] {
            edges.push(i);
            capacity += e.capacity;
        }
    }
    MinCut {
        side,
        edges,
        capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use cc_graph::generators;

    #[test]
    fn cut_capacity_equals_flow_value() {
        for seed in 0..8 {
            let g = generators::random_flow_network(12, 28, 5, seed);
            let (flow, value) = dinic(&g, 0, 11);
            let cut = min_cut_from_max_flow(&g, &flow, 0, 11);
            assert_eq!(cut.capacity, value, "seed {seed}");
            assert!(cut.side[0]);
            assert!(!cut.side[11]);
            // Every crossing edge is saturated; every reverse crossing
            // edge carries zero (complementary slackness).
            for (i, e) in g.edges().iter().enumerate() {
                if cut.side[e.from] && !cut.side[e.to] {
                    assert_eq!(flow[i], e.capacity);
                }
                if cut.side[e.to] && !cut.side[e.from] {
                    assert_eq!(flow[i], 0);
                }
            }
        }
    }

    #[test]
    fn bottleneck_edge_is_the_cut() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 9), (1, 2, 1), (2, 3, 9)]);
        let (flow, _) = dinic(&g, 0, 3);
        let cut = min_cut_from_max_flow(&g, &flow, 0, 3);
        assert_eq!(cut.edges, vec![1]);
        assert_eq!(cut.capacity, 1);
    }

    #[test]
    #[should_panic(expected = "not maximum")]
    fn rejects_non_maximum_flow() {
        let g = DiGraph::from_capacities(2, &[(0, 1, 2)]);
        let _ = min_cut_from_max_flow(&g, &[1], 0, 1);
    }
}
