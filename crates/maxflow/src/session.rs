//! Reentrant max-flow sessions over a shared sparsifier template cache.
//!
//! [`max_flow_ipm`](crate::max_flow_ipm) is one-shot: each call builds
//! the transformed-support and original-support sparsifiers from
//! scratch. A [`MaxFlowSession`] keeps a [`TemplateCache`] across calls,
//! so repeated queries on one network — different terminals, drifted
//! capacities, parameter sweeps — skip the `n^{o(1)}`-round expander
//! decompositions after the first run. Per-cluster certificates are
//! recertified exactly on every instantiation, so the flow value is
//! identical with or without the cache. This is the session-based call
//! path the service layer (`DESIGN.md` §11) uses; it replaces the old
//! `max_flow_ipm_with_cache` entry point.

use cc_graph::DiGraph;
use cc_model::Communicator;
use cc_sparsify::TemplateCache;

use crate::ipm::{max_flow_ipm_inner, IpmOptions, MaxFlowOutcome};
use crate::MaxFlowError;

/// A reentrant max-flow session: fixed [`IpmOptions`] plus a
/// [`TemplateCache`] every solve consults before its first sparsifier
/// build and publishes into. `Clone` shares the cache (handle clone).
#[derive(Debug, Clone, Default)]
pub struct MaxFlowSession {
    options: IpmOptions,
    cache: TemplateCache,
}

impl MaxFlowSession {
    /// A session with a fresh private cache.
    pub fn new(options: IpmOptions) -> Self {
        Self {
            options,
            cache: TemplateCache::new(),
        }
    }

    /// A session over an existing (possibly shared) cache — e.g. one
    /// engine-wide cache serving max-flow and min-cost-flow sessions on
    /// the same network.
    pub fn with_cache(options: IpmOptions, cache: TemplateCache) -> Self {
        Self { options, cache }
    }

    /// The options every solve uses.
    pub fn options(&self) -> &IpmOptions {
        &self.options
    }

    /// The backing cache (shared handle; hit/miss counters live here).
    pub fn cache(&self) -> &TemplateCache {
        &self.cache
    }

    /// [`max_flow_ipm`](crate::max_flow_ipm) through the session's cache:
    /// both engines (IPM core on the transformed support, cleanup on the
    /// original support) consult the cache before their first sparsifier
    /// build and publish what they capture. Cache reuse is observable in
    /// the outcome's [`EngineStats`](cc_ipm::EngineStats)
    /// (`template_cache_hits`).
    ///
    /// # Errors
    ///
    /// Same contract as [`max_flow_ipm`](crate::max_flow_ipm).
    ///
    /// # Panics
    ///
    /// Same contract as [`max_flow_ipm`](crate::max_flow_ipm).
    pub fn max_flow<C: Communicator>(
        &self,
        clique: &mut C,
        g: &DiGraph,
        s: usize,
        t: usize,
    ) -> Result<MaxFlowOutcome, MaxFlowError> {
        max_flow_ipm_inner(clique, g, s, t, &self.options, Some(&self.cache))
    }
}
