//! The deterministic baselines of §1.1: Ford–Fulkerson over algebraic
//! reachability, and the trivial gather-everything algorithm.

use cc_apsp::RoundModel;
use cc_graph::DiGraph;
use cc_model::Communicator;

use crate::ipm::MaxFlowOutcome;
use crate::residual::augment_to_optimality;
use crate::{dinic, IpmStats, MaxFlowError};

/// Ford–Fulkerson in the congested clique: `|f*|`-style iterations, each
/// one `s`-`t` reachability computed algebraically (`O(n^{0.158})` rounds
/// under [`RoundModel::FastMatMul`] — the §1.1 baseline costing
/// `O(|f*| · n^{0.158})` rounds). Bottleneck augmentation is used, so the
/// iteration count is at most (and typically far below) `|f*|`.
///
/// # Errors
///
/// [`MaxFlowError::Comm`] if the communication substrate rejects a
/// primitive call during the augmentation loop.
///
/// # Panics
///
/// Panics if terminals are invalid or the clique is smaller than the graph.
pub fn max_flow_ford_fulkerson<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    s: usize,
    t: usize,
    model: RoundModel,
) -> Result<MaxFlowOutcome, MaxFlowError> {
    assert!(clique.n() >= g.n(), "clique too small");
    clique.phase("ford_fulkerson", |clique| {
        let mut flow = vec![0i64; g.m()];
        let stats = augment_to_optimality(clique, g, &mut flow, s, t, model)?;
        let value = g.flow_value(&flow, s);
        Ok(MaxFlowOutcome {
            flow,
            value,
            stats: IpmStats {
                repair_paths: stats.paths,
                ..IpmStats::default()
            },
        })
    })
}

/// The trivial deterministic algorithm of §1.1: make all knowledge global
/// (all-gather every edge), then solve internally at each node with Dinic.
/// Round cost: the all-gather of `3m` words — `O(m/n + max-degree/n)`
/// rounds, i.e. `O(n)` for dense graphs (`O(n log U)` in the paper's
/// bit-level accounting; capacities fit one word here).
///
/// # Errors
///
/// [`MaxFlowError::Comm`] if the communication substrate rejects the
/// all-gather.
///
/// # Panics
///
/// Panics if terminals are invalid or the clique is smaller than the graph.
pub fn max_flow_trivial<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    s: usize,
    t: usize,
) -> Result<MaxFlowOutcome, MaxFlowError> {
    assert!(clique.n() >= g.n(), "clique too small");
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    clique.phase("trivial_gather", |clique| {
        // Each node contributes its outgoing edges: (from, to, capacity).
        let mut per_node: Vec<Vec<u64>> = vec![Vec::new(); clique.n()];
        for e in g.edges() {
            per_node[e.from].extend_from_slice(&[e.from as u64, e.to as u64, e.capacity as u64]);
        }
        let _ = clique.allgather(&per_node)?;
        // Everything is global: solve internally (free in the model).
        let (flow, value) = dinic(g, s, t);
        Ok(MaxFlowOutcome {
            flow,
            value,
            stats: IpmStats::default(),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    #[test]
    fn baselines_agree_with_dinic() {
        for seed in 0..5 {
            let g = generators::random_flow_network(10, 25, 5, seed);
            let (_, want) = dinic(&g, 0, 9);

            let mut c1 = Clique::new(10);
            let ff = max_flow_ford_fulkerson(&mut c1, &g, 0, 9, RoundModel::FastMatMul).unwrap();
            assert_eq!(ff.value, want, "ff seed {seed}");

            let mut c2 = Clique::new(10);
            let tr = max_flow_trivial(&mut c2, &g, 0, 9).unwrap();
            assert_eq!(tr.value, want, "trivial seed {seed}");

            // Trivial should cost far fewer rounds on tiny instances, and
            // both must charge something.
            assert!(c1.ledger().total_rounds() > 0);
            assert!(c2.ledger().total_rounds() > 0);
        }
    }

    #[test]
    fn trivial_rounds_scale_with_volume_not_iterations() {
        let g = generators::random_flow_network(16, 40, 8, 3);
        let mut clique = Clique::new(16);
        let _ = max_flow_trivial(&mut clique, &g, 0, 15).unwrap();
        let rounds = clique.ledger().total_rounds();
        // allgather of 3m words over n nodes plus balancing.
        let expect_ceiling = 2 * (3 * g.m() as u64).div_ceil(16) + 16;
        assert!(
            rounds <= expect_ceiling,
            "rounds {rounds} > {expect_ceiling}"
        );
    }

    #[test]
    fn ff_rounds_grow_with_flow_value() {
        // Unit-capacity parallel paths: value = k, FF does k augmentations.
        let build = |k: usize| {
            let mut g = DiGraph::new(2 + k);
            for i in 0..k {
                g.add_edge(0, 2 + i, 1, 0);
                g.add_edge(2 + i, 1, 1, 0);
            }
            g
        };
        let mut r = Vec::new();
        for &k in &[2usize, 4, 8] {
            let g = build(k);
            let mut clique = Clique::new(2 + k);
            let out =
                max_flow_ford_fulkerson(&mut clique, &g, 0, 1, RoundModel::FastMatMul).unwrap();
            assert_eq!(out.value, k as i64);
            r.push(clique.ledger().total_rounds());
        }
        assert!(r[0] < r[1] && r[1] < r[2], "rounds {r:?}");
    }
}
