//! Bridging the IPM's floating-point flow to Cohen's rounding:
//! snap to exact multiples of `Δ` while preserving conservation.
//!
//! Cohen's FlowRounding (Lemma 4.2) requires every edge flow to be an
//! integer multiple of `Δ` and conservation to hold exactly. The IPM
//! produces `f64` flows with `~1e-10` conservation error. The snap keeps
//! every non-tree edge at its nearest multiple of `Δ` and recomputes the
//! flows of a spanning forest exactly from the demands — all in integer
//! units of `Δ`, so the output is exact. If a recomputed tree flow leaves
//! `[0, capacity]`, the snap reports [`SnapOutcome::Infeasible`] and the
//! caller falls back to the zero flow (pure repair).

use cc_graph::DiGraph;

/// Result of [`snap_to_delta_multiples`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapOutcome {
    /// A conservation-exact flow whose entries are multiples of `Δ` within
    /// `[0, capacity]`, with the same (floored) value as the input.
    Snapped(Vec<f64>),
    /// The spanning-forest correction left some edge outside its capacity
    /// bounds; the fractional flow was too far from feasible.
    Infeasible,
}

/// Snaps `fractional` (an approximate `s`-`t` flow on `g`, entries in
/// `[0, cap]`) to exact multiples of `delta` with exact conservation.
///
/// # Panics
///
/// Panics if lengths mismatch or `delta` is not in `(0, 1]`.
pub fn snap_to_delta_multiples(
    g: &DiGraph,
    fractional: &[f64],
    s: usize,
    t: usize,
    delta: f64,
) -> SnapOutcome {
    assert_eq!(fractional.len(), g.m(), "flow length mismatch");
    assert!(delta > 0.0 && delta <= 1.0, "delta out of range");
    let n = g.n();
    let m = g.m();
    let unit = (1.0 / delta).round() as i64; // units per 1.0 of flow

    // Fractional s-t value: the snap aims at its nearest multiple of Δ and
    // backs off geometrically if the residual fix cannot realize it.
    let frac_value: f64 = g
        .edges()
        .iter()
        .zip(fractional)
        .map(|(e, &f)| {
            if e.from == s {
                f
            } else if e.to == s {
                -f
            } else {
                0.0
            }
        })
        .sum();
    let mut value_units: i64 = (((frac_value.max(0.0)) / delta).round() as i64).max(0);

    let base_units: Vec<i64> = fractional
        .iter()
        .zip(g.edges())
        .map(|(&f, e)| ((f / delta).round() as i64).clamp(0, e.capacity * unit))
        .collect();
    let _ = m;

    // Value back-off ladder: nearest multiple, then 3/4, 1/2, 1/4, 0 of it.
    for attempt in 0..5 {
        let mut units = base_units.clone();
        let mut target = vec![0i64; n];
        target[s] += value_units;
        target[t] -= value_units;
        if cc_graph::flow_util::fix_unit_deficits(g, &mut units, &target, unit) {
            let snapped: Vec<f64> = units.iter().map(|&u| u as f64 * delta).collect();
            return SnapOutcome::Snapped(snapped);
        }
        if value_units == 0 {
            break;
        }
        value_units = if attempt == 3 {
            0
        } else {
            (value_units * 3) / 4
        };
    }
    SnapOutcome::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;
    use cc_graph::generators;

    fn conservation_ok(g: &DiGraph, flow: &[f64], s: usize, t: usize) -> bool {
        let mut net = vec![0.0; g.n()];
        for (i, e) in g.edges().iter().enumerate() {
            net[e.from] += flow[i];
            net[e.to] -= flow[i];
        }
        (0..g.n()).all(|v| v == s || v == t || net[v].abs() < 1e-9)
    }

    #[test]
    fn snaps_noisy_optimal_flow() {
        let g = generators::random_flow_network(10, 20, 4, 1);
        let (opt, value) = dinic(&g, 0, 9);
        // Perturb the exact flow by tiny noise.
        let noisy: Vec<f64> = opt
            .iter()
            .enumerate()
            .map(|(i, &f)| f as f64 + 1e-9 * ((i % 7) as f64 - 3.0))
            .collect();
        match snap_to_delta_multiples(&g, &noisy, 0, 9, 1.0 / 64.0) {
            SnapOutcome::Snapped(snapped) => {
                assert!(conservation_ok(&g, &snapped, 0, 9));
                for (i, &f) in snapped.iter().enumerate() {
                    assert!(f >= 0.0 && f <= g.edge(i).capacity as f64);
                    let units = f * 64.0;
                    assert!((units - units.round()).abs() < 1e-9);
                }
                let val: f64 = g
                    .edges()
                    .iter()
                    .zip(&snapped)
                    .map(|(e, &f)| {
                        if e.from == 0 {
                            f
                        } else if e.to == 0 {
                            -f
                        } else {
                            0.0
                        }
                    })
                    .sum();
                assert!((val - value as f64).abs() < 1e-6);
            }
            SnapOutcome::Infeasible => panic!("near-exact flow must snap"),
        }
    }

    #[test]
    fn zero_flow_snaps_to_zero() {
        let g = generators::random_flow_network(8, 10, 3, 2);
        match snap_to_delta_multiples(&g, &vec![0.0; g.m()], 0, 7, 0.125) {
            SnapOutcome::Snapped(s) => assert!(s.iter().all(|&f| f == 0.0)),
            SnapOutcome::Infeasible => panic!("zero flow must snap"),
        }
    }

    #[test]
    fn disconnected_terminals_force_zero_value() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 2), (2, 3, 2)]);
        // Junk fractional values.
        let frac = vec![0.7, 0.7];
        match snap_to_delta_multiples(&g, &frac, 0, 3, 0.25) {
            SnapOutcome::Snapped(snapped) => {
                assert!(conservation_ok(&g, &snapped, 0, 3));
                // No s-t path: every vertex must conserve, so both isolated
                // chains carry... edge (0,1) would violate conservation at 1
                // unless zero.
                assert_eq!(snapped, vec![0.0, 0.0]);
            }
            SnapOutcome::Infeasible => {} // also acceptable
        }
    }

    #[test]
    fn capacity_blocked_value_backs_off_to_zero() {
        // The fractional flow pretends value 1 through a zero-capacity
        // edge; the back-off ladder lands on the only realizable value, 0.
        let g = DiGraph::from_capacities(3, &[(0, 1, 0), (1, 2, 1)]);
        let frac = vec![1.0, 1.0];
        match snap_to_delta_multiples(&g, &frac, 0, 2, 0.5) {
            SnapOutcome::Snapped(snapped) => {
                assert_eq!(snapped, vec![0.0, 0.0]);
            }
            SnapOutcome::Infeasible => panic!("back-off must reach value 0"),
        }
    }
}
