//! # cc-maxflow — deterministic exact maximum flow in the congested clique
//!
//! Theorem 1.2 of Forster & de Vos (PODC 2023): exact maximum flow on a
//! directed graph with integer capacities `1..=U` in `m^{3/7+o(1)} U^{1/7}`
//! congested clique rounds, via Mądry's interior point method \[Mąd16\]
//! (Appendix B of the paper) with every electrical-flow step solved by the
//! deterministic Laplacian solver of Theorem 1.1.
//!
//! Pipeline ([`max_flow_ipm`]):
//!
//! 1. **Preconditioning + initialization** (Algorithm 2, lines 1–5):
//!    every arc `(a, b, u)` becomes three two-sided edges `(a,b)`, `(s,b)`,
//!    `(a,t)` of capacity `u`, plus `m` parallel `(t,s)` preconditioner
//!    edges of capacity `2U`; the zero flow is then strictly interior.
//! 2. **Progress steps** (lines 6–18): the IPM core alternates `Augmentation`
//!    (electrical step toward the target demand, step size governed by the
//!    congestion vector `‖ρ‖₃`), `Fixing` (electrical correction of the
//!    accumulated conservation residue), and a congestion-damping
//!    `Boosting` stand-in (see `DESIGN.md` §2.5) until the target value is
//!    (nearly) reached or the paper's `Õ(m^{3/7} U^{1/7})` step budget is
//!    spent.
//! 3. **Rounding** (line 19): the fractional flow is mapped back to the
//!    original arcs, snapped to multiples of `Δ = Θ(1/m)` on a spanning
//!    tree, and rounded to an integral flow with Cohen's rounding
//!    (Lemma 4.2, `cc-euler`).
//! 4. **Repair** (lines 20–21): augmenting paths in the residual graph —
//!    found with algebraic APSP (`cc-apsp`, the \[CKKL+19\] substitute) —
//!    until the flow is **exactly** maximum. Correctness never depends on
//!    how well the IPM did; the IPM controls only how few repair paths are
//!    needed, which the experiments report.
//!
//! Baselines for experiment E6/E8: [`max_flow_ford_fulkerson`]
//! (`O(|f*| · n^{0.158})` rounds) and [`max_flow_trivial`]
//! (`O(n log U)` rounds, gather everything and solve internally), plus the
//! sequential reference [`dinic`] used to assert exactness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod cut;
mod dinic;
mod error;
mod ipm;
mod residual;
mod rounding_bridge;
mod session;

pub use baselines::{max_flow_ford_fulkerson, max_flow_trivial};
pub use cut::{min_cut_from_max_flow, MinCut};
pub use dinic::dinic;
pub use error::MaxFlowError;
pub use ipm::{max_flow_ipm, IpmOptions, IpmStats, MaxFlowOutcome};
pub use residual::{augment_to_optimality, RepairStats};
pub use rounding_bridge::{snap_to_delta_multiples, SnapOutcome};
pub use session::MaxFlowSession;
