//! Sequential Dinic's algorithm — the exactness reference for every
//! distributed max-flow implementation in this crate.

use cc_graph::DiGraph;

/// Computes an exact maximum `s`-`t` flow of `g` sequentially (Dinic's
/// algorithm). Returns the per-edge flow and its value. Used as the ground
/// truth in tests/experiments and as the internal solver of the trivial
/// baseline.
///
/// # Panics
///
/// Panics if `s == t` or either terminal is out of range.
pub fn dinic(g: &DiGraph, s: usize, t: usize) -> (Vec<i64>, i64) {
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    let n = g.n();
    // Residual arcs: for edge i, arc 2i (forward, cap u−f) and 2i+1
    // (backward, cap f).
    let m = g.m();
    let mut cap: Vec<i64> = Vec::with_capacity(2 * m);
    let mut head: Vec<usize> = Vec::with_capacity(2 * m);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, e) in g.edges().iter().enumerate() {
        cap.push(e.capacity);
        head.push(e.to);
        adj[e.from].push(2 * i);
        cap.push(0);
        head.push(e.from);
        adj[e.to].push(2 * i + 1);
    }
    let mut total = 0i64;
    loop {
        // BFS level graph.
        let mut level = vec![usize::MAX; n];
        level[s] = 0;
        let mut queue = std::collections::VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            for &a in &adj[v] {
                let w = head[a];
                if cap[a] > 0 && level[w] == usize::MAX {
                    level[w] = level[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        if level[t] == usize::MAX {
            break;
        }
        // DFS blocking flow with iteration pointers.
        let mut iter = vec![0usize; n];
        loop {
            let pushed = dfs(s, t, i64::MAX, &mut cap, &head, &adj, &level, &mut iter);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }
    let flow: Vec<i64> = (0..m).map(|i| cap[2 * i + 1]).collect();
    (flow, total)
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    v: usize,
    t: usize,
    limit: i64,
    cap: &mut [i64],
    head: &[usize],
    adj: &[Vec<usize>],
    level: &[usize],
    iter: &mut [usize],
) -> i64 {
    if v == t {
        return limit;
    }
    while iter[v] < adj[v].len() {
        let a = adj[v][iter[v]];
        let w = head[a];
        if cap[a] > 0 && level[w] == level[v] + 1 {
            let pushed = dfs(w, t, limit.min(cap[a]), cap, head, adj, level, iter);
            if pushed > 0 {
                cap[a] -= pushed;
                cap[a ^ 1] += pushed;
                return pushed;
            }
        }
        iter[v] += 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn diamond_flow() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 2), (0, 2, 1), (1, 3, 1), (2, 3, 2)]);
        let (flow, value) = dinic(&g, 0, 3);
        assert_eq!(value, 2);
        let sigma = g.st_demand(0, 3, value);
        assert!(g.is_feasible_flow(&flow, &sigma));
    }

    #[test]
    fn bottleneck_path() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 5), (1, 2, 1), (2, 3, 7)]);
        let (_, value) = dinic(&g, 0, 3);
        assert_eq!(value, 1);
    }

    #[test]
    fn disconnected_terminals_have_zero_flow() {
        let g = DiGraph::from_capacities(4, &[(0, 1, 5), (2, 3, 5)]);
        let (flow, value) = dinic(&g, 0, 3);
        assert_eq!(value, 0);
        assert!(flow.iter().all(|&f| f == 0));
    }

    #[test]
    fn flow_value_matches_min_cut_on_random_networks() {
        for seed in 0..10 {
            let g = generators::random_flow_network(12, 30, 6, seed);
            let (flow, value) = dinic(&g, 0, 11);
            let sigma = g.st_demand(0, 11, value);
            assert!(g.is_feasible_flow(&flow, &sigma), "seed {seed}");
            // Verify optimality via max-flow = min-cut: find the s-side of
            // the residual reachability cut and check its capacity equals
            // the value.
            let n = g.n();
            let mut reach = vec![false; n];
            reach[0] = true;
            let mut stack = vec![0usize];
            while let Some(_v) = stack.pop() {
                for (i, e) in g.edges().iter().enumerate() {
                    let (from, to) = (e.from, e.to);
                    if reach[from] && !reach[to] && flow[i] < e.capacity {
                        reach[to] = true;
                        stack.push(to);
                    }
                    if reach[to] && !reach[from] && flow[i] > 0 {
                        reach[from] = true;
                        stack.push(from);
                    }
                }
            }
            assert!(!reach[11], "t reachable in residual graph");
            let cut_cap: i64 = g
                .edges()
                .iter()
                .filter(|e| reach[e.from] && !reach[e.to])
                .map(|e| e.capacity)
                .sum();
            assert_eq!(cut_cap, value, "seed {seed}");
        }
    }

    #[test]
    fn parallel_arcs_accumulate() {
        let g = DiGraph::from_capacities(2, &[(0, 1, 2), (0, 1, 3)]);
        let (_, value) = dinic(&g, 0, 1);
        assert_eq!(value, 5);
    }
}
