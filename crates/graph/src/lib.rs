//! # cc-graph — graph substrate for the congested clique algorithms
//!
//! Weighted undirected multigraphs ([`Graph`]), directed graphs with
//! capacities and costs ([`DiGraph`]), cut/conductance utilities, and a
//! collection of deterministic (seeded) workload generators used by the
//! experiments of `DESIGN.md` §4.
//!
//! In the congested clique, vertex `v` of the input graph is hosted by
//! processor `v`; a node initially knows exactly its incident edges
//! (§2.1 of the paper). The types here are the *global* descriptions used
//! by the simulator to hand each node its local view.
//!
//! ```
//! use cc_graph::Graph;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1, 1.0);
//! g.add_edge(1, 2, 2.0);
//! g.add_edge(2, 3, 1.0);
//! assert_eq!(g.m(), 3);
//! assert!(g.is_connected());
//! assert_eq!(g.degree(1), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
pub mod flow_util;
pub mod generators;
pub mod io;
mod undirected;

pub use digraph::{DiEdge, DiGraph};
pub use undirected::{Edge, Graph};

/// Index of an edge within its graph's edge list.
pub type EdgeId = usize;

/// Index of a vertex; coincides with the congested clique node hosting it.
pub type VertexId = usize;
