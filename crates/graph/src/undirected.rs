use crate::{EdgeId, VertexId};

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint.
    pub u: VertexId,
    /// The other endpoint.
    pub v: VertexId,
    /// Positive weight.
    pub weight: f64,
}

impl Edge {
    /// The endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }
}

/// An undirected weighted multigraph on vertices `0..n`.
///
/// Parallel edges are allowed (the flow reductions create them);
/// self-loops are rejected. Edges are identified by insertion order
/// ([`EdgeId`]), which all algorithms use as the canonical deterministic
/// ordering.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<(EdgeId, VertexId)>>,
}

impl Graph {
    /// Creates an empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or non-positive weights.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId, f64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Adds an edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or non-positive weight.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, weight: f64) -> EdgeId {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range (n={})",
            self.n
        );
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(weight > 0.0, "edge weights must be positive, got {weight}");
        let id = self.edges.len();
        self.edges.push(Edge { u, v, weight });
        self.adj[u].push((id, v));
        self.adj[v].push((id, u));
        id
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Edge list as `(u, v, w)` triples (the format `cc-linalg` consumes).
    pub fn edge_triples(&self) -> Vec<(VertexId, VertexId, f64)> {
        self.edges.iter().map(|e| (e.u, e.v, e.weight)).collect()
    }

    /// Incident `(edge id, other endpoint)` pairs of `v` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn adj(&self, v: VertexId) -> &[(EdgeId, VertexId)] {
        &self.adj[v]
    }

    /// Unweighted degree (number of incident edge endpoints).
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v].len()
    }

    /// Weighted degree `Σ_{e ∋ v} w(e)`.
    pub fn weighted_degree(&self, v: VertexId) -> f64 {
        self.adj[v].iter().map(|&(e, _)| self.edges[e].weight).sum()
    }

    /// Largest edge weight (`0` for the empty graph).
    pub fn max_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).fold(0.0, f64::max)
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// True if every vertex has even (unweighted) degree — the precondition
    /// of the Eulerian orientation algorithm (Theorem 1.4).
    pub fn is_eulerian(&self) -> bool {
        (0..self.n).all(|v| self.degree(v).is_multiple_of(2))
    }

    /// Connected component id per vertex (ids are dense, in order of the
    /// smallest vertex of each component).
    pub fn components(&self) -> Vec<usize> {
        let mut comp = vec![usize::MAX; self.n];
        let mut next = 0;
        let mut stack = Vec::new();
        for s in 0..self.n {
            if comp[s] != usize::MAX {
                continue;
            }
            comp[s] = next;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &(_, u) in &self.adj[v] {
                    if comp[u] == usize::MAX {
                        comp[u] = next;
                        stack.push(u);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// True if the graph has at most one connected component containing all
    /// vertices (the empty graph on 0/1 vertices counts as connected).
    pub fn is_connected(&self) -> bool {
        let comp = self.components();
        comp.iter().all(|&c| c == 0)
    }

    /// Unweighted volume of a vertex set: `Σ_{v ∈ S} deg(v)`.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn volume(&self, side: &[bool]) -> usize {
        assert_eq!(side.len(), self.n);
        (0..self.n)
            .filter(|&v| side[v])
            .map(|v| self.degree(v))
            .sum()
    }

    /// Number of edges crossing the cut `(S, V∖S)`.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn cut_size(&self, side: &[bool]) -> usize {
        assert_eq!(side.len(), self.n);
        self.edges.iter().filter(|e| side[e.u] != side[e.v]).count()
    }

    /// Conductance of the cut `(S, V∖S)` per Definition 3.1:
    /// `|e(S, S̄)| / min(vol S, vol S̄)`. Returns `f64::INFINITY` when one
    /// side has zero volume.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != n`.
    pub fn cut_conductance(&self, side: &[bool]) -> f64 {
        let vol_s = self.volume(side);
        let vol_total = 2 * self.m();
        let vol_sbar = vol_total - vol_s;
        let denom = vol_s.min(vol_sbar);
        if denom == 0 {
            return f64::INFINITY;
        }
        self.cut_size(side) as f64 / denom as f64
    }

    /// Exact conductance `Φ(G)` by exhaustive search — exponential, only
    /// for validating the expander decomposition on tiny graphs in tests.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (would not terminate in reasonable time) or `n == 0`.
    pub fn conductance_exact(&self) -> f64 {
        assert!(
            self.n > 0 && self.n <= 20,
            "exhaustive conductance needs 1..=20 vertices"
        );
        let mut best = f64::INFINITY;
        for mask in 1..(1u32 << self.n) - 1 {
            let side: Vec<bool> = (0..self.n).map(|v| mask >> v & 1 == 1).collect();
            best = best.min(self.cut_conductance(&side));
        }
        best
    }

    /// Subgraph induced by `vertices` (in the given order), returning the
    /// relabelled graph and the mapping `new id → old id`.
    ///
    /// # Panics
    ///
    /// Panics on duplicate or out-of-range vertices.
    pub fn induced(&self, vertices: &[VertexId]) -> (Graph, Vec<VertexId>) {
        let mut old_to_new = vec![usize::MAX; self.n];
        for (new, &old) in vertices.iter().enumerate() {
            assert!(old < self.n, "vertex {old} out of range");
            assert!(old_to_new[old] == usize::MAX, "duplicate vertex {old}");
            old_to_new[old] = new;
        }
        let mut sub = Graph::new(vertices.len());
        for e in &self.edges {
            let (nu, nv) = (old_to_new[e.u], old_to_new[e.v]);
            if nu != usize::MAX && nv != usize::MAX {
                sub.add_edge(nu, nv, e.weight);
            }
        }
        (sub, vertices.to_vec())
    }

    /// Subgraph with exactly the edges whose ids satisfy `keep`, on the
    /// same vertex set.
    pub fn edge_subgraph(&self, keep: impl Fn(EdgeId) -> bool) -> Graph {
        let mut sub = Graph::new(self.n);
        for (id, e) in self.edges.iter().enumerate() {
            if keep(id) {
                sub.add_edge(e.u, e.v, e.weight);
            }
        }
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn square() -> Graph {
        Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = square();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.weighted_degree(0), 2.0);
        assert_eq!(g.adj(0).len(), 2);
        assert_eq!(g.edge(0).other(0), 1);
        assert_eq!(g.edge(0).other(1), 0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_rejects_non_endpoint() {
        square().edge(0).other(3);
    }

    #[test]
    fn parallel_edges_allowed_self_loops_rejected() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 2.0);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        let result = std::panic::catch_unwind(move || {
            let mut g = Graph::new(2);
            g.add_edge(0, 0, 1.0)
        });
        assert!(result.is_err());
    }

    #[test]
    fn connectivity_and_components() {
        let g = square();
        assert!(g.is_connected());
        let g2 = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]);
        assert!(!g2.is_connected());
        let comp = g2.components();
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
    }

    #[test]
    fn eulerian_detection() {
        assert!(square().is_eulerian());
        let mut g = square();
        g.add_edge(0, 2, 1.0);
        assert!(!g.is_eulerian());
    }

    #[test]
    fn cut_quantities_on_square() {
        let g = square();
        let side = vec![true, true, false, false];
        assert_eq!(g.cut_size(&side), 2);
        assert_eq!(g.volume(&side), 4);
        assert!((g.cut_conductance(&side) - 0.5).abs() < 1e-12);
        assert!(g.cut_conductance(&[false; 4]).is_infinite());
    }

    #[test]
    fn exact_conductance_of_cycle() {
        // C4: best cut takes 2 adjacent vertices: 2 crossing / vol 4 = 1/2.
        assert!((square().conductance_exact() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = square();
        let (sub, map) = g.induced(&[1, 2, 3]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 2); // edges (1,2) and (2,3)
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = square();
        let sub = g.edge_subgraph(|e| e % 2 == 0);
        assert_eq!(sub.m(), 2);
        assert_eq!(sub.n(), 4);
    }

    proptest! {
        #[test]
        fn handshake_lemma(edges in proptest::collection::vec((0usize..8, 0usize..8, 0.1f64..4.0), 0..24)) {
            let clean: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            let g = Graph::from_edges(8, &clean);
            let degsum: usize = (0..8).map(|v| g.degree(v)).sum();
            prop_assert_eq!(degsum, 2 * g.m());
        }

        #[test]
        fn cut_size_bounded_by_m(
            edges in proptest::collection::vec((0usize..6, 0usize..6, 0.1f64..4.0), 0..15),
            side in proptest::collection::vec(proptest::bool::ANY, 6)
        ) {
            let clean: Vec<_> = edges.into_iter().filter(|&(u, v, _)| u != v).collect();
            let g = Graph::from_edges(6, &clean);
            prop_assert!(g.cut_size(&side) <= g.m());
        }
    }
}
