//! Deterministic (seeded) workload generators.
//!
//! The paper's algorithms are deterministic; every use of randomness in
//! this repository is confined to *instance generation* here, always
//! through a caller-supplied seed, so experiments are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{DiGraph, Graph, VertexId};

/// Path `0 − 1 − … − (n−1)` with unit weights.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edges(n, &(0..n - 1).map(|i| (i, i + 1, 1.0)).collect::<Vec<_>>())
}

/// Cycle on `n ≥ 3` vertices with unit weights.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    Graph::from_edges(
        n,
        &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
    )
}

/// Complete graph `K_n` with unit weights.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 2);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v, 1.0));
        }
    }
    Graph::from_edges(n, &edges)
}

/// Star with center `0` and `n−1` leaves, unit weights.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    Graph::from_edges(n, &(1..n).map(|v| (0, v, 1.0)).collect::<Vec<_>>())
}

/// 2D grid graph with unit weights; vertex `(r, c)` is `r·cols + c`.
///
/// # Panics
///
/// Panics if either dimension is zero or the grid has fewer than 2 vertices.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1 && rows * cols >= 2);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                edges.push((v, v + 1, 1.0));
            }
            if r + 1 < rows {
                edges.push((v, v + cols, 1.0));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges)
}

/// Hypercube graph on `2^dim` vertices, unit weights.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 20`.
pub fn hypercube(dim: usize) -> Graph {
    assert!((1..=20).contains(&dim));
    let n = 1usize << dim;
    let mut edges = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                edges.push((v, u, 1.0));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// Circulant graph: vertex `i` connected to `i ± o` for each offset `o`.
/// With offsets `{1, 2, 4, …}` this is a standard deterministic expander
/// family used as a well-conditioned workload.
///
/// # Panics
///
/// Panics if `n < 3`, offsets are empty, or an offset is `0` or `≥ n/2+1`.
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n >= 3 && !offsets.is_empty());
    let mut edges = Vec::new();
    for &o in offsets {
        assert!(o >= 1 && 2 * o <= n, "offset {o} invalid for n={n}");
        for i in 0..n {
            let j = (i + o) % n;
            // Avoid double-adding the antipodal matching when 2o == n.
            if 2 * o == n && i >= j {
                continue;
            }
            edges.push((i, j, 1.0));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A deterministic expander: circulant with offsets `1, 2, 4, …, 2^⌊log n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn expander(n: usize) -> Graph {
    let mut offsets = Vec::new();
    let mut o = 1usize;
    while 2 * o <= n {
        offsets.push(o);
        o *= 2;
    }
    circulant(n, &offsets)
}

/// Two cliques of size `k` joined by a single bridge edge — the canonical
/// "two communities" instance for expander decomposition.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize) -> Graph {
    assert!(k >= 2);
    let mut edges = Vec::new();
    for base in [0, k] {
        for u in 0..k {
            for v in (u + 1)..k {
                edges.push((base + u, base + v, 1.0));
            }
        }
    }
    edges.push((k - 1, k, 1.0));
    Graph::from_edges(2 * k, &edges)
}

/// Uniform random graph with `m` distinct edges (no parallels), unit
/// weights. Connectivity is *not* guaranteed.
///
/// # Panics
///
/// Panics if `m` exceeds the number of vertex pairs.
pub fn random_gnm(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m <= n * (n - 1) / 2, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            chosen.insert((u.min(v), u.max(v)));
        }
    }
    let edges: Vec<_> = chosen.into_iter().map(|(u, v)| (u, v, 1.0)).collect();
    Graph::from_edges(n, &edges)
}

/// Connected random graph: a random recursive spanning tree plus
/// `extra_edges` random distinct non-tree edges, with integer weights drawn
/// uniformly from `1..=max_weight`.
///
/// # Panics
///
/// Panics if `n < 2` or `max_weight < 1`.
pub fn random_connected(n: usize, extra_edges: usize, max_weight: u64, seed: u64) -> Graph {
    assert!(n >= 2 && max_weight >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chosen = std::collections::BTreeSet::new();
    for v in 1..n {
        let u = rng.gen_range(0..v);
        chosen.insert((u, v));
    }
    let max_extra = n * (n - 1) / 2 - chosen.len();
    let extra = extra_edges.min(max_extra);
    let mut added = 0;
    while added < extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && chosen.insert((u.min(v), u.max(v))) {
            added += 1;
        }
    }
    let edges: Vec<_> = chosen
        .into_iter()
        .map(|(u, v)| (u, v, rng.gen_range(1..=max_weight) as f64))
        .collect();
    Graph::from_edges(n, &edges)
}

/// Random Eulerian multigraph: the union of `num_cycles` random simple
/// cycles (each on `3..=n` random distinct vertices). Every vertex has even
/// degree by construction — the workload of experiment E4.
///
/// # Panics
///
/// Panics if `n < 3` or `num_cycles == 0`.
pub fn random_eulerian(n: usize, num_cycles: usize, seed: u64) -> Graph {
    assert!(n >= 3 && num_cycles >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for _ in 0..num_cycles {
        let len = rng.gen_range(3..=n);
        // Random distinct vertices via partial Fisher-Yates.
        let mut perm: Vec<VertexId> = (0..n).collect();
        for i in 0..len {
            let j = rng.gen_range(i..n);
            perm.swap(i, j);
        }
        for i in 0..len {
            g.add_edge(perm[i], perm[(i + 1) % len], 1.0);
        }
    }
    g
}

/// Random directed `s`-`t` flow network on `n` vertices: a guaranteed
/// backbone path `0 → 1 → … → n−1` plus `extra_edges` random directed
/// edges, with capacities uniform in `1..=max_capacity`. Source is `0`,
/// sink is `n−1`.
///
/// # Panics
///
/// Panics if `n < 2` or `max_capacity < 1`.
pub fn random_flow_network(n: usize, extra_edges: usize, max_capacity: i64, seed: u64) -> DiGraph {
    assert!(n >= 2 && max_capacity >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, rng.gen_range(1..=max_capacity), 0);
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 100 * extra_edges + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v, rng.gen_range(1..=max_capacity), 0);
            added += 1;
        }
    }
    g
}

/// Random unit-capacity directed graph with costs in `1..=max_cost`
/// (the workload of Theorem 1.3). Includes a backbone path so every vertex
/// is reachable from vertex 0.
///
/// # Panics
///
/// Panics if `n < 2` or `max_cost < 1`.
pub fn random_unit_digraph(n: usize, extra_edges: usize, max_cost: i64, seed: u64) -> DiGraph {
    assert!(n >= 2 && max_cost >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1, 1, rng.gen_range(1..=max_cost));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 100 * extra_edges + 100 {
        guard += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v, 1, rng.gen_range(1..=max_cost));
            added += 1;
        }
    }
    g
}

/// Bipartite assignment instance as unit-capacity min-cost flow:
/// `k` workers (vertices `0..k`, demand `+1`) and `k` jobs (vertices
/// `k..2k`, demand `−1`), a perfect matching backbone plus
/// `extra_edges_per_worker` random worker→job edges, costs uniform in
/// `1..=max_cost`. Returns the graph and the demand vector.
///
/// # Panics
///
/// Panics if `k < 1` or `max_cost < 1`.
pub fn bipartite_assignment(
    k: usize,
    extra_edges_per_worker: usize,
    max_cost: i64,
    seed: u64,
) -> (DiGraph, Vec<i64>) {
    assert!(k >= 1 && max_cost >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(2 * k);
    for w in 0..k {
        g.add_edge(w, k + w, 1, rng.gen_range(1..=max_cost));
        for _ in 0..extra_edges_per_worker {
            let j = rng.gen_range(0..k);
            if j != w {
                g.add_edge(w, k + j, 1, rng.gen_range(1..=max_cost));
            }
        }
    }
    let mut sigma = vec![0i64; 2 * k];
    for w in 0..k {
        sigma[w] = 1;
        sigma[k + w] = -1;
    }
    (g, sigma)
}

/// Directed grid "road network": `rows × cols` junctions; each grid edge
/// becomes a pair of anti-parallel directed edges with capacities uniform
/// in `1..=max_capacity`. Source is the north-west corner, sink the
/// south-east corner.
///
/// # Panics
///
/// Panics if either dimension is `< 2` or `max_capacity < 1`.
pub fn grid_flow_network(rows: usize, cols: usize, max_capacity: i64, seed: u64) -> DiGraph {
    assert!(rows >= 2 && cols >= 2 && max_capacity >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = DiGraph::new(rows * cols);
    let both = |g: &mut DiGraph, u: usize, v: usize, rng: &mut StdRng| {
        g.add_edge(u, v, rng.gen_range(1..=max_capacity), 0);
        g.add_edge(v, u, rng.gen_range(1..=max_capacity), 0);
    };
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                both(&mut g, v, v + 1, &mut rng);
            }
            if r + 1 < rows {
                both(&mut g, v, v + cols, &mut rng);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_invariants_of_fixed_families() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(6).m(), 6);
        assert!(cycle(6).is_eulerian());
        assert_eq!(complete(5).m(), 10);
        assert_eq!(star(7).degree(0), 6);
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert!(g.is_connected());
        let h = hypercube(4);
        assert_eq!(h.n(), 16);
        assert!((0..16).all(|v| h.degree(v) == 4));
    }

    #[test]
    fn circulant_and_expander_are_regular_and_connected() {
        let g = expander(32);
        assert!(g.is_connected());
        let d0 = g.degree(0);
        assert!((0..32).all(|v| g.degree(v) == d0));
        // Odd n with antipodal-free offsets.
        let c = circulant(9, &[1, 2]);
        assert!((0..9).all(|v| c.degree(v) == 4));
    }

    #[test]
    fn circulant_handles_antipodal_offset() {
        let c = circulant(6, &[3]);
        assert_eq!(c.m(), 3); // perfect matching, not doubled
        assert!((0..6).all(|v| c.degree(v) == 1));
    }

    #[test]
    fn barbell_has_bridge() {
        let g = barbell(4);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 2 * 6 + 1);
        assert!(g.is_connected());
        let side: Vec<bool> = (0..8).map(|v| v < 4).collect();
        assert_eq!(g.cut_size(&side), 1);
    }

    #[test]
    fn random_generators_are_deterministic_per_seed() {
        let a = random_connected(20, 15, 8, 42);
        let b = random_connected(20, 15, 8, 42);
        assert_eq!(a.edge_triples(), b.edge_triples());
        let c = random_connected(20, 15, 8, 43);
        assert_ne!(a.edge_triples(), c.edge_triples());
    }

    #[test]
    fn random_connected_is_connected_with_requested_size() {
        for seed in 0..5 {
            let g = random_connected(25, 30, 4, seed);
            assert!(g.is_connected());
            assert_eq!(g.m(), 24 + 30);
            assert!(g.max_weight() <= 4.0);
        }
    }

    #[test]
    fn random_gnm_has_exact_edge_count() {
        let g = random_gnm(10, 17, 7);
        assert_eq!(g.m(), 17);
    }

    #[test]
    fn random_eulerian_has_even_degrees() {
        for seed in 0..5 {
            let g = random_eulerian(12, 4, seed);
            assert!(g.is_eulerian(), "seed {seed}");
        }
    }

    #[test]
    fn flow_network_has_backbone() {
        let g = random_flow_network(8, 12, 5, 3);
        assert_eq!(g.m(), 7 + 12);
        assert!(g.max_capacity() <= 5);
        // Backbone guarantees positive max flow from 0 to n-1.
        assert!(g.out_degree(0) >= 1);
    }

    #[test]
    fn unit_digraph_has_unit_capacities() {
        let g = random_unit_digraph(10, 20, 9, 5);
        assert!(g.edges().iter().all(|e| e.capacity == 1));
        assert!(g.max_abs_cost() <= 9);
    }

    #[test]
    fn assignment_instance_balances_demands() {
        let (g, sigma) = bipartite_assignment(6, 2, 10, 11);
        assert_eq!(sigma.iter().sum::<i64>(), 0);
        assert!(g.edges().iter().all(|e| e.from < 6 && e.to >= 6));
        // Backbone matching makes the instance feasible: routing 1 unit on
        // every worker's first edge satisfies all demands.
        let mut flow = vec![0i64; g.m()];
        for w in 0..6 {
            flow[g.out_edges(w)[0]] = 1;
        }
        assert!(g.is_feasible_flow(&flow, &sigma));
    }

    #[test]
    fn expander_has_positive_exhaustive_conductance() {
        let g = expander(12);
        assert!(g.conductance_exact() > 0.2, "expander family must expand");
    }

    #[test]
    fn hypercube_is_bipartite_balanced() {
        let g = hypercube(3);
        // 2-color by parity of popcount: no edge within a class.
        for e in g.edges() {
            assert_ne!(
                (e.u.count_ones() % 2),
                (e.v.count_ones() % 2),
                "hypercube edges flip exactly one bit"
            );
        }
    }

    #[test]
    fn random_eulerian_stays_in_range() {
        let g = random_eulerian(5, 2, 9);
        assert!(g.edges().iter().all(|e| e.u < 5 && e.v < 5));
        assert!(g.m() >= 6); // two cycles of length >= 3
    }

    #[test]
    fn grid_flow_network_shape() {
        let g = grid_flow_network(3, 3, 4, 1);
        assert_eq!(g.n(), 9);
        assert_eq!(g.m(), 2 * (2 * 3 + 2 * 3));
    }
}
