//! Integral flow utilities shared by the flow pipelines: fixing small
//! demand deficits of a unit-scaled flow by residual augmentation.

use crate::DiGraph;

/// Adjusts the integer flow `units` (in units of `1/cap_scale` of a flow
/// unit; edge `e`'s capacity is `capacity(e) · cap_scale` units) so its
/// net-out vector equals `target_units` exactly, by BFS augmentations in
/// the residual graph. Returns `true` on success; on `false` the flow is
/// left in a partially-fixed but still capacity-feasible state.
///
/// This is the float-artifact bridge of `DESIGN.md` §2.5/§2.6: the paper's
/// algorithms maintain flows as exact multiples of `Δ` natively, so this
/// routine performs no model communication — it exists solely because the
/// simulation's IPM iterates in `f64`.
///
/// # Panics
///
/// Panics if lengths mismatch, `cap_scale < 1`, a flow entry is outside
/// `[0, capacity·cap_scale]`, or `Σ target_units != 0`.
pub fn fix_unit_deficits(
    g: &DiGraph,
    units: &mut [i64],
    target_units: &[i64],
    cap_scale: i64,
) -> bool {
    assert_eq!(units.len(), g.m(), "flow length mismatch");
    assert_eq!(target_units.len(), g.n(), "target length mismatch");
    assert!(cap_scale >= 1, "cap_scale must be positive");
    assert_eq!(target_units.iter().sum::<i64>(), 0, "targets must balance");
    for (i, e) in g.edges().iter().enumerate() {
        assert!(
            units[i] >= 0 && units[i] <= e.capacity * cap_scale,
            "unit flow out of bounds on edge {i}"
        );
    }
    let n = g.n();
    let mut deficit = vec![0i64; n]; // positive: must send more
    for (v, &tv) in target_units.iter().enumerate() {
        deficit[v] += tv;
    }
    for (i, e) in g.edges().iter().enumerate() {
        deficit[e.from] -= units[i];
        deficit[e.to] += units[i];
    }
    loop {
        let Some(source) = (0..n).find(|&v| deficit[v] > 0) else {
            return deficit.iter().all(|&d| d == 0);
        };
        // BFS in the residual graph from `source` to any negative-deficit
        // vertex.
        let mut parent: Vec<Option<(usize, bool)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[source] = true;
        let mut queue = std::collections::VecDeque::from([source]);
        let mut reached = None;
        'bfs: while let Some(v) = queue.pop_front() {
            if deficit[v] < 0 {
                reached = Some(v);
                break 'bfs;
            }
            for (i, e) in g.edges().iter().enumerate() {
                if e.from == v && units[i] < e.capacity * cap_scale && !seen[e.to] {
                    seen[e.to] = true;
                    parent[e.to] = Some((i, true));
                    queue.push_back(e.to);
                }
                if e.to == v && units[i] > 0 && !seen[e.from] {
                    seen[e.from] = true;
                    parent[e.from] = Some((i, false));
                    queue.push_back(e.from);
                }
            }
        }
        let Some(sink) = reached else {
            return false;
        };
        // Bottleneck-augment source → sink.
        let mut path = Vec::new();
        let mut v = sink;
        while v != source {
            let (i, fwd) = parent[v].expect("bfs parent");
            path.push((i, fwd));
            v = if fwd { g.edge(i).from } else { g.edge(i).to };
        }
        let mut bottleneck = deficit[source].min(-deficit[sink]);
        for &(i, fwd) in &path {
            let e = g.edge(i);
            bottleneck = bottleneck.min(if fwd {
                e.capacity * cap_scale - units[i]
            } else {
                units[i]
            });
        }
        debug_assert!(bottleneck > 0);
        for &(i, fwd) in &path {
            if fwd {
                units[i] += bottleneck;
            } else {
                units[i] -= bottleneck;
            }
        }
        deficit[source] -= bottleneck;
        deficit[sink] += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn fixes_small_perturbations_of_an_exact_flow() {
        let g = generators::random_flow_network(10, 20, 4, 3);
        // A valid integral flow scaled by 8 units, perturbed on a few edges.
        let mut units: Vec<i64> = vec![0; g.m()];
        units[0] = 8.min(g.edge(0).capacity * 8);
        let target = {
            let mut t = vec![0i64; 10];
            t[g.edge(0).from] = units[0];
            t[g.edge(0).to] = -units[0];
            t
        };
        // Perturb a different edge by +1 unit (breaking conservation).
        if g.m() > 5 && g.edge(5).capacity > 0 {
            units[5] += 1;
        }
        let ok = fix_unit_deficits(&g, &mut units, &target, 8);
        assert!(ok);
        let mut net = vec![0i64; 10];
        for (i, e) in g.edges().iter().enumerate() {
            net[e.from] += units[i];
            net[e.to] -= units[i];
        }
        assert_eq!(net, target);
    }

    #[test]
    fn reports_failure_when_targets_unreachable() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 1)]);
        let mut units = vec![0i64];
        let target = vec![1, 0, -1];
        assert!(!fix_unit_deficits(&g, &mut units, &target, 1));
        // Flow still capacity-feasible.
        assert!(units[0] >= 0 && units[0] <= 1);
    }

    #[test]
    fn noop_when_already_on_target() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 2), (1, 2, 2)]);
        let mut units = vec![4, 4];
        let target = vec![4, 0, -4];
        assert!(fix_unit_deficits(&g, &mut units, &target, 2));
        assert_eq!(units, vec![4, 4]);
    }
}
