//! DIMACS-format graph I/O.
//!
//! Supports the classic DIMACS maximum-flow format (`p max N M`,
//! `n <id> s|t`, `a <from> <to> <cap>`, 1-indexed) and its min-cost
//! extension (`p min`, `a <from> <to> <low> <cap> <cost>`,
//! `n <id> <supply>`), so instances from standard benchmark suites can be
//! fed to the congested clique pipelines.

use std::error::Error;
use std::fmt;

use crate::DiGraph;

/// A parsed DIMACS max-flow instance.
#[derive(Debug, Clone)]
pub struct MaxFlowInstance {
    /// The capacitated digraph (0-indexed).
    pub graph: DiGraph,
    /// Source vertex.
    pub source: usize,
    /// Sink vertex.
    pub sink: usize,
}

/// A parsed DIMACS min-cost-flow instance.
#[derive(Debug, Clone)]
pub struct MinCostFlowInstance {
    /// The digraph with capacities and costs (0-indexed).
    pub graph: DiGraph,
    /// Demand vector (`+supply` at sources, `−demand` at sinks).
    pub sigma: Vec<i64>,
}

/// DIMACS parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DimacsError {
    /// The `p` problem line is missing or malformed.
    MissingProblemLine,
    /// A line could not be parsed.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The instance lacks a source or sink designation (max-flow).
    MissingTerminals,
    /// Lower bounds other than 0 are not supported (min-cost).
    UnsupportedLowerBound {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::MissingProblemLine => write!(f, "missing dimacs problem line"),
            DimacsError::Malformed { line, reason } => {
                write!(f, "malformed dimacs line {line}: {reason}")
            }
            DimacsError::MissingTerminals => write!(f, "instance lacks source/sink lines"),
            DimacsError::UnsupportedLowerBound { line } => {
                write!(f, "nonzero lower bound at line {line} is unsupported")
            }
        }
    }
}

impl Error for DimacsError {}

fn parse_fields(line: &str) -> Vec<&str> {
    line.split_whitespace().collect()
}

/// Parses a DIMACS max-flow instance from text.
///
/// # Errors
///
/// [`DimacsError`] on malformed input.
pub fn parse_dimacs_max_flow(text: &str) -> Result<MaxFlowInstance, DimacsError> {
    let mut graph: Option<DiGraph> = None;
    let mut source = None;
    let mut sink = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let fields = parse_fields(line);
        match fields[0] {
            "p" => {
                if fields.len() != 4 || fields[1] != "max" {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `p max N M`".into(),
                    });
                }
                let n: usize = fields[2].parse().map_err(|_| DimacsError::Malformed {
                    line: lineno,
                    reason: "bad vertex count".into(),
                })?;
                graph = Some(DiGraph::new(n));
            }
            "n" => {
                if fields.len() != 3 {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `n <id> s|t`".into(),
                    });
                }
                let id: usize = fields[1].parse().map_err(|_| DimacsError::Malformed {
                    line: lineno,
                    reason: "bad vertex id".into(),
                })?;
                match fields[2] {
                    "s" => source = Some(id - 1),
                    "t" => sink = Some(id - 1),
                    other => {
                        return Err(DimacsError::Malformed {
                            line: lineno,
                            reason: format!("unknown terminal kind {other}"),
                        })
                    }
                }
            }
            "a" => {
                let g = graph.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                if fields.len() != 4 {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `a <from> <to> <cap>`".into(),
                    });
                }
                let parse = |s: &str| -> Result<i64, DimacsError> {
                    s.parse().map_err(|_| DimacsError::Malformed {
                        line: lineno,
                        reason: "bad number".into(),
                    })
                };
                let (u, v, cap) = (parse(fields[1])?, parse(fields[2])?, parse(fields[3])?);
                if u < 1 || v < 1 || u as usize > g.n() || v as usize > g.n() {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "vertex id out of range".into(),
                    });
                }
                g.add_edge(u as usize - 1, v as usize - 1, cap, 0);
            }
            other => {
                return Err(DimacsError::Malformed {
                    line: lineno,
                    reason: format!("unknown line kind {other}"),
                })
            }
        }
    }
    let graph = graph.ok_or(DimacsError::MissingProblemLine)?;
    match (source, sink) {
        (Some(s), Some(t)) => Ok(MaxFlowInstance {
            graph,
            source: s,
            sink: t,
        }),
        _ => Err(DimacsError::MissingTerminals),
    }
}

/// Renders a max-flow instance in DIMACS format.
pub fn write_dimacs_max_flow(instance: &MaxFlowInstance) -> String {
    let g = &instance.graph;
    let mut out = String::new();
    out.push_str(&format!("p max {} {}\n", g.n(), g.m()));
    out.push_str(&format!("n {} s\n", instance.source + 1));
    out.push_str(&format!("n {} t\n", instance.sink + 1));
    for e in g.edges() {
        out.push_str(&format!("a {} {} {}\n", e.from + 1, e.to + 1, e.capacity));
    }
    out
}

/// Parses a DIMACS min-cost-flow instance from text.
///
/// # Errors
///
/// [`DimacsError`] on malformed input or nonzero lower bounds.
pub fn parse_dimacs_min_cost_flow(text: &str) -> Result<MinCostFlowInstance, DimacsError> {
    let mut graph: Option<DiGraph> = None;
    let mut sigma: Vec<i64> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let fields = parse_fields(line);
        let parse = |s: &str| -> Result<i64, DimacsError> {
            s.parse().map_err(|_| DimacsError::Malformed {
                line: lineno,
                reason: "bad number".into(),
            })
        };
        match fields[0] {
            "p" => {
                if fields.len() != 4 || fields[1] != "min" {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `p min N M`".into(),
                    });
                }
                let n = parse(fields[2])? as usize;
                graph = Some(DiGraph::new(n));
                sigma = vec![0; n];
            }
            "n" => {
                if graph.is_none() {
                    return Err(DimacsError::MissingProblemLine);
                }
                if fields.len() != 3 {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `n <id> <supply>`".into(),
                    });
                }
                let id = parse(fields[1])? as usize;
                if id < 1 || id > sigma.len() {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "vertex id out of range".into(),
                    });
                }
                sigma[id - 1] = parse(fields[2])?;
            }
            "a" => {
                let g = graph.as_mut().ok_or(DimacsError::MissingProblemLine)?;
                if fields.len() != 6 {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "expected `a <from> <to> <low> <cap> <cost>`".into(),
                    });
                }
                let (u, v) = (parse(fields[1])? as usize, parse(fields[2])? as usize);
                let low = parse(fields[3])?;
                let cap = parse(fields[4])?;
                let cost = parse(fields[5])?;
                if low != 0 {
                    return Err(DimacsError::UnsupportedLowerBound { line: lineno });
                }
                if u < 1 || v < 1 || u > g.n() || v > g.n() {
                    return Err(DimacsError::Malformed {
                        line: lineno,
                        reason: "vertex id out of range".into(),
                    });
                }
                g.add_edge(u - 1, v - 1, cap, cost);
            }
            other => {
                return Err(DimacsError::Malformed {
                    line: lineno,
                    reason: format!("unknown line kind {other}"),
                })
            }
        }
    }
    let graph = graph.ok_or(DimacsError::MissingProblemLine)?;
    Ok(MinCostFlowInstance { graph, sigma })
}

/// Renders a min-cost-flow instance in DIMACS format.
pub fn write_dimacs_min_cost_flow(instance: &MinCostFlowInstance) -> String {
    let g = &instance.graph;
    let mut out = String::new();
    out.push_str(&format!("p min {} {}\n", g.n(), g.m()));
    for (v, &s) in instance.sigma.iter().enumerate() {
        if s != 0 {
            out.push_str(&format!("n {} {}\n", v + 1, s));
        }
    }
    for e in g.edges() {
        out.push_str(&format!(
            "a {} {} 0 {} {}\n",
            e.from + 1,
            e.to + 1,
            e.capacity,
            e.cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn max_flow_roundtrip() {
        let g = generators::random_flow_network(8, 12, 5, 3);
        let instance = MaxFlowInstance {
            graph: g,
            source: 0,
            sink: 7,
        };
        let text = write_dimacs_max_flow(&instance);
        let parsed = parse_dimacs_max_flow(&text).unwrap();
        assert_eq!(parsed.source, 0);
        assert_eq!(parsed.sink, 7);
        assert_eq!(parsed.graph.n(), instance.graph.n());
        assert_eq!(parsed.graph.edges(), instance.graph.edges());
    }

    #[test]
    fn parses_classic_example_with_comments() {
        let text = "c a tiny instance\np max 4 3\nn 1 s\nn 4 t\n\na 1 2 5\na 2 3 3\na 3 4 5\n";
        let inst = parse_dimacs_max_flow(text).unwrap();
        assert_eq!(inst.graph.n(), 4);
        assert_eq!(inst.graph.m(), 3);
        assert_eq!(inst.graph.edge(1).capacity, 3);
    }

    #[test]
    fn min_cost_roundtrip() {
        let (g, sigma) = generators::bipartite_assignment(4, 2, 9, 1);
        let instance = MinCostFlowInstance { graph: g, sigma };
        let text = write_dimacs_min_cost_flow(&instance);
        let parsed = parse_dimacs_min_cost_flow(&text).unwrap();
        assert_eq!(parsed.sigma, instance.sigma);
        assert_eq!(parsed.graph.edges(), instance.graph.edges());
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(
            parse_dimacs_max_flow("a 1 2 3\n").unwrap_err(),
            DimacsError::MissingProblemLine
        );
        assert!(matches!(
            parse_dimacs_max_flow("p max 2 1\na 1 2\n").unwrap_err(),
            DimacsError::Malformed { line: 2, .. }
        ));
        assert_eq!(
            parse_dimacs_max_flow("p max 2 1\na 1 2 4\n").unwrap_err(),
            DimacsError::MissingTerminals
        );
        assert!(matches!(
            parse_dimacs_min_cost_flow("p min 2 1\na 1 2 1 4 2\n").unwrap_err(),
            DimacsError::UnsupportedLowerBound { line: 2 }
        ));
    }

    #[test]
    fn rejects_out_of_range_vertices() {
        assert!(matches!(
            parse_dimacs_max_flow("p max 2 1\nn 1 s\nn 2 t\na 1 9 4\n").unwrap_err(),
            DimacsError::Malformed { line: 4, .. }
        ));
    }
}
