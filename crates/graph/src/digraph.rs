use crate::{EdgeId, VertexId};

/// A directed edge with integer capacity and cost (the flow problems of
/// §2.4 use integral capacities `1..=U` and costs `1..=W`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiEdge {
    /// Tail (edge leaves this vertex).
    pub from: VertexId,
    /// Head (edge enters this vertex).
    pub to: VertexId,
    /// Capacity (non-negative).
    pub capacity: i64,
    /// Cost per unit of flow.
    pub cost: i64,
}

/// A directed multigraph on vertices `0..n` with integer capacities and
/// costs. Parallel and anti-parallel edges are allowed; self-loops are not.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    n: usize,
    edges: Vec<DiEdge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl DiGraph {
    /// Creates an empty directed graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
        }
    }

    /// Builds a graph from `(from, to, capacity)` triples with zero costs.
    ///
    /// # Panics
    ///
    /// Same conditions as [`DiGraph::add_edge`].
    pub fn from_capacities(n: usize, edges: &[(VertexId, VertexId, i64)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v, c) in edges {
            g.add_edge(u, v, c, 0);
        }
        g
    }

    /// Adds a directed edge and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, self-loops, or negative capacity.
    pub fn add_edge(&mut self, from: VertexId, to: VertexId, capacity: i64, cost: i64) -> EdgeId {
        assert!(
            from < self.n && to < self.n,
            "edge ({from},{to}) out of range"
        );
        assert_ne!(from, to, "self-loops are not allowed");
        assert!(
            capacity >= 0,
            "capacity must be non-negative, got {capacity}"
        );
        let id = self.edges.len();
        self.edges.push(DiEdge {
            from,
            to,
            capacity,
            cost,
        });
        self.out_adj[from].push(id);
        self.in_adj[to].push(id);
        id
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> DiEdge {
        self.edges[e]
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[DiEdge] {
        &self.edges
    }

    /// Ids of edges leaving `v`.
    pub fn out_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.out_adj[v]
    }

    /// Ids of edges entering `v`.
    pub fn in_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.in_adj[v]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out_adj[v].len()
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.in_adj[v].len()
    }

    /// Largest capacity `U` (`0` for the empty graph).
    pub fn max_capacity(&self) -> i64 {
        self.edges.iter().map(|e| e.capacity).max().unwrap_or(0)
    }

    /// Largest absolute cost `W` (`0` for the empty graph).
    pub fn max_abs_cost(&self) -> i64 {
        self.edges.iter().map(|e| e.cost.abs()).max().unwrap_or(0)
    }

    /// Sum of absolute costs `‖c‖₁` (used by the CMSV initialization).
    pub fn cost_l1(&self) -> i64 {
        self.edges.iter().map(|e| e.cost.abs()).sum()
    }

    /// Checks a flow vector for capacity feasibility and conservation with
    /// respect to demand `sigma` (`Σσ = 0`; positive demand = excess supply
    /// that must leave the vertex). Returns `true` iff
    /// `0 ≤ f_e ≤ cap_e` and `Σ_out f − Σ_in f = σ(v)` for every vertex.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch.
    pub fn is_feasible_flow(&self, flow: &[i64], sigma: &[i64]) -> bool {
        assert_eq!(flow.len(), self.m(), "flow length mismatch");
        assert_eq!(sigma.len(), self.n, "demand length mismatch");
        for (f, e) in flow.iter().zip(&self.edges) {
            if *f < 0 || *f > e.capacity {
                return false;
            }
        }
        let mut net = vec![0i64; self.n];
        for (f, e) in flow.iter().zip(&self.edges) {
            net[e.from] += f;
            net[e.to] -= f;
        }
        net.iter().zip(sigma).all(|(a, b)| a == b)
    }

    /// Value of an `s`-`t` flow: net flow out of `s`.
    ///
    /// # Panics
    ///
    /// Panics if `flow.len() != m` or `s` out of range.
    pub fn flow_value(&self, flow: &[i64], s: VertexId) -> i64 {
        assert_eq!(flow.len(), self.m(), "flow length mismatch");
        assert!(s < self.n, "source out of range");
        let mut v = 0;
        for (f, e) in flow.iter().zip(&self.edges) {
            if e.from == s {
                v += f;
            }
            if e.to == s {
                v -= f;
            }
        }
        v
    }

    /// Total cost `Σ c_e f_e` of a flow.
    ///
    /// # Panics
    ///
    /// Panics if `flow.len() != m`.
    pub fn flow_cost(&self, flow: &[i64]) -> i64 {
        assert_eq!(flow.len(), self.m(), "flow length mismatch");
        flow.iter().zip(&self.edges).map(|(f, e)| f * e.cost).sum()
    }

    /// The demand vector of a maximum-flow instance: `+F` at `s`, `−F` at
    /// `t`, `0` elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `s` or `t` is out of range or `s == t`.
    pub fn st_demand(&self, s: VertexId, t: VertexId, value: i64) -> Vec<i64> {
        assert!(s < self.n && t < self.n && s != t, "bad terminals");
        let mut sigma = vec![0i64; self.n];
        sigma[s] = value;
        sigma[t] = -value;
        sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // s=0 → {1,2} → t=3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 1, 3);
        g.add_edge(1, 3, 1, 1);
        g.add_edge(2, 3, 2, 1);
        g
    }

    #[test]
    fn adjacency_structure() {
        let g = diamond();
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_edges(0), &[0, 1]);
        assert_eq!(g.max_capacity(), 2);
        assert_eq!(g.max_abs_cost(), 3);
        assert_eq!(g.cost_l1(), 6);
    }

    #[test]
    fn feasibility_and_value() {
        let g = diamond();
        let flow = vec![1, 1, 1, 1];
        let sigma = g.st_demand(0, 3, 2);
        assert!(g.is_feasible_flow(&flow, &sigma));
        assert_eq!(g.flow_value(&flow, 0), 2);
        assert_eq!(g.flow_cost(&flow), 1 + 3 + 1 + 1);
        // Violating capacity fails.
        assert!(!g.is_feasible_flow(&[3, 0, 0, 0], &g.st_demand(0, 3, 3)));
        // Violating conservation fails.
        assert!(!g.is_feasible_flow(&[1, 0, 0, 0], &g.st_demand(0, 3, 1)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        DiGraph::new(2).add_edge(1, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_capacity() {
        DiGraph::new(2).add_edge(0, 1, -1, 0);
    }
}
