//! Session reentrancy and cache correctness of the service layer.
//!
//! Pins the ISSUE acceptance criteria: an interleaved multi-graph
//! request stream through one [`FlowEngine`] is bitwise-identical to
//! fresh-engine-per-request execution at 1, 2, and 8 worker threads;
//! cache reuse is observable in per-request stats; re-registration
//! invalidates every cached artifact.

use cc_graph::generators;
use cc_linalg::par::with_threads;
use cc_model::Clique;
use cc_service::{FlowEngine, GraphSpec, Request, Response};

const N: usize = 14;

fn fresh_engine() -> FlowEngine<Clique> {
    // MCF rounding needs two extra clique nodes beyond the digraph.
    let mut engine = FlowEngine::new(Clique::new(N));
    engine.register(
        "lap",
        GraphSpec::Undirected(generators::random_connected(N, 34, 4, 3)),
    );
    engine.register(
        "net",
        GraphSpec::Directed(generators::random_flow_network(10, 18, 4, 2)),
    );
    engine
}

/// The interleaved two-graph stream all the tests replay.
fn stream() -> Vec<Request> {
    let mut b1 = vec![0.0; N];
    b1[0] = 1.0;
    b1[N - 1] = -1.0;
    let mut b2 = vec![0.0; N];
    b2[2] = 2.0;
    b2[7] = -2.0;
    let mut sigma = vec![0i64; 10];
    sigma[0] = 1;
    sigma[9] = -1;
    vec![
        Request::LaplacianSolve {
            graph: "lap".into(),
            b: b1,
            eps: 1e-8,
        },
        Request::MaxFlow {
            graph: "net".into(),
            s: 0,
            t: 9,
        },
        Request::EffectiveResistance {
            graph: "lap".into(),
            s: 1,
            t: 8,
            eps: 1e-8,
        },
        Request::Sssp {
            graph: "net".into(),
            source: 0,
        },
        Request::LaplacianSolve {
            graph: "lap".into(),
            b: b2,
            eps: 1e-8,
        },
        Request::MinCostFlow {
            graph: "net".into(),
            demands: sigma,
        },
        Request::Apsp {
            graph: "net".into(),
        },
        // Same support as request 1: must hit the template cache.
        Request::MaxFlow {
            graph: "net".into(),
            s: 0,
            t: 9,
        },
    ]
}

/// Strict bitwise equality of two responses (floats compared by bits).
fn assert_bits_eq(a: &Response, b: &Response, ctx: &str) {
    match (a, b) {
        (
            Response::Potentials { x, iterations },
            Response::Potentials {
                x: x2,
                iterations: i2,
            },
        ) => {
            assert_eq!(iterations, i2, "{ctx}: iterations");
            assert_eq!(x.len(), x2.len(), "{ctx}: length");
            for (v, (l, r)) in x.iter().zip(x2).enumerate() {
                assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: x[{v}]");
            }
        }
        (
            Response::Resistance { value, iterations },
            Response::Resistance {
                value: v2,
                iterations: i2,
            },
        ) => {
            assert_eq!(iterations, i2, "{ctx}: iterations");
            assert_eq!(value.to_bits(), v2.to_bits(), "{ctx}: resistance");
        }
        (l, r) => assert_eq!(l, r, "{ctx}: exact payloads"),
    }
}

#[test]
fn interleaved_stream_matches_fresh_engine_per_request_bitwise() {
    let mut shared = fresh_engine();
    let shared_out: Vec<Response> = stream()
        .into_iter()
        .map(|r| shared.submit(r).unwrap().response)
        .collect();

    for (i, req) in stream().into_iter().enumerate() {
        let fresh = fresh_engine().submit(req).unwrap().response;
        assert_bits_eq(&shared_out[i], &fresh, &format!("request {i}"));
    }
}

#[test]
fn stream_is_bitwise_identical_across_thread_counts() {
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut engine = fresh_engine();
            stream()
                .into_iter()
                .map(|r| engine.submit(r).unwrap())
                .collect::<Vec<_>>()
        })
    };
    let base = run(1);
    for threads in [2, 8] {
        let got = run(threads);
        assert_eq!(base.len(), got.len());
        for (i, (b, g)) in base.iter().zip(&got).enumerate() {
            assert_bits_eq(&b.response, &g.response, &format!("{threads}t request {i}"));
            assert_eq!(b.stats, g.stats, "{threads}t request {i}: stats");
        }
    }
}

#[test]
fn second_same_support_flow_solve_hits_the_template_cache() {
    let mut engine = fresh_engine();
    let outs: Vec<_> = stream()
        .into_iter()
        .map(|r| engine.submit(r).unwrap())
        .collect();

    // Request 1: first max flow — cold cache, builds and publishes.
    assert_eq!(outs[1].stats.template_cache_hits, 0, "first flow is cold");
    // Request 7: same support — served from the cache.
    assert!(
        outs[7].stats.template_cache_hits > 0,
        "second same-support solve must hit the cache: {:?}",
        outs[7].stats
    );
    let engine_stats = outs[7].stats.engine.as_ref().expect("flow request");
    assert!(engine_stats.total_template_cache_hits() > 0);
    assert_eq!(
        engine_stats.stage("augmentation").builds,
        0,
        "cached template must replace the core's first build"
    );

    // Laplacian solver reuse: request 0 pays the build, 2 and 4 ride it.
    assert!(outs[0].stats.built);
    assert!(!outs[2].stats.built && !outs[4].stats.built);
    // APSP memoization: request 6 pays, and charges rounds.
    assert!(outs[6].stats.built && outs[6].stats.rounds > 0);
}

#[test]
fn reregistration_bumps_generation_and_invalidates_caches() {
    let mut engine = fresh_engine();
    let solve = |engine: &mut FlowEngine<Clique>| {
        let mut b = vec![0.0; N];
        b[0] = 1.0;
        b[5] = -1.0;
        engine
            .submit(Request::LaplacianSolve {
                graph: "lap".into(),
                b,
                eps: 1e-8,
            })
            .unwrap()
    };
    let first = solve(&mut engine);
    assert_eq!(first.stats.generation, 1);
    assert!(first.stats.built);
    let warm = solve(&mut engine);
    assert!(!warm.stats.built, "second solve reuses the factorization");

    // Same support, scaled weights: a new generation must NOT serve the
    // old factorization.
    let g1 = match engine.graph_spec("lap").unwrap() {
        GraphSpec::Undirected(g) => g.clone(),
        _ => unreachable!(),
    };
    let mut g2 = cc_graph::Graph::new(g1.n());
    for e in g1.edges() {
        g2.add_edge(e.u, e.v, e.weight * 2.0);
    }
    assert_eq!(engine.register("lap", GraphSpec::Undirected(g2.clone())), 2);
    assert_eq!(engine.generation("lap"), Some(2));

    let fresh = solve(&mut engine);
    assert_eq!(fresh.stats.generation, 2);
    assert!(fresh.stats.built, "generation bump drops the solver");

    // The response matches a fresh engine on the new graph bitwise.
    let mut oracle = FlowEngine::new(Clique::new(N));
    oracle.register("lap", GraphSpec::Undirected(g2));
    let want = solve(&mut oracle);
    assert_bits_eq(&fresh.response, &want.response, "post-bump solve");

    // Scaling all weights by 2 halves the potentials; the stale
    // factorization would have reproduced `first` instead.
    let (Response::Potentials { x: x1, .. }, Response::Potentials { x: x2, .. }) =
        (&first.response, &fresh.response)
    else {
        unreachable!()
    };
    assert!(
        x1.iter()
            .zip(x2)
            .any(|(a, b)| (a - b).abs() > 1e-12 * a.abs().max(1.0)),
        "new weights must change the solution"
    );
}

#[test]
fn batched_solves_match_solo_solves_bitwise_and_in_rounds() {
    let reqs = || {
        let mut b1 = vec![0.0; N];
        b1[3] = 1.0;
        b1[11] = -1.0;
        let mut b2 = vec![0.0; N];
        b2[0] = 0.5;
        b2[9] = -0.5;
        let mut b3 = vec![0.0; N];
        b3[6] = -2.0;
        b3[13] = 2.0;
        vec![
            Request::LaplacianSolve {
                graph: "lap".into(),
                b: b1,
                eps: 1e-7,
            },
            Request::Sssp {
                graph: "net".into(),
                source: 0,
            },
            Request::LaplacianSolve {
                graph: "lap".into(),
                b: b2,
                eps: 1e-7,
            },
            Request::LaplacianSolve {
                graph: "lap".into(),
                b: b3,
                eps: 1e-7,
            },
        ]
    };

    let mut batched = fresh_engine();
    let batch_out: Vec<_> = batched
        .submit_batch(reqs())
        .into_iter()
        .map(|r| r.unwrap())
        .collect();
    let mut solo = fresh_engine();
    let solo_out: Vec<_> = reqs()
        .into_iter()
        .map(|r| solo.submit(r).unwrap())
        .collect();

    for (i, (b, s)) in batch_out.iter().zip(&solo_out).enumerate() {
        assert_bits_eq(&b.response, &s.response, &format!("request {i}"));
    }
    // The three same-eps solves were admitted as one width-3 batch…
    for i in [0, 2, 3] {
        assert_eq!(batch_out[i].stats.batched_with, 3, "request {i}");
    }
    assert_eq!(batch_out[1].stats.batched_with, 1);
    // …at exactly the rounds the solo solves cost in total.
    assert_eq!(
        batched.ledger().total_rounds(),
        solo.ledger().total_rounds(),
        "batch admission must not change total rounds"
    );
}

#[test]
fn errors_carry_request_id_and_graph_and_ids_advance() {
    let mut engine = fresh_engine();
    let e = engine
        .submit(Request::Apsp {
            graph: "nope".into(),
        })
        .unwrap_err();
    assert_eq!(e.request_id, 0);
    assert_eq!(e.graph, "nope");

    let ok = engine
        .submit(Request::Sssp {
            graph: "net".into(),
            source: 0,
        })
        .unwrap();
    assert_eq!(ok.stats.request_id, 1, "IDs advance across failures");

    // Kind mismatch is a typed BadRequest, not a panic.
    let e = engine
        .submit(Request::MaxFlow {
            graph: "lap".into(),
            s: 0,
            t: 1,
        })
        .unwrap_err();
    assert_eq!(e.request_id, 2);
    assert!(matches!(
        e.kind,
        cc_service::ServiceErrorKind::BadRequest { .. }
    ));
}
