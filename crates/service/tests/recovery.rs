//! Retry/backoff recovery of the service layer under node-level
//! adversaries.
//!
//! The pinned scenario per pipeline: a crash–recover adversary kills a
//! node for the opening ledger rounds of the request, attempt 1 fails
//! with a typed comm-rooted error, the engine's [`RetryPolicy`] charges
//! backoff rounds (pushing the ledger past the crash window), degrades
//! to a fresh per-graph build, and attempt 2 returns a result
//! **bitwise identical** to a fault-free run — over a plain `Clique`
//! and over `ThreadedComm` at 1, 2, and 8 workers.

use cc_graph::generators;
use cc_model::{
    AdversaryComm, AdversarySchedule, AdversaryStrategy, BroadcastComm, Clique, Communicator,
    ThreadedComm,
};
use cc_service::{
    EngineConfig, FlowEngine, GraphSpec, Request, Response, RetryPolicy, ServiceErrorKind,
    ServiceOutcome,
};
use proptest::prelude::*;

const N: usize = 14;
/// Crash window: node 1 is dead for the first `CRASH_UNTIL` ledger
/// rounds of the run — long enough that every pipeline's opening
/// communication hits it.
const CRASH_UNTIL: u64 = 50;
/// Backoff charged before the retry; `≥ CRASH_UNTIL` guarantees the
/// retried attempt starts after the node recovered.
const BACKOFF: u64 = 200;

fn register_graphs<C: Communicator>(engine: &mut FlowEngine<C>) {
    engine.register(
        "lap",
        GraphSpec::Undirected(generators::random_connected(N, 34, 4, 3)),
    );
    engine.register(
        "net",
        GraphSpec::Directed(generators::random_flow_network(10, 18, 4, 2)),
    );
}

fn retrying_config() -> EngineConfig {
    EngineConfig {
        retry: RetryPolicy::retries(3, BACKOFF),
        ..EngineConfig::default()
    }
}

fn crash_schedule() -> AdversarySchedule {
    AdversarySchedule::new(17).with(
        1,
        AdversaryStrategy::CrashRecover {
            from_round: 0,
            until_round: CRASH_UNTIL,
        },
    )
}

/// One request per fallible pipeline (APSP is excluded by design: it is
/// charge-only — no payload ever moves, so no adversary can fail it).
fn pipeline_requests() -> Vec<(&'static str, Request)> {
    let mut b = vec![0.0; N];
    b[0] = 1.0;
    b[N - 1] = -1.0;
    let mut sigma = vec![0i64; 10];
    sigma[0] = 1;
    sigma[9] = -1;
    vec![
        (
            "laplacian_solve",
            Request::LaplacianSolve {
                graph: "lap".into(),
                b,
                eps: 1e-8,
            },
        ),
        (
            "effective_resistance",
            Request::EffectiveResistance {
                graph: "lap".into(),
                s: 1,
                t: 8,
                eps: 1e-8,
            },
        ),
        (
            "maxflow",
            Request::MaxFlow {
                graph: "net".into(),
                s: 0,
                t: 9,
            },
        ),
        (
            "mincostflow",
            Request::MinCostFlow {
                graph: "net".into(),
                demands: sigma,
            },
        ),
        (
            "sssp",
            Request::Sssp {
                graph: "net".into(),
                source: 0,
            },
        ),
    ]
}

/// Strict bitwise equality of two responses (floats compared by bits).
fn assert_bits_eq(a: &Response, b: &Response, ctx: &str) {
    match (a, b) {
        (
            Response::Potentials { x, iterations },
            Response::Potentials {
                x: x2,
                iterations: i2,
            },
        ) => {
            assert_eq!(iterations, i2, "{ctx}: iterations");
            assert_eq!(x.len(), x2.len(), "{ctx}: length");
            for (v, (l, r)) in x.iter().zip(x2).enumerate() {
                assert_eq!(l.to_bits(), r.to_bits(), "{ctx}: x[{v}]");
            }
        }
        (
            Response::Resistance { value, iterations },
            Response::Resistance {
                value: v2,
                iterations: i2,
            },
        ) => {
            assert_eq!(iterations, i2, "{ctx}: iterations");
            assert_eq!(value.to_bits(), v2.to_bits(), "{ctx}: resistance");
        }
        (l, r) => assert_eq!(l, r, "{ctx}: exact payloads"),
    }
}

/// Runs `request` on a fresh retrying engine over an adversarial
/// transport built on `substrate`.
fn run_adversarial<C: Communicator>(substrate: C, request: Request) -> ServiceOutcome {
    let mut engine = FlowEngine::with_config(
        AdversaryComm::new(substrate, crash_schedule()),
        retrying_config(),
    );
    register_graphs(&mut engine);
    engine.submit(request).expect("retry must recover")
}

#[test]
fn every_pipeline_recovers_to_the_fault_free_result_bitwise() {
    for (label, request) in pipeline_requests() {
        // Fault-free baseline on a plain clique, no retry needed.
        let mut baseline = FlowEngine::new(Clique::new(N));
        register_graphs(&mut baseline);
        let want = baseline.submit(request.clone()).unwrap();
        assert_eq!(want.stats.attempts, 1);
        assert_eq!(want.stats.degraded, None);

        let got = run_adversarial(Clique::new(N), request.clone());
        assert_eq!(
            got.stats.attempts, 2,
            "{label}: the crash window must fail attempt 1 exactly once"
        );
        let degraded = got.stats.degraded.expect("retried request is degraded");
        assert_eq!(degraded.attempts, 2);
        assert!(
            degraded.faults_observed >= 1,
            "{label}: the failed attempt observed the omission"
        );
        assert_bits_eq(&got.response, &want.response, label);

        // Same scenario over the concurrent substrate at 1/2/8 workers.
        for workers in [1usize, 2, 8] {
            let threaded = run_adversarial(ThreadedComm::with_workers(N, workers), request.clone());
            assert_eq!(
                threaded.stats.attempts, 2,
                "{label}@{workers}w: attempt pattern diverged"
            );
            assert_bits_eq(
                &threaded.response,
                &want.response,
                &format!("{label}@{workers}w"),
            );
        }
    }
}

/// The same crash–recover scenario over the measured Broadcast
/// Congested Clique: the retry leg of the service layer must recover to
/// the fault-free broadcast result bitwise, on `Clique` and on
/// `ThreadedComm` at every worker count. (Broadcast costs move the
/// ledger faster, but the opening communication still lands inside the
/// crash window and `BACKOFF ≥ CRASH_UNTIL` still clears it.)
#[test]
fn broadcast_retry_recovers_to_the_fault_free_result_bitwise() {
    for (label, request) in pipeline_requests() {
        let mut baseline = FlowEngine::new(BroadcastComm::measured(Clique::new(N)));
        register_graphs(&mut baseline);
        let want = baseline.submit(request.clone()).unwrap();
        assert_eq!(want.stats.attempts, 1);

        let got = run_adversarial(BroadcastComm::measured(Clique::new(N)), request.clone());
        assert_eq!(
            got.stats.attempts, 2,
            "{label}/broadcast: the crash window must fail attempt 1 exactly once"
        );
        let degraded = got.stats.degraded.expect("retried request is degraded");
        assert!(
            degraded.faults_observed >= 1,
            "{label}/broadcast: the failed attempt observed the omission"
        );
        assert_bits_eq(&got.response, &want.response, &format!("{label}/broadcast"));

        for workers in [1usize, 2, 8] {
            let threaded = run_adversarial(
                BroadcastComm::measured(ThreadedComm::with_workers(N, workers)),
                request.clone(),
            );
            assert_eq!(
                threaded.stats.attempts, 2,
                "{label}/broadcast@{workers}w: attempt pattern diverged"
            );
            assert_bits_eq(
                &threaded.response,
                &want.response,
                &format!("{label}/broadcast@{workers}w"),
            );
        }
    }
}

#[test]
fn retry_rounds_land_in_the_dedicated_ledger_phase() {
    let mut engine = FlowEngine::with_config(
        AdversaryComm::new(Clique::new(N), crash_schedule()),
        retrying_config(),
    );
    register_graphs(&mut engine);
    let (_, request) = pipeline_requests().remove(0);
    let out = engine.submit(request).unwrap();
    assert_eq!(out.stats.attempts, 2);
    let phase = engine.ledger().phase("service_retry");
    assert_eq!(
        phase.implemented, BACKOFF,
        "one retry charges exactly the first backoff step"
    );
}

#[test]
fn permanent_silence_exhausts_attempts_with_fault_accounting() {
    let schedule = AdversarySchedule::new(3).with(1, AdversaryStrategy::Silent);
    let mut engine = FlowEngine::with_config(
        AdversaryComm::new(Clique::new(N), schedule),
        EngineConfig {
            retry: RetryPolicy::retries(3, 4),
            ..EngineConfig::default()
        },
    );
    register_graphs(&mut engine);
    let (_, request) = pipeline_requests().remove(0);
    let e = engine.submit(request).unwrap_err();
    assert!(e.comm_rooted(), "silence is a comm-rooted failure: {e}");
    assert_eq!(e.attempts, 3, "all attempts spent");
    assert_eq!(
        e.faults_observed, 3,
        "one omission per attempt accumulates: {e}"
    );
    // Exponential backoff: 4 before retry 1, 8 before retry 2.
    assert_eq!(engine.ledger().phase("service_retry").implemented, 12);
}

#[test]
fn round_budget_violations_are_typed_and_never_retried() {
    let mut engine = FlowEngine::with_config(
        Clique::new(N),
        EngineConfig {
            retry: RetryPolicy::retries(3, BACKOFF),
            round_budget: Some(5),
            ..EngineConfig::default()
        },
    );
    register_graphs(&mut engine);
    let (_, request) = pipeline_requests().remove(0);
    let e = engine.submit(request).unwrap_err();
    let ServiceErrorKind::RoundBudgetExceeded { rounds, budget } = e.kind else {
        panic!("expected a budget violation, got {e}");
    };
    assert!(rounds > budget && budget == 5);
    assert_eq!(e.attempts, 1, "budget violations are not transient");
    assert_eq!(engine.ledger().phase("service_retry").implemented, 0);
}

#[test]
fn default_config_keeps_retry_disabled() {
    let config = EngineConfig::default();
    assert_eq!(config.retry, RetryPolicy::default());
    assert_eq!(config.retry.max_attempts, 1);
    assert_eq!(config.round_budget, None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite pin: any transient (benign-window) adversary failure,
    /// retried under a recovering `RetryPolicy`, returns a result
    /// bitwise identical to the fault-free run, with the retry rounds
    /// charged to the dedicated `service_retry` phase.
    #[test]
    fn transient_adversary_retry_is_bitwise_clean(
        until in 5u64..CRASH_UNTIL,
        extra_backoff in 0u64..64,
        seed in 0u64..1_000,
        source in 0usize..N,
    ) {
        let backoff = CRASH_UNTIL + extra_backoff;
        let mut b = vec![0.0; N];
        b[source] = 1.0;
        b[(source + 7) % N] = -1.0;
        let request = Request::LaplacianSolve {
            graph: "lap".into(),
            b,
            eps: 1e-7,
        };

        let mut baseline = FlowEngine::new(Clique::new(N));
        register_graphs(&mut baseline);
        let want = baseline.submit(request.clone()).unwrap();

        let schedule = AdversarySchedule::new(seed).with(
            1,
            AdversaryStrategy::CrashRecover {
                from_round: 0,
                until_round: until,
            },
        );
        let mut engine = FlowEngine::with_config(
            AdversaryComm::new(Clique::new(N), schedule),
            EngineConfig {
                retry: RetryPolicy::retries(4, backoff),
                ..EngineConfig::default()
            },
        );
        register_graphs(&mut engine);
        let got = engine.submit(request).expect("retry must recover");

        prop_assert!(got.stats.attempts >= 2, "window {until} never fired");
        assert_bits_eq(&got.response, &want.response, "proptest case");
        let retry_phase = engine.ledger().phase("service_retry");
        prop_assert!(
            retry_phase.implemented >= backoff,
            "backoff must land in the dedicated phase"
        );
    }
}
