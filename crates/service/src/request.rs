//! The typed request/response surface of the engine.

use cc_graph::{DiGraph, Graph};

/// A graph as registered with the engine. The spec's kind determines
/// which requests the graph can serve:
///
/// * [`GraphSpec::Undirected`] — Laplacian solves and effective
///   resistances;
/// * [`GraphSpec::Directed`] — max flow and min-cost flow, plus SSSP /
///   APSP over the arcs `(from, to, cost)`;
/// * [`GraphSpec::Arcs`] — SSSP / APSP only (weighted directed arcs
///   with no capacity semantics; negative weights allowed).
#[derive(Debug, Clone)]
pub enum GraphSpec {
    /// A positively weighted undirected graph (Laplacian domain).
    Undirected(Graph),
    /// A capacitated, costed directed graph (flow domain).
    Directed(DiGraph),
    /// Bare weighted arcs on vertices `0..n` (shortest-path domain).
    Arcs {
        /// Number of vertices.
        n: usize,
        /// Arcs `(from, to, weight)`.
        arcs: Vec<(usize, usize, i64)>,
    },
}

impl GraphSpec {
    /// Number of vertices of the registered graph.
    pub fn n(&self) -> usize {
        match self {
            GraphSpec::Undirected(g) => g.n(),
            GraphSpec::Directed(g) => g.n(),
            GraphSpec::Arcs { n, .. } => *n,
        }
    }
}

/// One request against a named registered graph.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Solve `L x = b` to relative accuracy `eps` (Theorem 1.1).
    /// Batchable: same-graph, same-`eps` solves submitted together are
    /// admitted as one `solve_multi_into` call.
    LaplacianSolve {
        /// Registered undirected graph.
        graph: String,
        /// Right-hand side, one entry per vertex.
        b: Vec<f64>,
        /// Relative accuracy in the `L`-norm.
        eps: f64,
    },
    /// Effective resistance between `s` and `t` (one Laplacian solve
    /// with `b = e_s − e_t`; `R = x_s − x_t`).
    EffectiveResistance {
        /// Registered undirected graph.
        graph: String,
        /// First terminal.
        s: usize,
        /// Second terminal.
        t: usize,
        /// Relative accuracy of the underlying solve.
        eps: f64,
    },
    /// Exact maximum `s`–`t` flow (Theorem 1.2).
    MaxFlow {
        /// Registered directed graph.
        graph: String,
        /// Source.
        s: usize,
        /// Sink.
        t: usize,
    },
    /// Exact minimum-cost flow routing `demands` (Theorem 1.3).
    MinCostFlow {
        /// Registered directed graph.
        graph: String,
        /// Demand per vertex (must sum to zero).
        demands: Vec<i64>,
    },
    /// Single-source shortest paths (Bellman–Ford; negative arcs
    /// allowed).
    Sssp {
        /// Registered directed or arc graph.
        graph: String,
        /// Source vertex.
        source: usize,
    },
    /// All-pairs shortest paths (min-plus squaring). The distance
    /// matrix is memoized per graph generation: the first request pays
    /// the rounds, later ones are free.
    Apsp {
        /// Registered directed or arc graph.
        graph: String,
    },
}

impl Request {
    /// The graph name the request targets.
    pub fn graph(&self) -> &str {
        match self {
            Request::LaplacianSolve { graph, .. }
            | Request::EffectiveResistance { graph, .. }
            | Request::MaxFlow { graph, .. }
            | Request::MinCostFlow { graph, .. }
            | Request::Sssp { graph, .. }
            | Request::Apsp { graph } => graph,
        }
    }
}

/// The value a successful request produced. `PartialEq` compares the
/// payloads exactly (integral flows, distances) or by IEEE equality
/// (potentials, resistances) — sufficient for the bitwise-determinism
/// suites because no response contains NaN.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// [`Request::LaplacianSolve`]: the potential vector and the
    /// Chebyshev iterations (= broadcast rounds) the solve used.
    Potentials {
        /// Solution `x` (kernel-free per connected component).
        x: Vec<f64>,
        /// Chebyshev iterations spent.
        iterations: usize,
    },
    /// [`Request::EffectiveResistance`]: the resistance value.
    Resistance {
        /// `R_eff(s, t) = x_s − x_t` for `L x = e_s − e_t`.
        value: f64,
        /// Chebyshev iterations spent.
        iterations: usize,
    },
    /// [`Request::MaxFlow`]: an exact maximum flow.
    MaxFlow {
        /// Flow per edge of the registered graph.
        flow: Vec<i64>,
        /// Its `s`–`t` value.
        value: i64,
    },
    /// [`Request::MinCostFlow`]: an exact minimum-cost flow.
    MinCostFlow {
        /// Flow per edge of the registered graph.
        flow: Vec<i64>,
        /// Its total cost.
        cost: i64,
    },
    /// [`Request::Sssp`]: distances, or a negative-cycle verdict.
    Sssp {
        /// Distance per vertex (`None` = unreachable). Empty if a
        /// negative cycle was found.
        dist: Vec<Option<i64>>,
        /// True if a reachable negative cycle was certified.
        negative_cycle: bool,
    },
    /// [`Request::Apsp`]: the full distance matrix, row-major
    /// (`dist[u][v]`, `None` = unreachable).
    Apsp {
        /// Distance matrix.
        dist: Vec<Vec<Option<i64>>>,
    },
}
