//! The long-lived request/response engine.

use std::collections::BTreeMap;

use cc_apsp::{ApspSession, RoundModel, SsspOutcome};
use cc_core::{SolverOptions, SolverSession};
use cc_maxflow::{IpmOptions, MaxFlowSession};
use cc_mcf::{McfOptions, McfSession};
use cc_model::Communicator;
use cc_sparsify::TemplateCache;

use crate::error::{ServiceError, ServiceErrorKind};
use crate::request::{GraphSpec, Request, Response};

/// Bounded retry with deterministic round-charged backoff, applied to
/// **comm-rooted** request failures (the transient class: injected
/// faults, adversary omissions). Validation errors, numerical failures,
/// and round-budget violations are never retried.
///
/// Before retry `k` (1-based) the engine charges
/// `backoff_rounds · 2^(k-1)` implemented rounds to the dedicated
/// `service_retry` ledger phase — deterministic "waiting time" that,
/// against a crash–recover adversary
/// ([`cc_model::AdversaryStrategy::CrashRecover`]), pushes the ledger
/// past the crash window so the retried attempt runs fault-free. Each
/// retry also degrades gracefully: the target graph's cached artifacts
/// (solver factorization, sparsifier templates, APSP matrix) are
/// dropped, so the retry rebuilds from scratch rather than trusting
/// state a faulty transport may have poisoned.
///
/// The default (`max_attempts = 1`) disables retry entirely, preserving
/// the engine's baseline behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included); 1 = no retry.
    pub max_attempts: u32,
    /// Implemented rounds charged before the first retry (doubling on
    /// each further retry); 0 charges nothing.
    pub backoff_rounds: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 1,
            backoff_rounds: 0,
        }
    }
}

impl RetryPolicy {
    /// A retrying policy: up to `max_attempts` total attempts, charging
    /// `backoff_rounds` (doubling) before each retry.
    pub fn retries(max_attempts: u32, backoff_rounds: u64) -> Self {
        Self {
            max_attempts: max_attempts.max(1),
            backoff_rounds,
        }
    }

    /// Implemented rounds charged before 1-based retry `k`.
    fn backoff_for(&self, retry: u32) -> u64 {
        self.backoff_rounds
            .saturating_mul(1u64 << (retry - 1).min(32))
    }
}

/// Recovery accounting of a request that needed more than one attempt
/// (surfaced in [`RequestStats::degraded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degraded {
    /// Attempts the request took (≥ 2).
    pub attempts: u32,
    /// Transport faults observed across the failed attempts.
    pub faults_observed: u64,
}

/// Engine-wide defaults applied to every request.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Laplacian solver construction options (Laplacian solves and
    /// effective resistances). Defaults to `skip_reference = true`: the
    /// engine issues many solves and never reads the `O(n³)` reference.
    pub solver: SolverOptions,
    /// Max-flow pipeline options.
    pub maxflow: IpmOptions,
    /// Min-cost-flow pipeline options.
    pub mcf: McfOptions,
    /// Round-accounting model of APSP requests.
    pub round_model: RoundModel,
    /// Retry/backoff policy for comm-rooted failures (default: no
    /// retry).
    pub retry: RetryPolicy,
    /// Per-request round budget: a request whose ledger-round cost
    /// exceeds it fails with
    /// [`ServiceErrorKind::RoundBudgetExceeded`] (default: unlimited).
    /// The wall-clock analogue is the process watchdog
    /// (`CC_WATCHDOG_SECS`, [`cc_par::watchdog_timeout`]), which also
    /// bounds how long the retry loop keeps trying.
    pub round_budget: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            solver: SolverOptions {
                skip_reference: true,
                ..SolverOptions::default()
            },
            maxflow: IpmOptions::default(),
            mcf: McfOptions::default(),
            round_model: RoundModel::FastMatMul,
            retry: RetryPolicy::default(),
            round_budget: None,
        }
    }
}

/// Per-request accounting: what the request cost and which per-graph
/// state it built or reused.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestStats {
    /// Engine-assigned request ID (submission order).
    pub request_id: u64,
    /// Name of the graph served.
    pub graph: String,
    /// Generation of the graph entry that served the request.
    pub generation: u64,
    /// Ledger rounds the request cost (batched solves: the group's
    /// solve rounds split evenly over its `k` members — exact, because a
    /// batched iteration broadcasts once per column).
    pub rounds: u64,
    /// Charged (oracle + implemented) rounds, same attribution.
    pub charged_rounds: u64,
    /// Sparsifier-template cache hits this request scored against the
    /// graph's generation-scoped [`TemplateCache`].
    pub template_cache_hits: u64,
    /// True if this request paid a per-graph build (Laplacian solver
    /// construction or APSP matrix); false when it reused one a previous
    /// request built.
    pub built: bool,
    /// Size of the admitted batch this request was answered in (1 =
    /// solo).
    pub batched_with: usize,
    /// Barrier-engine accounting of flow requests (`None` otherwise).
    pub engine: Option<cc_ipm::EngineStats>,
    /// Attempts the request took under the engine's [`RetryPolicy`]
    /// (1 = first try succeeded).
    pub attempts: u32,
    /// Recovery accounting when the request needed a retry (`None` on a
    /// clean first attempt).
    pub degraded: Option<Degraded>,
}

/// A successful request: the response plus its accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// The computed value.
    pub response: Response,
    /// What it cost and what it reused.
    pub stats: RequestStats,
}

/// One registered graph: its spec, generation, and the lazily built
/// per-generation state every request against it reuses.
#[derive(Debug, Clone)]
struct GraphEntry {
    generation: u64,
    spec: GraphSpec,
    /// Generation-scoped sparsifier template cache shared by the flow
    /// sessions (max-flow and MCF key by edge support, so one cache
    /// serves both).
    cache: TemplateCache,
    /// Laplacian solver + workspace (undirected graphs; carries the
    /// sparsifier Cholesky factorization reused across requests).
    solver: Option<SolverSession>,
    maxflow: Option<MaxFlowSession>,
    mcf: Option<McfSession>,
    apsp: Option<ApspSession>,
}

/// A long-lived engine over one communicator: a registry of named
/// graphs, session state reused across requests, batch admission for
/// same-graph Laplacian solves, and per-request accounting.
///
/// Determinism: the engine adds no ordering or threading of its own —
/// requests execute in submission order (batched groups at their first
/// member's slot), all per-graph state is rebuilt deterministically, so
/// the same request stream yields bitwise-identical responses at any
/// worker-thread count, matching fresh-engine-per-request execution.
#[derive(Debug)]
pub struct FlowEngine<C: Communicator> {
    clique: C,
    config: EngineConfig,
    graphs: BTreeMap<String, GraphEntry>,
    next_request_id: u64,
}

impl<C: Communicator> FlowEngine<C> {
    /// An engine over `clique` with default configuration.
    pub fn new(clique: C) -> Self {
        Self::with_config(clique, EngineConfig::default())
    }

    /// An engine over `clique` with explicit configuration.
    pub fn with_config(clique: C, config: EngineConfig) -> Self {
        Self {
            clique,
            config,
            graphs: BTreeMap::new(),
            next_request_id: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The communicator's round ledger (all requests charge here).
    pub fn ledger(&self) -> &cc_model::RoundLedger {
        self.clique.ledger()
    }

    /// Registers (or re-registers) `name`. Re-registration bumps the
    /// entry's generation and drops every cached artifact — solver
    /// factorization, sparsifier templates, APSP matrix — so no request
    /// can ever be served from a previous generation's state. Returns
    /// the new generation (1 for a first registration).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more vertices than the clique has nodes.
    pub fn register(&mut self, name: &str, spec: GraphSpec) -> u64 {
        assert!(
            spec.n() <= self.clique.n(),
            "graph {:?} has {} vertices but the clique only {} nodes",
            name,
            spec.n(),
            self.clique.n()
        );
        let generation = self.graphs.get(name).map_or(1, |e| e.generation + 1);
        self.graphs.insert(
            name.to_string(),
            GraphEntry {
                generation,
                spec,
                cache: TemplateCache::new(),
                solver: None,
                maxflow: None,
                mcf: None,
                apsp: None,
            },
        );
        generation
    }

    /// Current generation of a registered graph.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.graphs.get(name).map(|e| e.generation)
    }

    /// The registered spec of a graph.
    pub fn graph_spec(&self, name: &str) -> Option<&GraphSpec> {
        self.graphs.get(name).map(|e| &e.spec)
    }

    /// Registered graph names (lexicographic).
    pub fn graph_names(&self) -> impl Iterator<Item = &str> {
        self.graphs.keys().map(|s| s.as_str())
    }

    /// Submits one request.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on unknown graphs, malformed requests, or any
    /// typed failure of the underlying pipeline.
    pub fn submit(&mut self, request: Request) -> Result<ServiceOutcome, ServiceError> {
        self.submit_batch(vec![request])
            .pop()
            .expect("one request in, one result out")
    }

    /// Submits a batch. Admission: [`Request::LaplacianSolve`] entries
    /// sharing `(graph, eps)` are answered by one `solve_multi_into`
    /// call (each response is its column of the batched solve —
    /// bitwise-identical to a solo solve by the multi-RHS kernel
    /// contract); everything else runs solo, in submission order.
    /// Results are returned in submission order.
    pub fn submit_batch(
        &mut self,
        requests: Vec<Request>,
    ) -> Vec<Result<ServiceOutcome, ServiceError>> {
        let base_id = self.next_request_id;
        self.next_request_id += requests.len() as u64;

        // Group batchable solves by (graph, eps). BTreeMap keeps the
        // grouping deterministic; members stay in submission order.
        let mut groups: BTreeMap<(String, u64), Vec<usize>> = BTreeMap::new();
        for (i, r) in requests.iter().enumerate() {
            if let Request::LaplacianSolve { graph, eps, .. } = r {
                groups
                    .entry((graph.clone(), eps.to_bits()))
                    .or_default()
                    .push(i);
            }
        }

        let mut slots: Vec<Option<Result<ServiceOutcome, ServiceError>>> =
            requests.iter().map(|_| None).collect();
        for ((graph, eps_bits), members) in groups {
            if members.len() < 2 {
                continue; // solo path below
            }
            let eps = f64::from_bits(eps_bits);
            self.execute_solve_group(&graph, eps, &members, base_id, &requests, &mut slots);
        }
        for (i, r) in requests.iter().enumerate() {
            if slots[i].is_none() {
                slots[i] = Some(self.execute(base_id + i as u64, r.clone()));
            }
        }
        self.retry_failed(&requests, base_id, &mut slots);
        slots
            .into_iter()
            .map(|s| s.expect("every slot filled"))
            .collect()
    }

    /// The retry pass: re-executes every comm-rooted failure under the
    /// engine's [`RetryPolicy`], degrading to a fresh per-graph build
    /// and charging deterministic backoff rounds before each attempt.
    /// The process watchdog deadline ([`cc_par::watchdog_timeout`])
    /// bounds how long the loop keeps retrying.
    fn retry_failed(
        &mut self,
        requests: &[Request],
        base_id: u64,
        slots: &mut [Option<Result<ServiceOutcome, ServiceError>>],
    ) {
        let policy = self.config.retry;
        if policy.max_attempts <= 1 {
            return;
        }
        let deadline = cc_par::watchdog_timeout().map(|d| std::time::Instant::now() + d);
        for (i, slot) in slots.iter_mut().enumerate() {
            let mut faults = match slot {
                Some(Err(e)) if e.comm_rooted() => e.faults_observed,
                _ => continue,
            };
            let id = base_id + i as u64;
            let mut attempts: u32 = 1;
            while attempts < policy.max_attempts {
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    break;
                }
                attempts += 1;
                // Graceful degradation: drop every cached artifact of
                // the graph, so the retry rebuilds fresh instead of
                // trusting state a faulty transport may have poisoned.
                if let Some(entry) = self.graphs.get_mut(requests[i].graph()) {
                    entry.cache = TemplateCache::new();
                    entry.solver = None;
                    entry.maxflow = None;
                    entry.mcf = None;
                    entry.apsp = None;
                }
                let backoff = policy.backoff_for(attempts - 1);
                if backoff > 0 {
                    self.clique
                        .phase("service_retry", |c| c.charge_implemented(backoff));
                }
                match self.execute(id, requests[i].clone()) {
                    Ok(mut outcome) => {
                        outcome.stats.attempts = attempts;
                        outcome.stats.degraded = Some(Degraded {
                            attempts,
                            faults_observed: faults,
                        });
                        *slot = Some(Ok(outcome));
                        break;
                    }
                    Err(mut e) => {
                        faults += e.faults_observed;
                        e.faults_observed = faults;
                        e.attempts = attempts;
                        let transient = e.comm_rooted();
                        *slot = Some(Err(e));
                        if !transient {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Runs one admitted group of same-graph same-`eps` Laplacian
    /// solves through `solve_multi_into`, filling the members' slots.
    fn execute_solve_group(
        &mut self,
        graph: &str,
        eps: f64,
        members: &[usize],
        base_id: u64,
        requests: &[Request],
        slots: &mut [Option<Result<ServiceOutcome, ServiceError>>],
    ) {
        let fail_all = |slots: &mut [Option<Result<ServiceOutcome, ServiceError>>],
                        kind: ServiceErrorKind,
                        faults: u64| {
            for &i in members {
                let mut e = ServiceError::new(base_id + i as u64, graph, kind.clone());
                e.faults_observed = faults;
                slots[i] = Some(Err(e));
            }
        };
        let Some(entry) = self.graphs.get_mut(graph) else {
            fail_all(slots, ServiceErrorKind::UnknownGraph, 0);
            return;
        };
        let GraphSpec::Undirected(g) = &entry.spec else {
            fail_all(
                slots,
                ServiceErrorKind::BadRequest {
                    reason: "Laplacian solve needs an undirected graph",
                },
                0,
            );
            return;
        };
        let n = g.n();
        if eps.is_nan() || eps <= 0.0 {
            fail_all(
                slots,
                ServiceErrorKind::BadRequest {
                    reason: "eps must be positive",
                },
                0,
            );
            return;
        }
        // Per-member validation: malformed members error out solo and
        // leave the group; the rest still batch (k may drop to 1, which
        // is just a width-1 batch — same bits either way).
        let mut valid: Vec<usize> = Vec::with_capacity(members.len());
        for &i in members {
            let Request::LaplacianSolve { b, .. } = &requests[i] else {
                unreachable!("group members are Laplacian solves");
            };
            if b.len() == n {
                valid.push(i);
            } else {
                slots[i] = Some(Err(ServiceError::new(
                    base_id + i as u64,
                    graph,
                    ServiceErrorKind::BadRequest {
                        reason: "rhs length must equal the vertex count",
                    },
                )));
            }
        }
        if valid.is_empty() {
            return;
        }
        let k = valid.len();

        let clique = &mut self.clique;
        let faults0 = clique.faults_observed();
        let rounds0 = clique.ledger().total_rounds();
        let charged0 = clique.ledger().charged_rounds();
        let mut built = false;
        if entry.solver.is_none() {
            match SolverSession::build(clique, g, &self.config.solver) {
                Ok(s) => entry.solver = Some(s),
                Err(e) => {
                    let faults = clique.faults_observed() - faults0;
                    fail_all(slots, ServiceErrorKind::Core(e), faults);
                    return;
                }
            }
            built = true;
        }
        let rounds_built = clique.ledger().total_rounds();
        let charged_built = clique.ledger().charged_rounds();

        let mut bs = vec![0.0; n * k];
        for (j, &i) in valid.iter().enumerate() {
            let Request::LaplacianSolve { b, .. } = &requests[i] else {
                unreachable!("validated above");
            };
            for v in 0..n {
                bs[v * k + j] = b[v];
            }
        }
        let mut xs = Vec::new();
        let session = entry.solver.as_mut().expect("solver just ensured");
        let iterations = match session.solve_multi_into(clique, &bs, k, eps, &mut xs) {
            Ok(it) => it,
            Err(e) => {
                let faults = clique.faults_observed() - faults0;
                fail_all(slots, ServiceErrorKind::Core(e), faults);
                return;
            }
        };
        let solve_rounds = clique.ledger().total_rounds() - rounds_built;
        let solve_charged = clique.ledger().charged_rounds() - charged_built;

        for (j, &i) in valid.iter().enumerate() {
            let x: Vec<f64> = (0..n).map(|v| xs[v * k + j]).collect();
            // The build is attributed to the group's first member; the
            // solve rounds split evenly (each iteration broadcasts once
            // per column, so the share is exact).
            let (build_r, build_c, paid_build) = if j == 0 {
                (rounds_built - rounds0, charged_built - charged0, built)
            } else {
                (0, 0, false)
            };
            let member_rounds = build_r + solve_rounds / k as u64;
            if let Some(budget) = self.config.round_budget {
                if member_rounds > budget {
                    slots[i] = Some(Err(ServiceError::new(
                        base_id + i as u64,
                        graph,
                        ServiceErrorKind::RoundBudgetExceeded {
                            rounds: member_rounds,
                            budget,
                        },
                    )));
                    continue;
                }
            }
            slots[i] = Some(Ok(ServiceOutcome {
                response: Response::Potentials { x, iterations },
                stats: RequestStats {
                    request_id: base_id + i as u64,
                    graph: graph.to_string(),
                    generation: entry.generation,
                    rounds: member_rounds,
                    charged_rounds: build_c + solve_charged / k as u64,
                    template_cache_hits: 0,
                    built: paid_build,
                    batched_with: k,
                    engine: None,
                    attempts: 1,
                    degraded: None,
                },
            }));
        }
    }

    /// Executes one request solo: runs it, stamps observed transport
    /// faults onto any failure, and enforces the per-request round
    /// budget.
    fn execute(&mut self, id: u64, request: Request) -> Result<ServiceOutcome, ServiceError> {
        let faults0 = self.clique.faults_observed();
        match self.execute_inner(id, request) {
            Ok(outcome) => {
                if let Some(budget) = self.config.round_budget {
                    if outcome.stats.rounds > budget {
                        let mut e = ServiceError::new(
                            id,
                            &outcome.stats.graph,
                            ServiceErrorKind::RoundBudgetExceeded {
                                rounds: outcome.stats.rounds,
                                budget,
                            },
                        );
                        e.faults_observed = self.clique.faults_observed() - faults0;
                        return Err(e);
                    }
                }
                Ok(outcome)
            }
            Err(mut e) => {
                e.faults_observed = self.clique.faults_observed() - faults0;
                Err(e)
            }
        }
    }

    /// The raw single-request dispatch (no fault stamping, no budget).
    fn execute_inner(&mut self, id: u64, request: Request) -> Result<ServiceOutcome, ServiceError> {
        let name = request.graph().to_string();
        let err = |kind| Err(ServiceError::new(id, &name, kind));
        let Some(entry) = self.graphs.get_mut(&name) else {
            return err(ServiceErrorKind::UnknownGraph);
        };
        let clique = &mut self.clique;
        let rounds0 = clique.ledger().total_rounds();
        let charged0 = clique.ledger().charged_rounds();
        let hits0 = entry.cache.hits();
        let mut built = false;
        let mut engine_stats = None;

        let response = match request {
            Request::LaplacianSolve { b, eps, .. } => {
                let GraphSpec::Undirected(g) = &entry.spec else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "Laplacian solve needs an undirected graph",
                    });
                };
                if eps.is_nan() || eps <= 0.0 {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "eps must be positive",
                    });
                }
                if b.len() != g.n() {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "rhs length must equal the vertex count",
                    });
                }
                built = ensure_solver(entry, clique, &self.config.solver)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Core(e)))?;
                let session = entry.solver.as_mut().expect("solver just ensured");
                let mut x = Vec::new();
                let iterations = session
                    .solve_into(clique, &b, eps, &mut x)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Core(e)))?;
                Response::Potentials { x, iterations }
            }
            Request::EffectiveResistance { s, t, eps, .. } => {
                let GraphSpec::Undirected(g) = &entry.spec else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "effective resistance needs an undirected graph",
                    });
                };
                if s >= g.n() || t >= g.n() || s == t {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "terminals must be distinct in-range vertices",
                    });
                }
                if eps.is_nan() || eps <= 0.0 {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "eps must be positive",
                    });
                }
                built = ensure_solver(entry, clique, &self.config.solver)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Core(e)))?;
                let session = entry.solver.as_mut().expect("solver just ensured");
                let mut b = vec![0.0; session.n()];
                b[s] = 1.0;
                b[t] = -1.0;
                let mut x = Vec::new();
                let iterations = session
                    .solve_into(clique, &b, eps, &mut x)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Core(e)))?;
                Response::Resistance {
                    value: x[s] - x[t],
                    iterations,
                }
            }
            Request::MaxFlow { s, t, .. } => {
                let GraphSpec::Directed(g) = &entry.spec else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "max flow needs a directed graph",
                    });
                };
                if s >= g.n() || t >= g.n() || s == t {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "terminals must be distinct in-range vertices",
                    });
                }
                let session = entry.maxflow.get_or_insert_with(|| {
                    MaxFlowSession::with_cache(self.config.maxflow, entry.cache.clone())
                });
                let out = session
                    .max_flow(clique, g, s, t)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::MaxFlow(e)))?;
                engine_stats = Some(out.stats.engine);
                Response::MaxFlow {
                    flow: out.flow,
                    value: out.value,
                }
            }
            Request::MinCostFlow { demands, .. } => {
                let GraphSpec::Directed(g) = &entry.spec else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "min-cost flow needs a directed graph",
                    });
                };
                if clique.n() < g.n() + 2 {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "clique too small for MCF rounding (needs n + 2 nodes)",
                    });
                }
                let session = entry.mcf.get_or_insert_with(|| {
                    McfSession::with_cache(self.config.mcf, entry.cache.clone())
                });
                let out = session
                    .min_cost_flow(clique, g, &demands)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Mcf(e)))?;
                engine_stats = Some(out.stats.engine);
                Response::MinCostFlow {
                    flow: out.flow,
                    cost: out.cost,
                }
            }
            Request::Sssp { source, .. } => {
                let Some(arcs) = spec_arcs(&entry.spec) else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "SSSP needs a directed or arc graph",
                    });
                };
                let n = entry.spec.n();
                if source >= n {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "source out of range",
                    });
                }
                let session = entry
                    .apsp
                    .get_or_insert_with(|| ApspSession::new(n, arcs, self.config.round_model));
                match session
                    .sssp(clique, source)
                    .map_err(|e| ServiceError::new(id, &name, ServiceErrorKind::Apsp(e)))?
                {
                    SsspOutcome::Converged { dist, .. } => Response::Sssp {
                        dist,
                        negative_cycle: false,
                    },
                    SsspOutcome::NegativeCycle { .. } => Response::Sssp {
                        dist: Vec::new(),
                        negative_cycle: true,
                    },
                }
            }
            Request::Apsp { .. } => {
                let Some(arcs) = spec_arcs(&entry.spec) else {
                    return err(ServiceErrorKind::BadRequest {
                        reason: "APSP needs a directed or arc graph",
                    });
                };
                let n = entry.spec.n();
                let session = entry
                    .apsp
                    .get_or_insert_with(|| ApspSession::new(n, arcs, self.config.round_model));
                built = session.apsp_cached().is_none();
                let apsp = session.apsp(clique);
                let dist = (0..n)
                    .map(|u| (0..n).map(|v| apsp.dist(u, v)).collect())
                    .collect();
                Response::Apsp { dist }
            }
        };

        Ok(ServiceOutcome {
            response,
            stats: RequestStats {
                request_id: id,
                graph: name.clone(),
                generation: entry.generation,
                rounds: clique.ledger().total_rounds() - rounds0,
                charged_rounds: clique.ledger().charged_rounds() - charged0,
                template_cache_hits: entry.cache.hits() - hits0,
                built,
                batched_with: 1,
                engine: engine_stats,
                attempts: 1,
                degraded: None,
            },
        })
    }
}

/// Builds the entry's Laplacian solver if absent; returns whether this
/// call paid the build.
fn ensure_solver<C: Communicator>(
    entry: &mut GraphEntry,
    clique: &mut C,
    options: &SolverOptions,
) -> Result<bool, cc_core::CoreError> {
    if entry.solver.is_some() {
        return Ok(false);
    }
    let GraphSpec::Undirected(g) = &entry.spec else {
        unreachable!("callers checked the spec kind");
    };
    entry.solver = Some(SolverSession::build(clique, g, options)?);
    Ok(true)
}

/// The shortest-path arc list of a spec (directed graphs contribute
/// `(from, to, cost)`), or `None` for undirected graphs.
fn spec_arcs(spec: &GraphSpec) -> Option<Vec<(usize, usize, i64)>> {
    match spec {
        GraphSpec::Undirected(_) => None,
        GraphSpec::Directed(g) => Some(g.edges().iter().map(|e| (e.from, e.to, e.cost)).collect()),
        GraphSpec::Arcs { arcs, .. } => Some(arcs.clone()),
    }
}
