//! # cc-service — a long-lived solver engine over the congested clique stack
//!
//! The crates below this one expose one-shot entry points: every call to
//! `solve_laplacian`, `max_flow_ipm`, or `min_cost_flow_ipm` rebuilds its
//! sparsifier, preconditioner, and workspaces from scratch. The paper
//! presents these primitives as one toolkit over a shared
//! sparsifier/solver substrate — and this crate serves them that way: a
//! [`FlowEngine`] holds a registry of **named graphs** and answers a
//! typed [`Request`] stream against them, reusing per-graph state across
//! requests:
//!
//! * the Laplacian solver (sparsifier + grounded Cholesky factorization)
//!   is built on the first solve against a graph and reused by every
//!   later solve and effective-resistance request;
//! * max-flow / min-cost-flow requests share a generation-scoped
//!   [`cc_sparsify::TemplateCache`], so repeated flow queries on one
//!   support skip the `n^{o(1)}`-round expander decompositions
//!   (`template_cache_hits` in [`RequestStats`]);
//! * the APSP matrix is computed once per graph generation;
//! * same-graph, same-`eps` Laplacian solves submitted in one
//!   [`FlowEngine::submit_batch`] are admitted as a single
//!   `solve_multi_into` call — each response is bitwise-identical to a
//!   solo solve, and total rounds equal the sum of solo solves.
//!
//! Re-registering a name bumps the entry's **generation** and drops all
//! cached artifacts, so no request is ever served from stale state.
//! Every request is accounted individually ([`RequestStats`]: ledger
//! rounds, cache hits, build attribution, batch width), and every
//! failure is a typed [`ServiceError`] carrying the request ID and graph
//! name while preserving the wrapped crate error's `source()` chain for
//! comm-rooted classification.
//!
//! Determinism discipline is unchanged from the rest of the workspace:
//! the same request stream produces bitwise-identical responses at any
//! worker-thread count, identical to fresh-engine-per-request execution.
//!
//! ```
//! use cc_model::Clique;
//! use cc_graph::generators;
//! use cc_service::{FlowEngine, GraphSpec, Request, Response};
//!
//! let mut engine = FlowEngine::new(Clique::new(16));
//! engine.register("net", GraphSpec::Undirected(generators::expander(16)));
//! let mut b = vec![0.0; 16];
//! b[0] = 1.0;
//! b[9] = -1.0;
//! let out = engine
//!     .submit(Request::LaplacianSolve { graph: "net".into(), b, eps: 1e-8 })
//!     .unwrap();
//! assert!(matches!(out.response, Response::Potentials { .. }));
//! assert!(out.stats.built, "first request pays the solver build");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod request;

pub use engine::{Degraded, EngineConfig, FlowEngine, RequestStats, RetryPolicy, ServiceOutcome};
pub use error::{ServiceError, ServiceErrorKind};
pub use request::{GraphSpec, Request, Response};
