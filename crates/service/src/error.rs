//! The service-layer error type: every failure carries the request ID
//! and graph name it belongs to, and wraps the underlying crate's typed
//! error so `source()`-chain classifiers (e.g.
//! `cc_conform::comm_rooted`) see through the new layer unchanged.

use std::fmt;

use cc_apsp::ApspError;
use cc_core::CoreError;
use cc_maxflow::MaxFlowError;
use cc_mcf::McfError;

/// What went wrong inside a [`crate::FlowEngine`] request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceErrorKind {
    /// The request named a graph the registry does not hold.
    UnknownGraph,
    /// The request is malformed for the graph it targets (wrong graph
    /// kind, out-of-range vertex, bad vector length, non-positive `eps`).
    BadRequest {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A Laplacian solve or effective-resistance computation failed.
    Core(CoreError),
    /// A max-flow pipeline failed.
    MaxFlow(MaxFlowError),
    /// A min-cost-flow pipeline failed.
    Mcf(McfError),
    /// A shortest-path computation failed.
    Apsp(ApspError),
}

/// Failure of one [`crate::FlowEngine`] request: the underlying crate's
/// typed error (or a service-level validation failure) tagged with the
/// request ID and the graph name it targeted.
///
/// The [`std::error::Error::source`] chain continues into the wrapped
/// error, so comm-rooted classification (walking the chain down to a
/// `cc_model::ModelError`) works through this layer exactly as it does
/// on the per-crate errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Engine-assigned ID of the failing request.
    pub request_id: u64,
    /// Name of the graph the request targeted.
    pub graph: String,
    /// The wrapped failure.
    pub kind: ServiceErrorKind,
}

impl ServiceError {
    pub(crate) fn new(request_id: u64, graph: &str, kind: ServiceErrorKind) -> Self {
        Self {
            request_id,
            graph: graph.to_string(),
            kind,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} on graph {:?}: ", self.request_id, self.graph)?;
        match &self.kind {
            ServiceErrorKind::UnknownGraph => write!(f, "graph is not registered"),
            ServiceErrorKind::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServiceErrorKind::Core(e) => write!(f, "{e}"),
            ServiceErrorKind::MaxFlow(e) => write!(f, "{e}"),
            ServiceErrorKind::Mcf(e) => write!(f, "{e}"),
            ServiceErrorKind::Apsp(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ServiceErrorKind::UnknownGraph | ServiceErrorKind::BadRequest { .. } => None,
            ServiceErrorKind::Core(e) => Some(e),
            ServiceErrorKind::MaxFlow(e) => Some(e),
            ServiceErrorKind::Mcf(e) => Some(e),
            ServiceErrorKind::Apsp(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::ModelError;

    fn comm_rooted(e: &(dyn std::error::Error + 'static)) -> bool {
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(e);
        while let Some(s) = cur {
            if s.is::<ModelError>() {
                return true;
            }
            cur = s.source();
        }
        false
    }

    #[test]
    fn comm_rooted_classification_sees_through_the_wrapper() {
        let inner = MaxFlowError::Comm(ModelError::BroadcastOnly);
        let e = ServiceError::new(7, "net", ServiceErrorKind::MaxFlow(inner));
        assert!(comm_rooted(&e));
        let bad = ServiceError::new(
            8,
            "net",
            ServiceErrorKind::BadRequest {
                reason: "bad terminals",
            },
        );
        assert!(!comm_rooted(&bad));
    }

    #[test]
    fn display_names_request_and_graph() {
        let e = ServiceError::new(3, "grid", ServiceErrorKind::UnknownGraph);
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("grid"), "{s}");
    }
}
