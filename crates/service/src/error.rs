//! The service-layer error type: every failure carries the request ID
//! and graph name it belongs to, and wraps the underlying crate's typed
//! error so `source()`-chain classifiers (e.g.
//! `cc_conform::comm_rooted`) see through the new layer unchanged.

use std::fmt;

use cc_apsp::ApspError;
use cc_core::CoreError;
use cc_maxflow::MaxFlowError;
use cc_mcf::McfError;

/// What went wrong inside a [`crate::FlowEngine`] request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceErrorKind {
    /// The request named a graph the registry does not hold.
    UnknownGraph,
    /// The request is malformed for the graph it targets (wrong graph
    /// kind, out-of-range vertex, bad vector length, non-positive `eps`).
    BadRequest {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A Laplacian solve or effective-resistance computation failed.
    Core(CoreError),
    /// A max-flow pipeline failed.
    MaxFlow(MaxFlowError),
    /// A min-cost-flow pipeline failed.
    Mcf(McfError),
    /// A shortest-path computation failed.
    Apsp(ApspError),
    /// The request exceeded the engine's per-request round budget
    /// ([`crate::EngineConfig::round_budget`]). Budget violations are a
    /// service-level policy decision, not a communication fault, so they
    /// are never retried.
    RoundBudgetExceeded {
        /// Rounds the request cost.
        rounds: u64,
        /// The configured per-request budget it exceeded.
        budget: u64,
    },
}

/// Failure of one [`crate::FlowEngine`] request: the underlying crate's
/// typed error (or a service-level validation failure) tagged with the
/// request ID and the graph name it targeted.
///
/// The [`std::error::Error::source`] chain continues into the wrapped
/// error, so comm-rooted classification (walking the chain down to a
/// `cc_model::ModelError`) works through this layer exactly as it does
/// on the per-crate errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Engine-assigned ID of the failing request.
    pub request_id: u64,
    /// Name of the graph the request targeted.
    pub graph: String,
    /// The wrapped failure.
    pub kind: ServiceErrorKind,
    /// Transport-layer faults the engine's communicator observed while
    /// this request (including its retries) executed — injected
    /// [`cc_model::FaultComm`] faults plus adversary events of
    /// [`cc_model::AdversaryComm`]; 0 over honest transports.
    pub faults_observed: u64,
    /// Attempts the engine made before giving up (1 = no retry; > 1 only
    /// under a retrying [`crate::RetryPolicy`]).
    pub attempts: u32,
}

impl ServiceError {
    pub(crate) fn new(request_id: u64, graph: &str, kind: ServiceErrorKind) -> Self {
        Self {
            request_id,
            graph: graph.to_string(),
            kind,
            faults_observed: 0,
            attempts: 1,
        }
    }

    /// True if the failure is rooted in the communication layer — the
    /// [`std::error::Error::source`] chain bottoms out in a
    /// [`cc_model::ModelError`]. Comm-rooted failures are the transient
    /// class a [`crate::RetryPolicy`] retries; validation and policy
    /// errors are not.
    pub fn comm_rooted(&self) -> bool {
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(self);
        while let Some(e) = cur {
            if e.is::<cc_model::ModelError>() {
                return true;
            }
            cur = e.source();
        }
        false
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "request {} on graph {:?}: ", self.request_id, self.graph)?;
        match &self.kind {
            ServiceErrorKind::UnknownGraph => write!(f, "graph is not registered"),
            ServiceErrorKind::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServiceErrorKind::Core(e) => write!(f, "{e}"),
            ServiceErrorKind::MaxFlow(e) => write!(f, "{e}"),
            ServiceErrorKind::Mcf(e) => write!(f, "{e}"),
            ServiceErrorKind::Apsp(e) => write!(f, "{e}"),
            ServiceErrorKind::RoundBudgetExceeded { rounds, budget } => {
                write!(f, "round budget exceeded: {rounds} rounds, budget {budget}")
            }
        }?;
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ServiceErrorKind::UnknownGraph
            | ServiceErrorKind::BadRequest { .. }
            | ServiceErrorKind::RoundBudgetExceeded { .. } => None,
            ServiceErrorKind::Core(e) => Some(e),
            ServiceErrorKind::MaxFlow(e) => Some(e),
            ServiceErrorKind::Mcf(e) => Some(e),
            ServiceErrorKind::Apsp(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::ModelError;

    fn comm_rooted(e: &(dyn std::error::Error + 'static)) -> bool {
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(e);
        while let Some(s) = cur {
            if s.is::<ModelError>() {
                return true;
            }
            cur = s.source();
        }
        false
    }

    #[test]
    fn comm_rooted_classification_sees_through_the_wrapper() {
        let inner = MaxFlowError::Comm(ModelError::BroadcastOnly);
        let e = ServiceError::new(7, "net", ServiceErrorKind::MaxFlow(inner));
        assert!(comm_rooted(&e));
        assert!(e.comm_rooted(), "the method agrees with the classifier");
        let bad = ServiceError::new(
            8,
            "net",
            ServiceErrorKind::BadRequest {
                reason: "bad terminals",
            },
        );
        assert!(!comm_rooted(&bad));
        assert!(!bad.comm_rooted());
        // Adversary omissions are comm-rooted (they carry a ModelError).
        let silenced = ServiceError::new(
            9,
            "net",
            ServiceErrorKind::Core(cc_core::CoreError::Comm(ModelError::NodeSilenced {
                node: 1,
                round: 3,
            })),
        );
        assert!(silenced.comm_rooted());
        // Budget violations are a policy decision, not a comm fault.
        let over = ServiceError::new(
            10,
            "net",
            ServiceErrorKind::RoundBudgetExceeded {
                rounds: 12,
                budget: 8,
            },
        );
        assert!(!over.comm_rooted());
        assert!(over.to_string().contains("budget 8"), "{over}");
    }

    #[test]
    fn display_names_request_and_graph() {
        let e = ServiceError::new(3, "grid", ServiceErrorKind::UnknownGraph);
        let s = e.to_string();
        assert!(s.contains('3') && s.contains("grid"), "{s}");
    }
}
