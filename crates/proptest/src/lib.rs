//! Deterministic, dependency-free stand-in for the subset of the
//! `proptest` 1.x API used by this workspace.
//!
//! The build environment has no access to crates.io, so property tests
//! run on a vendored mini-harness instead: each `proptest!` test samples
//! its strategies from a [`rand`]-shim generator seeded from the test's
//! name. Runs are therefore fully deterministic (the same cases every
//! run, on every machine) — a feature, not a bug, in a repository whose
//! premise is bit-reproducible deterministic algorithms. There is no
//! shrinking; on failure the panic message reports the case index so the
//! offending inputs can be regenerated exactly.
//!
//! # Regression corpora
//!
//! Mirroring upstream `proptest`'s persistence files, a crate may check
//! in pinned case indices under `<crate root>/proptest-regressions/`:
//! one `<test binary>.txt` per test binary (the first segment of the
//! property's module path), with lines
//!
//! ```text
//! # comment
//! cc <property-fn-name> <case-index>
//! ```
//!
//! Before the usual `0..cases` sweep, each property replays its pinned
//! indices first — so a once-interesting case stays in the suite
//! forever, even if the configured case count later shrinks below it.
//! Indices at or beyond the configured case count are valid (and
//! useful: they pin cases the default sweep no longer reaches).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of pseudo-random test inputs.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic generator derived from the property's name.
    pub fn for_property(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A generator of values of one type — the shim's `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec()`](fn@vec): an exact length or a range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Exact(usize),
        /// Uniformly between the bounds (upper exclusive).
        Between(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Exact(n)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange::Between(r.start, r.end)
        }
    }

    /// A strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = match self.size {
                SizeRange::Exact(n) => n,
                SizeRange::Between(lo, hi) => {
                    assert!(lo < hi, "collection::vec: empty size range");
                    rng.0.gen_range(lo..hi)
                }
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Numeric "any value" strategies, including special values.
pub mod num {
    /// Strategies over `f64`.
    pub mod f64 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Generates arbitrary `f64`s: a mix of special values (NaN,
        /// infinities, signed zeros, subnormals) and finite values across
        /// the full exponent range (raw bit patterns).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `f64`, specials included.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = f64;
            fn sample(&self, rng: &mut TestRng) -> f64 {
                match rng.0.gen_range(0u32..16) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => 0.0,
                    4 => -0.0,
                    5 => f64::MIN_POSITIVE / 2.0, // subnormal
                    _ => f64::from_bits(rng.0.gen::<u64>()),
                }
            }
        }
    }

    /// Strategies over `i64`.
    pub mod i64 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Generates arbitrary `i64`s, biased toward boundary values.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `i64`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = i64;
            fn sample(&self, rng: &mut TestRng) -> i64 {
                match rng.0.gen_range(0u32..8) {
                    0 => i64::MIN,
                    1 => i64::MAX,
                    2 => 0,
                    3 => -1,
                    _ => rng.0.gen::<u64>() as i64,
                }
            }
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    use crate::{Strategy, TestRng};
    use rand::Rng;

    /// Generates arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Any `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.0.gen::<bool>()
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

/// Pinned regression case indices for the named property, from the
/// owning crate's `proptest-regressions/<test binary>.txt` (see the
/// crate docs for the format). Empty when no corpus file exists, the
/// property has no pinned lines, or the test runs outside cargo.
pub fn regression_cases(full_name: &str) -> Vec<u32> {
    let Some(binary) = full_name.split("::").next() else {
        return Vec::new();
    };
    let prop = full_name.rsplit("::").next().unwrap_or(full_name);
    let Ok(root) = std::env::var("CARGO_MANIFEST_DIR") else {
        return Vec::new();
    };
    let path = std::path::Path::new(&root)
        .join("proptest-regressions")
        .join(format!("{binary}.txt"));
    match std::fs::read_to_string(&path) {
        Ok(text) => parse_regressions(&text, prop),
        Err(_) => Vec::new(),
    }
}

/// Parses a regression corpus, keeping the case indices pinned to `prop`.
fn parse_regressions(text: &str, prop: &str) -> Vec<u32> {
    let mut cases = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if parts.next() != Some("cc") {
            continue;
        }
        let (Some(name), Some(idx)) = (parts.next(), parts.next()) else {
            continue;
        };
        if name == prop {
            if let Ok(k) = idx.parse() {
                cases.push(k);
            }
        }
    }
    cases
}

/// Defines deterministic property tests.
///
/// Supports the `proptest` 1.x surface this workspace uses: an optional
/// leading `#![proptest_config(...)]`, and `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let __full = concat!(module_path!(), "::", stringify!($name));
            // Pinned regression cases replay first, each from a fresh
            // generator with the preceding draws discarded.
            for __case in $crate::regression_cases(__full) {
                let mut rng = $crate::TestRng::for_property(__full);
                for _ in 0..__case {
                    let _ = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                }
                let ($($pat,)*) = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                let __guard = $crate::CaseReporter::pinned(stringify!($name), __case);
                $body
                __guard.disarm();
            }
            let mut rng = $crate::TestRng::for_property(__full);
            for __case in 0..config.cases {
                let ($($pat,)*) = ($($crate::Strategy::sample(&($strat), &mut rng),)*);
                let __guard = $crate::CaseReporter::new(stringify!($name), __case);
                $body
                __guard.disarm();
            }
        }
    )*};
}

/// Prints the failing case index when a property panics (poor man's
/// substitute for shrinking: re-running is deterministic, so the case
/// index pinpoints the inputs).
#[doc(hidden)]
pub struct CaseReporter {
    name: &'static str,
    case: u32,
    pinned: bool,
    armed: bool,
}

impl CaseReporter {
    #[doc(hidden)]
    pub fn new(name: &'static str, case: u32) -> Self {
        CaseReporter {
            name,
            case,
            pinned: false,
            armed: true,
        }
    }

    #[doc(hidden)]
    pub fn pinned(name: &'static str, case: u32) -> Self {
        CaseReporter {
            name,
            case,
            pinned: true,
            armed: true,
        }
    }

    #[doc(hidden)]
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        if self.armed {
            let kind = if self.pinned {
                "pinned regression case"
            } else {
                "deterministic case"
            };
            eprintln!(
                "proptest-shim: property `{}` failed on {kind} #{}",
                self.name, self.case
            );
        }
    }
}

/// Asserts a property holds (alias of `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts two values are equal (alias of `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vecs_have_requested_lengths(
            v in collection::vec(0u64..5, 4),
            w in collection::vec((0usize..3, -1.0f64..1.0), 0..7),
        ) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(w.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_is_honored(x in 0u32..100) {
            let _ = x;
        }
    }

    #[test]
    fn deterministic_sampling() {
        let s = collection::vec(0u64..1000, 5);
        let mut r1 = TestRng::for_property("p");
        let mut r2 = TestRng::for_property("p");
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    #[test]
    fn regression_corpus_parsing() {
        let text = "# pinned by hand\ncc alpha 3\ncc beta 7\n\ncc alpha 19\nbogus line\ncc alpha notanumber\n";
        assert_eq!(crate::parse_regressions(text, "alpha"), vec![3, 19]);
        assert_eq!(crate::parse_regressions(text, "beta"), vec![7]);
        assert!(crate::parse_regressions(text, "gamma").is_empty());
    }

    #[test]
    fn regression_lookup_reads_this_crates_corpus() {
        // crates/proptest/proptest-regressions/proptest.txt pins case 5
        // of `ranges_respected`; the lookup keys on the module path's
        // first segment (the test binary) and the bare property name.
        let cases = crate::regression_cases(concat!(module_path!(), "::ranges_respected"));
        assert_eq!(cases, vec![5]);
    }
}
