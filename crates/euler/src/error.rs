//! Typed errors of the orientation/rounding pipelines.

use std::fmt;

use cc_model::ModelError;

/// Failure of an Eulerian-orientation or flow-rounding run.
///
/// Precondition violations (odd degrees, bad `delta`, wrong vector
/// lengths) remain panics — they are caller bugs, not runtime conditions.
/// Runtime failures of the communication substrate (congestion under a
/// tightened budget, injected faults) surface here instead of aborting.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EulerError {
    /// The communication substrate rejected a primitive call.
    Comm(ModelError),
}

impl fmt::Display for EulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EulerError::Comm(e) => write!(f, "communication failure during orientation: {e}"),
        }
    }
}

impl std::error::Error for EulerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EulerError::Comm(e) => Some(e),
        }
    }
}

impl From<ModelError> for EulerError {
    fn from(e: ModelError) -> Self {
        EulerError::Comm(e)
    }
}
