//! # cc-euler — Eulerian orientations and flow rounding in the congested clique
//!
//! Implements §4 of Forster & de Vos (PODC 2023):
//!
//! * [`eulerian_orientation`] — Theorem 1.4: given a graph in which every
//!   vertex has even degree, orient every edge so that in-degree equals
//!   out-degree at every vertex, in `O(log n · log* n)` rounds;
//! * [`round_flow`] — Lemma 4.2 / Algorithm 1 (Cohen's flow rounding):
//!   round a fractional flow whose values are multiples of `Δ` to an
//!   integral flow without decreasing the flow value (and, given costs,
//!   without increasing the cost), in `O(log n · log* n · log(1/Δ))`
//!   rounds.
//!
//! ## How the orientation works (darts instead of occurrences)
//!
//! Each node pairs its incident edges locally; following "enter via `e`,
//! leave via `partner(e)`" decomposes the edge set into closed trails. The
//! paper contracts each trail as a cycle. Here every trail is represented
//! by its two *dart cycles* (one per traversal direction): a dart is a
//! directed edge occurrence `(e, head)`, and the successor of a dart is
//! well defined — so each dart cycle is a **consistently directed** cycle
//! and Cole–Vishkin 3-coloring applies verbatim. The two opposite cycles
//! of a trail compute complementary verdicts from an accumulated
//! [`CycleSummary`] (canonical-dart tie-breaking, signed costs, special
//! edge flags), so exactly one of them orients the trail's edges.
//!
//! The contraction itself follows the paper: `O(log n)` iterations, each
//! 3-coloring the active cycles in `O(log* n)` rounds, extracting a
//! maximal matching, keeping the higher-ID endpoint of every matched link
//! (≤ half survive, ≤ 3 consecutive non-survivors), and splicing
//! successor pointers with 4+4 routed token steps; a reverse sweep then
//! broadcasts every cycle leader's verdict back to all darts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod darts;
mod error;
mod orientation;
mod rounding;

pub use darts::{CycleSummary, DartStructure};
pub use error::EulerError;
pub use orientation::{
    eulerian_orientation, is_eulerian_orientation, orient_trails, orient_trails_with_strategy,
    MarkingStrategy, OrientationCriterion,
};
pub use rounding::{round_flow, FlowRoundingOptions, RoundedFlow};
