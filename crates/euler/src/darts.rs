//! Dart-cycle decomposition induced by local edge pairing.

use cc_graph::{EdgeId, Graph, VertexId};

/// A dart is a directed occurrence of an edge: dart `2e` points `u → v`
/// of edge `e = (u, v)` (head `v`), dart `2e + 1` points `v → u` (head `u`).
pub type DartId = usize;

/// The dart-level view of the trail decomposition of an even-degree graph.
///
/// Built by [`DartStructure::new`] with zero communication (step 1 of
/// Theorem 1.4 is a purely local pairing at every node).
#[derive(Debug, Clone)]
pub struct DartStructure {
    n: usize,
    /// For each dart, the edge it belongs to.
    edge_of: Vec<EdgeId>,
    /// For each dart, the vertex it points at (its host processor).
    head: Vec<VertexId>,
    /// For each dart, the vertex it leaves.
    tail: Vec<VertexId>,
    /// Successor dart: enter `head` via this dart's edge, leave via the
    /// partner edge.
    succ: Vec<DartId>,
    /// Predecessor dart (inverse of `succ`).
    pred: Vec<DartId>,
}

impl DartStructure {
    /// Builds the dart decomposition of `g`.
    ///
    /// Pairing rule (deterministic): every vertex pairs consecutive entries
    /// of its adjacency list — positions `(0,1), (2,3), …`.
    ///
    /// # Panics
    ///
    /// Panics if some vertex has odd degree (`g` must be Eulerian in the
    /// even-degree sense of Theorem 1.4).
    pub fn new(g: &Graph) -> Self {
        assert!(
            g.is_eulerian(),
            "dart decomposition needs even degrees at every vertex"
        );
        let m = g.m();
        let mut edge_of = vec![0; 2 * m];
        let mut head = vec![0; 2 * m];
        let mut tail = vec![0; 2 * m];
        for e in 0..m {
            let edge = g.edge(e);
            edge_of[2 * e] = e;
            edge_of[2 * e + 1] = e;
            head[2 * e] = edge.v;
            tail[2 * e] = edge.u;
            head[2 * e + 1] = edge.u;
            tail[2 * e + 1] = edge.v;
        }
        // partner_slot[v-local adjacency position] → partner position.
        let mut succ = vec![usize::MAX; 2 * m];
        for v in 0..g.n() {
            let adj = g.adj(v);
            for pair in adj.chunks(2) {
                let (e1, _) = pair[0];
                let (e2, _) = pair[1];
                // Dart entering v via e1 continues along e2 away from v,
                // and vice versa.
                let incoming1 = dart_pointing_at(e1, v, g);
                let incoming2 = dart_pointing_at(e2, v, g);
                let outgoing1 = other_dart(incoming1);
                let outgoing2 = other_dart(incoming2);
                succ[incoming1] = outgoing2;
                succ[incoming2] = outgoing1;
            }
        }
        let mut pred = vec![usize::MAX; 2 * m];
        for (d, &s) in succ.iter().enumerate() {
            pred[s] = d;
        }
        debug_assert!(succ.iter().all(|&s| s != usize::MAX));
        Self {
            n: g.n(),
            edge_of,
            head,
            tail,
            succ,
            pred,
        }
    }

    /// Number of vertices of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of darts (`2m`).
    pub fn dart_count(&self) -> usize {
        self.edge_of.len()
    }

    /// The edge a dart belongs to.
    pub fn edge_of(&self, d: DartId) -> EdgeId {
        self.edge_of[d]
    }

    /// The vertex a dart points at — also the processor hosting the dart.
    pub fn head(&self, d: DartId) -> VertexId {
        self.head[d]
    }

    /// The vertex a dart leaves.
    pub fn tail(&self, d: DartId) -> VertexId {
        self.tail[d]
    }

    /// Successor dart along the trail.
    pub fn succ(&self, d: DartId) -> DartId {
        self.succ[d]
    }

    /// Predecessor dart along the trail.
    pub fn pred(&self, d: DartId) -> DartId {
        self.pred[d]
    }

    /// The canonical dart of an edge (`u → v` as stored, id `2e`).
    pub fn canonical(&self, e: EdgeId) -> DartId {
        2 * e
    }

    /// The opposite dart of `d` (same edge, reversed).
    pub fn reverse(&self, d: DartId) -> DartId {
        other_dart(d)
    }

    /// True if `d` is its edge's canonical (`u → v`) dart.
    pub fn is_canonical(&self, d: DartId) -> bool {
        d.is_multiple_of(2)
    }
}

fn dart_pointing_at(e: EdgeId, v: VertexId, g: &Graph) -> DartId {
    let edge = g.edge(e);
    if edge.v == v {
        2 * e
    } else {
        debug_assert_eq!(edge.u, v);
        2 * e + 1
    }
}

fn other_dart(d: DartId) -> DartId {
    d ^ 1
}

/// Mergeable summary of a contiguous dart segment, accumulated during
/// cycle contraction; a full-cycle summary is what the leader's verdict
/// rule reads (see [`crate::OrientationCriterion`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleSummary {
    /// Largest edge id on the segment.
    pub max_edge: EdgeId,
    /// Whether the segment contains the canonical dart of `max_edge`.
    pub has_canonical_of_max: bool,
    /// Sum of signed integer costs of the segment's darts. Integer so the
    /// two opposite cycles of a trail accumulate exactly negated totals
    /// regardless of summation order.
    pub cost: i64,
    /// Whether the segment contains the special dart (e.g. the `(t, s)`
    /// return edge of flow rounding, in its mandated direction).
    pub has_special_forward: bool,
    /// Whether the segment contains the reverse of the special dart.
    pub has_special_backward: bool,
}

impl CycleSummary {
    /// Summary of the single dart `d`.
    pub fn for_dart(
        darts: &DartStructure,
        d: DartId,
        dart_cost: impl Fn(DartId) -> i64,
        special: Option<DartId>,
    ) -> Self {
        let e = darts.edge_of(d);
        Self {
            max_edge: e,
            has_canonical_of_max: darts.is_canonical(d),
            cost: dart_cost(d),
            has_special_forward: special == Some(d),
            has_special_backward: special == Some(darts.reverse(d)),
        }
    }

    /// Merges an adjacent segment's summary into this one.
    pub fn merge(&mut self, other: &CycleSummary) {
        use std::cmp::Ordering;
        match other.max_edge.cmp(&self.max_edge) {
            Ordering::Greater => {
                self.max_edge = other.max_edge;
                self.has_canonical_of_max = other.has_canonical_of_max;
            }
            Ordering::Equal => {
                self.has_canonical_of_max |= other.has_canonical_of_max;
            }
            Ordering::Less => {}
        }
        self.cost += other.cost;
        self.has_special_forward |= other.has_special_forward;
        self.has_special_backward |= other.has_special_backward;
    }

    /// Packs the summary into message words (5 words: the "constant number
    /// of designated messages" per token of the paper's contraction).
    pub fn to_words(&self) -> Vec<u64> {
        vec![
            self.max_edge as u64,
            self.has_canonical_of_max as u64,
            cc_model::encode_i64(self.cost),
            self.has_special_forward as u64,
            self.has_special_backward as u64,
        ]
    }

    /// Unpacks a summary from [`CycleSummary::to_words`] format.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() < 5`.
    pub fn from_words(words: &[u64]) -> Self {
        Self {
            max_edge: words[0] as usize,
            has_canonical_of_max: words[1] != 0,
            cost: cc_model::decode_i64(words[2]),
            has_special_forward: words[3] != 0,
            has_special_backward: words[4] != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;

    #[test]
    fn darts_of_cycle_form_two_cycles() {
        let g = generators::cycle(5);
        let darts = DartStructure::new(&g);
        assert_eq!(darts.dart_count(), 10);
        // Follow successors from dart 0: must return after 5 steps.
        let mut d = 0;
        for _ in 0..5 {
            d = darts.succ(d);
        }
        assert_eq!(d, 0);
        // succ/pred are inverse.
        for d in 0..10 {
            assert_eq!(darts.pred(darts.succ(d)), d);
        }
    }

    #[test]
    fn successor_leaves_the_head_vertex() {
        let g = generators::random_eulerian(10, 3, 5);
        let darts = DartStructure::new(&g);
        for d in 0..darts.dart_count() {
            let s = darts.succ(d);
            assert_eq!(darts.head(d), darts.tail(s), "dart {d} succ {s}");
            assert_ne!(darts.edge_of(d), darts.edge_of(s));
        }
    }

    #[test]
    fn dart_cycles_partition_all_darts() {
        let g = generators::random_eulerian(12, 4, 1);
        let darts = DartStructure::new(&g);
        let mut visited = vec![false; darts.dart_count()];
        let mut cycles = 0;
        for start in 0..darts.dart_count() {
            if visited[start] {
                continue;
            }
            cycles += 1;
            let mut d = start;
            loop {
                assert!(!visited[d]);
                visited[d] = true;
                d = darts.succ(d);
                if d == start {
                    break;
                }
            }
        }
        assert!(visited.iter().all(|&v| v));
        // Cycles come in direction pairs.
        assert_eq!(cycles % 2, 0);
    }

    #[test]
    #[should_panic(expected = "even degrees")]
    fn rejects_odd_degrees() {
        let g = generators::path(3);
        let _ = DartStructure::new(&g);
    }

    #[test]
    fn summary_merge_tracks_max_edge_and_cost() {
        let g = generators::cycle(4);
        let darts = DartStructure::new(&g);
        let cost = |d: DartId| if darts.is_canonical(d) { 1 } else { -1 };
        let mut acc = CycleSummary::for_dart(&darts, 0, cost, Some(6));
        acc.merge(&CycleSummary::for_dart(&darts, 3, cost, Some(6)));
        acc.merge(&CycleSummary::for_dart(&darts, 6, cost, Some(6)));
        assert_eq!(acc.max_edge, 3);
        assert!(acc.has_special_forward);
        assert!(!acc.has_special_backward);
        assert_eq!(acc.cost, 1);
    }

    #[test]
    fn summary_words_roundtrip() {
        let s = CycleSummary {
            max_edge: 42,
            has_canonical_of_max: true,
            cost: -275,
            has_special_forward: false,
            has_special_backward: true,
        };
        assert_eq!(CycleSummary::from_words(&s.to_words()), s);
        assert_eq!(s.to_words().len(), 5);
    }
}
