//! Cohen's flow rounding (Algorithm 1 of the paper, Lemma 4.2).
//!
//! Given an `s`-`t` flow whose values are integer multiples of `Δ`
//! (`1/Δ` a power of two), round every edge to `⌊f⌋` or `⌈f⌉` such that
//! the flow value does not decrease — and, when the total flow is integral
//! and costs are given, the cost does not increase. Each of the
//! `log(1/Δ)` scaling iterations orients the odd-flow edges with the
//! Eulerian orientation of Theorem 1.4 and nudges flows by `±Δ`.

use cc_graph::{DiGraph, Graph, VertexId};
use cc_model::Communicator;

use crate::error::EulerError;
use crate::orientation::{orient_trails, OrientationCriterion};

/// Options of [`round_flow`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowRoundingOptions {
    /// Use the graph's edge costs to pick cycle directions (line 10 of
    /// Algorithm 1), guaranteeing the rounded cost does not exceed the
    /// fractional cost whenever the total flow is integral.
    pub use_costs: bool,
}

/// Result of [`round_flow`].
#[derive(Debug, Clone)]
pub struct RoundedFlow {
    /// Integral flow, one value per edge of the input graph.
    pub flow: Vec<i64>,
    /// Scaling iterations executed (`log₂(1/Δ)`).
    pub iterations: usize,
}

/// Rounds the fractional `s`-`t` flow `flow` on `g` to an integral flow
/// (Lemma 4.2). `delta` must satisfy: `1/delta` is a power of two and every
/// `flow[e]` is an integer multiple of `delta` in `[0, capacity]`.
///
/// Rounds charged to `clique`:
/// `O(log n · log* n)` per scaling iteration, `log₂(1/Δ)` iterations.
///
/// # Errors
///
/// [`EulerError::Comm`] if a scaling iteration's orientation fails on the
/// communication substrate.
///
/// # Panics
///
/// Panics if the preconditions on `delta` or the flow values are violated,
/// or if `s == t`.
pub fn round_flow<C: Communicator>(
    clique: &mut C,
    g: &DiGraph,
    flow: &[f64],
    s: VertexId,
    t: VertexId,
    delta: f64,
    options: &FlowRoundingOptions,
) -> Result<RoundedFlow, EulerError> {
    assert_eq!(flow.len(), g.m(), "one flow value per edge required");
    assert!(s != t && s < g.n() && t < g.n(), "bad terminals");
    assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0, 1]");
    let inv = 1.0 / delta;
    assert!(
        (inv.log2().round() - inv.log2()).abs() < 1e-9,
        "1/delta must be a power of two, got {inv}"
    );

    clique.phase("flow_rounding", |clique| {
        // Working flow in integer units of delta — exact arithmetic.
        let mut units: Vec<i64> = flow
            .iter()
            .map(|&f| {
                let u = (f / delta).round();
                assert!(
                    (f / delta - u).abs() < 1e-6,
                    "flow value {f} is not a multiple of delta {delta}"
                );
                u as i64
            })
            .collect();
        for (e, &u) in units.iter().enumerate() {
            assert!(u >= 0, "flows must be non-negative");
            let _ = e;
        }
        let unit_scale = inv.round() as i64; // flow 1.0 == this many units

        // Net flow out of s, in units.
        let mut total_units: i64 = 0;
        for (i, e) in g.edges().iter().enumerate() {
            if e.from == s {
                total_units += units[i];
            }
            if e.to == s {
                total_units -= units[i];
            }
        }
        // Line 1–2: add a t→s return edge if the total flow is fractional.
        let virtual_edge = if total_units % unit_scale != 0 {
            units.push(total_units);
            Some(g.m())
        } else {
            None
        };
        let edge_ends = |e: usize| -> (usize, usize, i64) {
            if e < g.m() {
                let de = g.edge(e);
                (de.from, de.to, de.cost)
            } else {
                (t, s, 0)
            }
        };

        let mut step_units = 1i64; // current Δ in units
        let mut iterations = 0usize;
        while step_units < unit_scale {
            iterations += 1;
            // E' = edges whose flow is an odd multiple of the current Δ.
            let odd: Vec<usize> = (0..units.len())
                .filter(|&e| (units[e] / step_units) % 2 != 0)
                .collect();
            if !odd.is_empty() {
                // Undirected view of E', canonical direction = flow direction.
                let mut ug = Graph::new(g.n());
                for &e in &odd {
                    let (u, v, _) = edge_ends(e);
                    ug.add_edge(u, v, 1.0);
                }
                let mut criterion = OrientationCriterion::default();
                if options.use_costs {
                    // Canonical dart (+cost), reversed dart (−cost).
                    let mut costs = Vec::with_capacity(2 * odd.len());
                    for &e in &odd {
                        let (_, _, c) = edge_ends(e);
                        costs.push(c);
                        costs.push(-c);
                    }
                    criterion.dart_costs = Some(costs);
                }
                if let Some(ve) = virtual_edge {
                    if let Some(pos) = odd.iter().position(|&e| e == ve) {
                        // The t→s edge must be a forward edge: its
                        // canonical dart (id 2·pos) points t→s.
                        criterion.special_dart = Some(2 * pos);
                    }
                }
                let oriented = orient_trails(clique, &ug, &criterion)?;
                for (pos, &e) in odd.iter().enumerate() {
                    if oriented[pos] {
                        units[e] += step_units;
                    } else {
                        units[e] -= step_units;
                    }
                }
            }
            step_units *= 2;
        }

        if virtual_edge.is_some() {
            units.pop();
        }
        let flow: Vec<i64> = units.iter().map(|&u| u / unit_scale).collect();
        debug_assert!(units.iter().all(|&u| u % unit_scale == 0));
        Ok(RoundedFlow { flow, iterations })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Fractional s-t flow by routing multiples of delta along random
    /// backbone-ish paths of a flow network (conservation by construction).
    fn fractional_flow(g: &DiGraph, s: usize, t: usize, delta: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flow = vec![0.0; g.m()];
        // Route along simple forward paths found by BFS repeatedly.
        for _ in 0..6 {
            // BFS from s to t over edges with residual capacity.
            let mut parent: Vec<Option<usize>> = vec![None; g.n()];
            let mut queue = std::collections::VecDeque::from([s]);
            let mut seen = vec![false; g.n()];
            seen[s] = true;
            while let Some(v) = queue.pop_front() {
                for &eid in g.out_edges(v) {
                    let e = g.edge(eid);
                    if !seen[e.to] && flow[eid] + 1.0 <= e.capacity as f64 {
                        seen[e.to] = true;
                        parent[e.to] = Some(eid);
                        queue.push_back(e.to);
                    }
                }
            }
            if !seen[t] {
                break;
            }
            let amount = delta * rng.gen_range(1..8) as f64;
            let mut v = t;
            while v != s {
                let eid = parent[v].unwrap();
                flow[eid] += amount;
                v = g.edge(eid).from;
            }
        }
        flow
    }

    fn value(g: &DiGraph, flow: &[f64], s: usize) -> f64 {
        g.edges()
            .iter()
            .zip(flow)
            .map(|(e, &f)| {
                if e.from == s {
                    f
                } else if e.to == s {
                    -f
                } else {
                    0.0
                }
            })
            .sum()
    }

    fn assert_valid_rounding(g: &DiGraph, frac: &[f64], rounded: &[i64], s: usize, t: usize) {
        // Each edge rounded to floor or ceil.
        for (e, (&f, &r)) in frac.iter().zip(rounded).enumerate() {
            assert!(
                r == f.floor() as i64 || r == f.ceil() as i64,
                "edge {e}: fractional {f} rounded to {r}"
            );
            assert!(
                r >= 0 && r <= g.edge(e).capacity,
                "edge {e} capacity violated"
            );
        }
        // Conservation at non-terminals.
        let mut net = vec![0i64; g.n()];
        for (i, e) in g.edges().iter().enumerate() {
            net[e.from] += rounded[i];
            net[e.to] -= rounded[i];
        }
        for (v, &nv) in net.iter().enumerate() {
            if v != s && v != t {
                assert_eq!(nv, 0, "conservation violated at {v}");
            }
        }
        // Value not less (Lemma 4.2).
        let val: i64 = net[s];
        assert!(
            val as f64 >= value(g, frac, s) - 1e-9,
            "value decreased: {} < {}",
            val,
            value(g, frac, s)
        );
    }

    #[test]
    fn rounds_fractional_path_flow() {
        // s → a → t carrying 0.5: must round to 0 or 1, value ≥ 0.5 ⇒ 1.
        let g = DiGraph::from_capacities(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut clique = Clique::new(3);
        let out = round_flow(
            &mut clique,
            &g,
            &[0.5, 0.5],
            0,
            2,
            0.5,
            &FlowRoundingOptions::default(),
        )
        .unwrap();
        assert_eq!(out.flow, vec![1, 1]);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn integral_input_is_unchanged() {
        let g = DiGraph::from_capacities(3, &[(0, 1, 3), (1, 2, 3)]);
        let mut clique = Clique::new(3);
        let out = round_flow(
            &mut clique,
            &g,
            &[2.0, 2.0],
            0,
            2,
            0.25,
            &FlowRoundingOptions::default(),
        )
        .unwrap();
        assert_eq!(out.flow, vec![2, 2]);
    }

    #[test]
    fn random_networks_round_validly() {
        for seed in 0..6 {
            let g = generators::random_flow_network(12, 25, 4, seed);
            let delta = 1.0 / 16.0;
            let frac = fractional_flow(&g, 0, 11, delta, seed);
            let mut clique = Clique::new(12);
            let out = round_flow(
                &mut clique,
                &g,
                &frac,
                0,
                11,
                delta,
                &FlowRoundingOptions::default(),
            )
            .unwrap();
            assert_valid_rounding(&g, &frac, &out.flow, 0, 11);
            assert_eq!(out.iterations, 4);
        }
    }

    #[test]
    fn cost_aware_rounding_does_not_increase_cost() {
        // Two parallel s→t routes with different costs carrying half units
        // each; total flow integral (1.0): cost must not increase.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1, 1); // cheap route
        g.add_edge(1, 3, 1, 1);
        g.add_edge(0, 2, 1, 10); // expensive route
        g.add_edge(2, 3, 1, 10);
        let frac = vec![0.5, 0.5, 0.5, 0.5];
        let frac_cost: f64 = g
            .edges()
            .iter()
            .zip(&frac)
            .map(|(e, &f)| e.cost as f64 * f)
            .sum();
        let mut clique = Clique::new(4);
        let out = round_flow(
            &mut clique,
            &g,
            &frac,
            0,
            3,
            0.5,
            &FlowRoundingOptions { use_costs: true },
        )
        .unwrap();
        assert_valid_rounding(&g, &frac, &out.flow, 0, 3);
        let cost = g.flow_cost(&out.flow);
        assert!(
            cost as f64 <= frac_cost + 1e-9,
            "cost increased: {cost} > {frac_cost}"
        );
        // It should pick the cheap route.
        assert_eq!(out.flow, vec![1, 1, 0, 0]);
    }

    #[test]
    fn fractional_total_uses_virtual_edge_and_never_loses_value() {
        // Total flow 0.75 (fractional): the t→s virtual edge keeps the
        // rounded value at ⌈0.75⌉ = 1 (value must not decrease).
        let g = DiGraph::from_capacities(3, &[(0, 1, 1), (1, 2, 1)]);
        let mut clique = Clique::new(3);
        let out = round_flow(
            &mut clique,
            &g,
            &[0.75, 0.75],
            0,
            2,
            0.25,
            &FlowRoundingOptions::default(),
        )
        .unwrap();
        assert_eq!(out.flow, vec![1, 1]);
    }

    #[test]
    fn cost_aware_rounding_with_parallel_route_mixture() {
        // Integral total (1.0) split across routes of unequal cost with
        // fractional pieces at different denominators.
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1, 2);
        g.add_edge(1, 3, 1, 2);
        g.add_edge(0, 2, 1, 3);
        g.add_edge(2, 3, 1, 3);
        let frac = vec![0.75, 0.75, 0.25, 0.25];
        let frac_cost: f64 = g
            .edges()
            .iter()
            .zip(&frac)
            .map(|(e, &f)| e.cost as f64 * f)
            .sum();
        let mut clique = Clique::new(4);
        let out = round_flow(
            &mut clique,
            &g,
            &frac,
            0,
            3,
            0.25,
            &FlowRoundingOptions { use_costs: true },
        )
        .unwrap();
        assert!(g.flow_cost(&out.flow) as f64 <= frac_cost + 1e-9);
        assert_eq!(g.flow_value(&out.flow, 0), 1);
    }

    #[test]
    fn iteration_count_is_log_inverse_delta() {
        let g = DiGraph::from_capacities(2, &[(0, 1, 1)]);
        for k in 1..8 {
            let delta = 1.0 / (1u64 << k) as f64;
            let mut clique = Clique::new(2);
            let out = round_flow(
                &mut clique,
                &g,
                &[delta],
                0,
                1,
                delta,
                &FlowRoundingOptions::default(),
            )
            .unwrap();
            assert_eq!(out.iterations, k as usize);
            assert!(out.flow[0] == 0 || out.flow[0] == 1);
        }
    }

    #[test]
    fn deterministic_rounding() {
        let g = generators::random_flow_network(10, 20, 3, 7);
        let delta = 1.0 / 8.0;
        let frac = fractional_flow(&g, 0, 9, delta, 7);
        let run = || {
            let mut clique = Clique::new(10);
            round_flow(
                &mut clique,
                &g,
                &frac,
                0,
                9,
                delta,
                &FlowRoundingOptions::default(),
            )
            .unwrap()
            .flow
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_delta() {
        let g = DiGraph::from_capacities(2, &[(0, 1, 1)]);
        let mut clique = Clique::new(2);
        let _ = round_flow(
            &mut clique,
            &g,
            &[0.3],
            0,
            1,
            0.3,
            &FlowRoundingOptions::default(),
        );
    }
}
