//! The cycle-contraction engine of Theorem 1.4.

use cc_graph::Graph;
use cc_model::{Communicator, NodeId, Words};

use crate::darts::{CycleSummary, DartId, DartStructure};
use crate::error::EulerError;

/// What the leader of each dart cycle optimizes when it picks the trail's
/// direction.
///
/// The two opposite dart cycles of a trail evaluate complementary
/// summaries (negated cost, swapped special flags, complementary canonical
/// flag), and the verdict rule below is antisymmetric under that swap, so
/// **exactly one** of the two cycles wins and orients the trail's edges.
#[derive(Debug, Clone, Default)]
pub struct OrientationCriterion {
    /// Signed integer cost per dart (length `2m`). A cycle whose total
    /// dart cost is negative wins — this realizes line 10 of Cohen's
    /// FlowRounding ("traverse such that forward cost ≤ backward cost").
    /// `None` means all costs zero.
    pub dart_costs: Option<Vec<i64>>,
    /// A dart that must be traversed in its own direction (line 8 of
    /// FlowRounding: the `(t, s)` edge is a forward edge). Overrides the
    /// cost rule.
    pub special_dart: Option<DartId>,
}

impl OrientationCriterion {
    /// The verdict: does the cycle with summary `s` win?
    fn wins(&self, s: &CycleSummary) -> bool {
        if s.has_special_forward {
            return true;
        }
        if s.has_special_backward {
            return false;
        }
        match s.cost.cmp(&0) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => s.has_canonical_of_max,
        }
    }

    fn cost_of(&self, d: DartId) -> i64 {
        self.dart_costs.as_ref().map_or(0, |c| c[d])
    }
}

/// Computes a deterministic Eulerian orientation of `g` (every vertex has
/// even degree) in `O(log n · log* n)` congested clique rounds
/// (Theorem 1.4). Returns, per edge, `true` if the edge is oriented
/// `u → v` as stored.
///
/// # Errors
///
/// [`EulerError::Comm`] if the communication substrate rejects a routed
/// step — tightened budgets or injected faults under a fault-injecting
/// transport never panic; they surface here.
///
/// # Panics
///
/// Panics if some vertex has odd degree or `clique.n() < g.n()`.
pub fn eulerian_orientation<C: Communicator>(
    clique: &mut C,
    g: &Graph,
) -> Result<Vec<bool>, EulerError> {
    orient_trails(clique, g, &OrientationCriterion::default())
}

/// How active darts are selected in each contraction iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarkingStrategy {
    /// The paper's deterministic scheme: Cole–Vishkin 3-coloring →
    /// maximal matching → keep the higher-id endpoint per matched link.
    /// `O(log* n)` rounds per iteration, gaps ≤ 3 guaranteed.
    Deterministic,
    /// The randomized variant the paper notes after Theorem 1.4
    /// ("randomly sampling each node with constant probability … removes
    /// the log* n factor"): seeded coin flips select local maxima;
    /// token walks run until arrival (expected `O(1)` hops).
    Randomized {
        /// Seed of the (deterministic, reproducible) coin sequence.
        seed: u64,
    },
}

/// Like [`orient_trails`] but with an explicit [`MarkingStrategy`] —
/// the E4b ablation comparing the paper's deterministic contraction with
/// its randomized remark.
///
/// # Errors
///
/// [`EulerError::Comm`] on substrate failure.
///
/// # Panics
///
/// Same conditions as [`orient_trails`].
pub fn orient_trails_with_strategy<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    criterion: &OrientationCriterion,
    strategy: MarkingStrategy,
) -> Result<Vec<bool>, EulerError> {
    assert!(clique.n() >= g.n().max(2), "clique too small for the graph");
    if g.m() == 0 {
        return Ok(Vec::new());
    }
    let darts = DartStructure::new(g);
    if let Some(costs) = &criterion.dart_costs {
        assert_eq!(
            costs.len(),
            darts.dart_count(),
            "one signed cost per dart required"
        );
    }
    clique.phase("eulerian_orientation", |clique| {
        let mut engine = Contraction::new(clique, g, &darts, criterion, strategy);
        engine.run()?;
        Ok(engine.into_orientation())
    })
}

/// Like [`eulerian_orientation`] but with a custom per-trail direction
/// criterion (used by flow rounding).
///
/// # Errors
///
/// [`EulerError::Comm`] on substrate failure.
///
/// # Panics
///
/// Panics if some vertex has odd degree, `clique.n() < g.n()`, or
/// `dart_costs` has the wrong length.
pub fn orient_trails<C: Communicator>(
    clique: &mut C,
    g: &Graph,
    criterion: &OrientationCriterion,
) -> Result<Vec<bool>, EulerError> {
    orient_trails_with_strategy(clique, g, criterion, MarkingStrategy::Deterministic)
}

/// Per-dart contraction state plus the routed message pattern.
struct Contraction<'a, C: Communicator> {
    clique: &'a mut C,
    darts: &'a DartStructure,
    criterion: &'a OrientationCriterion,
    m: usize,
    /// Active darts still representing their contracted cycle.
    active: Vec<bool>,
    succ: Vec<DartId>,
    pred: Vec<DartId>,
    summary: Vec<CycleSummary>,
    verdict: Vec<Option<bool>>,
    /// `records[i]` = (absorbed dart, collector) pairs of iteration `i`.
    records: Vec<Vec<(DartId, DartId)>>,
    strategy: MarkingStrategy,
    iteration: u64,
}

impl<'a, C: Communicator> Contraction<'a, C> {
    fn new(
        clique: &'a mut C,
        g: &Graph,
        darts: &'a DartStructure,
        criterion: &'a OrientationCriterion,
        strategy: MarkingStrategy,
    ) -> Self {
        let nd = darts.dart_count();
        let summary = (0..nd)
            .map(|d| {
                CycleSummary::for_dart(darts, d, |x| criterion.cost_of(x), criterion.special_dart)
            })
            .collect();
        Self {
            clique,
            darts,
            criterion,
            m: g.m(),
            active: vec![true; nd],
            succ: (0..nd).map(|d| darts.succ(d)).collect(),
            pred: (0..nd).map(|d| darts.pred(d)).collect(),
            summary,
            verdict: vec![None; nd],
            records: Vec::new(),
            strategy,
            iteration: 0,
        }
    }

    fn host(&self, d: DartId) -> NodeId {
        self.darts.head(d)
    }

    /// Routes one word-vector per (src dart → dst dart) message and charges
    /// the corresponding rounds.
    fn route(&mut self, msgs: Vec<(DartId, DartId, Words)>) -> Result<(), EulerError> {
        if msgs.is_empty() {
            return Ok(());
        }
        let mut outboxes: Vec<Vec<(NodeId, Words)>> = vec![Vec::new(); self.clique.n()];
        for (src, dst, mut payload) in msgs {
            // First word addresses the target dart within its host.
            let mut words = vec![dst as u64];
            words.append(&mut payload);
            outboxes[self.host(src)].push((self.host(dst), words));
        }
        self.clique.route(outboxes)?;
        Ok(())
    }

    fn live_darts(&self) -> Vec<DartId> {
        (0..self.darts.dart_count())
            .filter(|&d| self.active[d] && self.succ[d] != d)
            .collect()
    }

    /// Settles self-loop darts: they are cycle leaders and decide.
    fn settle_leaders(&mut self) {
        for d in 0..self.darts.dart_count() {
            if self.active[d] && self.succ[d] == d && self.verdict[d].is_none() {
                self.verdict[d] = Some(self.criterion.wins(&self.summary[d]));
                self.active[d] = false;
            }
        }
    }

    fn run(&mut self) -> Result<(), EulerError> {
        self.settle_leaders();
        let mut guard = 0usize;
        // Deterministic marking halves every cycle per iteration; the
        // randomized variant may need (exponentially unlikely) retries.
        let max_iters = match self.strategy {
            MarkingStrategy::Deterministic => 2 * usize::BITS as usize,
            MarkingStrategy::Randomized { .. } => 64 * usize::BITS as usize,
        };
        loop {
            let live = self.live_darts();
            if live.is_empty() {
                break;
            }
            guard += 1;
            assert!(guard <= max_iters, "contraction failed to converge");
            self.contract_once(&live)?;
            self.settle_leaders();
        }
        self.reverse_sweep()
    }

    /// One iteration: color, match, mark, splice.
    fn contract_once(&mut self, live: &[DartId]) -> Result<(), EulerError> {
        self.iteration += 1;
        let mut marked: Vec<bool> = vec![false; self.darts.dart_count()];
        match self.strategy {
            MarkingStrategy::Deterministic => {
                let colors = self.three_color(live)?;
                let matched_link = self.maximal_matching(live, &colors)?;
                // Mark the higher-id endpoint of every matched link;
                // unmatched darts stay unmarked (paper step 2a).
                for &d in live {
                    if matched_link[d] {
                        marked[d.max(self.succ[d])] = true;
                    }
                }
            }
            MarkingStrategy::Randomized { seed } => {
                // Local maxima of per-iteration coin hashes: marked darts
                // are never adjacent in expectation ~1/4 density; a cycle
                // with no marked dart simply retries next iteration. One
                // round to exchange coins with the successor.
                let iteration = self.iteration;
                let coin = move |d: DartId| {
                    let mut h = seed
                        ^ (iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        ^ (d as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    h ^= h >> 31;
                    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                    h ^= h >> 29;
                    h
                };
                let msgs: Vec<(DartId, DartId, Words)> = live
                    .iter()
                    .map(|&d| (d, self.succ[d], vec![coin(d)]))
                    .collect();
                self.route(msgs)?;
                for &d in live {
                    let (c, cp, cs) = (coin(d), coin(self.pred[d]), coin(self.succ[d]));
                    // Strict local maximum (ties broken by dart id).
                    if (c, d) > (cp, self.pred[d]) && (c, d) > (cs, self.succ[d]) {
                        marked[d] = true;
                    }
                }
            }
        }
        // Token forward pass: each marked dart launches a token that walks
        // forward over unmarked darts (≤ 3 of them) to the next marked
        // dart, collecting absorbed ids and summaries (4 routed steps).
        #[derive(Clone)]
        struct Token {
            origin: DartId,
            absorbed: Vec<DartId>,
            acc: Option<CycleSummary>,
        }
        let mut at: std::collections::BTreeMap<DartId, Token> = live
            .iter()
            .filter(|&&d| marked[d])
            .map(|&d| {
                (
                    self.succ[d],
                    Token {
                        origin: d,
                        absorbed: Vec::new(),
                        acc: None,
                    },
                )
            })
            .collect();
        // Charge the launch hop.
        let launch: Vec<(DartId, DartId, Words)> = live
            .iter()
            .filter(|&&d| marked[d])
            .map(|&d| (d, self.succ[d], vec![d as u64]))
            .collect();
        self.route(launch)?;
        let mut arrived: Vec<(DartId, Token)> = Vec::new();
        // Deterministic marking guarantees gaps ≤ 3 (4 hops); randomized
        // marking walks until every token has arrived.
        let max_hops = match self.strategy {
            MarkingStrategy::Deterministic => 4,
            MarkingStrategy::Randomized { .. } => 4 * self.darts.dart_count() + 4,
        };
        let mut hops = 0usize;
        while !at.is_empty() {
            hops += 1;
            assert!(hops <= max_hops, "a token failed to reach a marked dart");
            let mut next: std::collections::BTreeMap<DartId, Token> =
                std::collections::BTreeMap::new();
            let mut msgs: Vec<(DartId, DartId, Words)> = Vec::new();
            for (pos, mut tok) in std::mem::take(&mut at) {
                if marked[pos] {
                    arrived.push((pos, tok));
                    continue;
                }
                // Unmarked dart absorbs into the token and forwards it.
                tok.absorbed.push(pos);
                match &mut tok.acc {
                    Some(acc) => acc.merge(&self.summary[pos]),
                    None => tok.acc = Some(self.summary[pos]),
                }
                let mut payload = vec![tok.origin as u64];
                payload.extend(tok.acc.as_ref().expect("just set").to_words());
                msgs.push((pos, self.succ[pos], payload));
                next.insert(self.succ[pos], tok);
            }
            self.route(msgs)?;
            at = next;
        }
        let token_hops = hops;
        // Arrivals: splice pointers, merge summaries, record absorption.
        let mut record = Vec::new();
        let mut acks: Vec<(DartId, DartId, Words)> = Vec::new();
        for (m, tok) in arrived {
            // m absorbs the darts between its new predecessor and itself.
            let mut s = tok.acc.unwrap_or(self.summary[m]);
            if tok.acc.is_some() {
                s.merge(&self.summary[m]);
            }
            self.summary[m] = s;
            for &u in &tok.absorbed {
                self.active[u] = false;
                record.push((u, m));
            }
            self.pred[m] = tok.origin;
            // Ack back to the origin so it learns its new successor
            // (4 routed hops along the old chain; charged as one message —
            // the hops retrace the forward path).
            acks.push((m, tok.origin, vec![m as u64]));
        }
        // The ack retraces the forward walk; charge the same hop count.
        for _ in 0..token_hops.max(1) {
            self.route(acks.clone())?;
        }
        // Rebuild succ from pred among still-active darts.
        let nd = self.darts.dart_count();
        for d in 0..nd {
            if self.active[d] {
                let p = self.pred[d];
                self.succ[p] = d;
            }
        }
        self.records.push(record);
        Ok(())
    }

    /// Cole–Vishkin 3-coloring of the live (directed) cycles.
    fn three_color(&mut self, live: &[DartId]) -> Result<Vec<u64>, EulerError> {
        let nd = self.darts.dart_count();
        let mut color: Vec<u64> = (0..nd as u64).collect();
        let mut max_color = (nd as u64).max(2);
        // Deterministic iteration count: apply the CV reduction until the
        // color space is ≤ 6 (computable from nd alone, so every node
        // agrees without communication).
        while max_color > 6 {
            // Each dart sends its color to its successor (the successor
            // reduces against its predecessor's color).
            let msgs: Vec<(DartId, DartId, Words)> = live
                .iter()
                .map(|&d| (d, self.succ[d], vec![color[d]]))
                .collect();
            self.route(msgs)?;
            let mut next = color.clone();
            for &d in live {
                let mine = color[d];
                let pred_color = color[self.pred[d]];
                // Lowest bit index where the colors differ (they do differ:
                // the coloring stays proper under CV).
                let diff = mine ^ pred_color;
                let i = diff.trailing_zeros() as u64;
                next[d] = 2 * i + ((mine >> i) & 1);
            }
            color = next;
            let bits = 64 - (max_color - 1).leading_zeros() as u64;
            max_color = 2 * bits; // new colors are < 2·(bit count)
        }
        // Reduce {0..5} to {0..2}: three shift-down rounds.
        for c in (3..6).rev() {
            // Every dart ships its color to both neighbors.
            let msgs: Vec<(DartId, DartId, Words)> = live
                .iter()
                .flat_map(|&d| {
                    vec![
                        (d, self.succ[d], vec![color[d]]),
                        (d, self.pred[d], vec![color[d]]),
                    ]
                })
                .collect();
            self.route(msgs)?;
            let snapshot = color.clone();
            for &d in live {
                if snapshot[d] == c {
                    let a = snapshot[self.pred[d]];
                    let b = snapshot[self.succ[d]];
                    color[d] = (0..3)
                        .find(|x| *x != a && *x != b)
                        .expect("3 colors suffice");
                }
            }
        }
        debug_assert!(live.iter().all(|&d| color[d] < 3));
        debug_assert!(live
            .iter()
            .all(|&d| color[d] != color[self.succ[d]] || self.succ[d] == d));
        Ok(color)
    }

    /// Maximal matching on the links of the live cycles from a 3-coloring:
    /// three propose/accept subphases (2 routed rounds each).
    fn maximal_matching(
        &mut self,
        live: &[DartId],
        colors: &[u64],
    ) -> Result<Vec<bool>, EulerError> {
        let nd = self.darts.dart_count();
        let mut matched_link = vec![false; nd];
        let mut matched = vec![false; nd];
        for c in 0..3u64 {
            // Propose.
            let proposals: Vec<DartId> = live
                .iter()
                .copied()
                .filter(|&d| colors[d] == c && !matched[d] && !matched[self.succ[d]])
                .collect();
            let msgs: Vec<(DartId, DartId, Words)> = proposals
                .iter()
                .map(|&d| (d, self.succ[d], vec![d as u64]))
                .collect();
            self.route(msgs)?;
            // Accept (a dart has a unique predecessor, so no conflicts) and
            // reply.
            let mut replies = Vec::new();
            for &d in &proposals {
                let s = self.succ[d];
                if !matched[s] && s != d {
                    matched_link[d] = true;
                    matched[d] = true;
                    matched[s] = true;
                    replies.push((s, d, vec![1u64]));
                }
            }
            self.route(replies)?;
        }
        Ok(matched_link)
    }

    /// Reverse sweep: verdicts flow from leaders back through the recorded
    /// absorptions (one routed step per contraction iteration).
    fn reverse_sweep(&mut self) -> Result<(), EulerError> {
        let records = std::mem::take(&mut self.records);
        for record in records.into_iter().rev() {
            let msgs: Vec<(DartId, DartId, Words)> = record
                .iter()
                .map(|&(u, collector)| {
                    let v = self.verdict[collector]
                        .expect("collector verdict must be settled before its absorbed darts");
                    (collector, u, vec![v as u64])
                })
                .collect();
            self.route(msgs)?;
            for (u, collector) in record {
                self.verdict[u] = self.verdict[collector];
            }
        }
        Ok(())
    }

    /// Extracts the per-edge orientation from the dart verdicts.
    fn into_orientation(self) -> Vec<bool> {
        let mut oriented = vec![false; self.m];
        #[allow(clippy::needless_range_loop)] // paired dart ids derive from e
        for e in 0..self.m {
            let fwd = self.verdict[2 * e].expect("every dart must have a verdict");
            let bwd = self.verdict[2 * e + 1].expect("every dart must have a verdict");
            assert_ne!(
                fwd, bwd,
                "opposite dart cycles must reach complementary verdicts (edge {e})"
            );
            oriented[e] = fwd;
        }
        oriented
    }
}

/// Checks that an orientation is Eulerian: in-degree equals out-degree at
/// every vertex. Exposed for tests and experiment assertions.
pub fn is_eulerian_orientation(g: &Graph, oriented: &[bool]) -> bool {
    if oriented.len() != g.m() {
        return false;
    }
    let mut balance = vec![0i64; g.n()];
    for (e, &fwd) in oriented.iter().enumerate() {
        let edge = g.edge(e);
        let (from, to) = if fwd {
            (edge.u, edge.v)
        } else {
            (edge.v, edge.u)
        };
        balance[from] += 1;
        balance[to] -= 1;
    }
    balance.iter().all(|&b| b == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_graph::generators;
    use cc_model::Clique;

    fn orient(g: &Graph) -> (Vec<bool>, u64) {
        let mut clique = Clique::new(g.n().max(2));
        let o = eulerian_orientation(&mut clique, g).expect("bare clique cannot fault");
        (o, clique.ledger().total_rounds())
    }

    #[test]
    fn orients_a_single_cycle() {
        let g = generators::cycle(7);
        let (o, rounds) = orient(&g);
        assert!(is_eulerian_orientation(&g, &o));
        assert!(rounds > 0);
    }

    #[test]
    fn orients_random_eulerian_multigraphs() {
        for seed in 0..8 {
            let g = generators::random_eulerian(14, 4, seed);
            let (o, _) = orient(&g);
            assert!(is_eulerian_orientation(&g, &o), "seed {seed}");
        }
    }

    #[test]
    fn orients_parallel_edge_pairs() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(0, 1, 1.0);
        let (o, _) = orient(&g);
        assert!(is_eulerian_orientation(&g, &o));
        // The two parallel edges must be oriented oppositely.
        assert_ne!(o[0], o[1]);
    }

    #[test]
    fn orients_even_complete_graph() {
        let g = generators::complete(9); // K9: every degree 8
        let (o, _) = orient(&g);
        assert!(is_eulerian_orientation(&g, &o));
    }

    #[test]
    fn round_complexity_scales_like_log_n_log_star() {
        // rounds / log should stay modest as n grows (log*·const ≤ log).
        for &n in &[16usize, 64, 256] {
            let g = generators::random_eulerian(n, 3, 5);
            let (o, rounds) = orient(&g);
            assert!(is_eulerian_orientation(&g, &o));
            let scale = ((2 * g.m()) as f64).log2();
            let normalized = rounds as f64 / (scale * 30.0);
            // Loose sanity: normalized cost stays bounded (constant-ish).
            assert!(normalized < 10.0, "n={n} rounds={rounds}");
        }
    }

    #[test]
    fn cost_criterion_picks_cheaper_direction() {
        // Cycle of 4 edges; make canonical direction expensive.
        let g = generators::cycle(4);
        let darts = DartStructure::new(&g);
        let mut costs = vec![0i64; darts.dart_count()];
        for e in 0..4 {
            costs[2 * e] = 10; // canonical dart: +10
            costs[2 * e + 1] = -10; // reversed dart: −10
        }
        let mut clique = Clique::new(4);
        let o = orient_trails(
            &mut clique,
            &g,
            &OrientationCriterion {
                dart_costs: Some(costs),
                special_dart: None,
            },
        )
        .unwrap();
        assert!(is_eulerian_orientation(&g, &o));
        // All edges should be traversed along their cheap (reversed) darts.
        // The pairing may produce either one cycle; the winning direction
        // must have negative total cost, i.e. not all canonical.
        let canonical_count = o.iter().filter(|&&b| b).count();
        assert!(
            canonical_count == 0,
            "expected the cheap direction, got {o:?}"
        );
    }

    #[test]
    fn special_dart_forces_direction() {
        let g = generators::cycle(5);
        let darts = DartStructure::new(&g);
        for &special in &[darts.canonical(2), darts.reverse(darts.canonical(2))] {
            let mut clique = Clique::new(5);
            let o = orient_trails(
                &mut clique,
                &g,
                &OrientationCriterion {
                    dart_costs: None,
                    special_dart: Some(special),
                },
            )
            .unwrap();
            assert!(is_eulerian_orientation(&g, &o));
            // Edge 2 must follow the special dart's direction.
            assert_eq!(o[2], darts.is_canonical(special));
        }
    }

    #[test]
    fn deterministic_output() {
        let g = generators::random_eulerian(20, 5, 3);
        let (o1, r1) = orient(&g);
        let (o2, r2) = orient(&g);
        assert_eq!(o1, o2);
        assert_eq!(r1, r2);
    }

    #[test]
    fn randomized_marking_orients_correctly() {
        for seed in 0..6 {
            let g = generators::random_eulerian(18, 4, seed);
            let mut clique = Clique::new(18);
            let o = orient_trails_with_strategy(
                &mut clique,
                &g,
                &OrientationCriterion::default(),
                MarkingStrategy::Randomized { seed: seed * 7 + 1 },
            )
            .unwrap();
            assert!(is_eulerian_orientation(&g, &o), "seed {seed}");
        }
    }

    #[test]
    fn randomized_marking_is_reproducible_per_seed() {
        let g = generators::random_eulerian(16, 3, 2);
        let run = |seed| {
            let mut clique = Clique::new(16);
            let o = orient_trails_with_strategy(
                &mut clique,
                &g,
                &OrientationCriterion::default(),
                MarkingStrategy::Randomized { seed },
            )
            .unwrap();
            (o, clique.ledger().total_rounds())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn randomized_respects_special_dart() {
        let g = generators::cycle(9);
        let mut clique = Clique::new(9);
        let o = orient_trails_with_strategy(
            &mut clique,
            &g,
            &OrientationCriterion {
                dart_costs: None,
                special_dart: Some(2 * 4 + 1), // reversed dart of edge 4
            },
            MarkingStrategy::Randomized { seed: 3 },
        )
        .unwrap();
        assert!(is_eulerian_orientation(&g, &o));
        assert!(!o[4], "edge 4 must follow the reversed special dart");
    }

    #[test]
    fn empty_graph_is_trivial() {
        let g = Graph::new(4);
        let mut clique = Clique::new(4);
        let o = eulerian_orientation(&mut clique, &g).unwrap();
        assert!(o.is_empty());
        assert_eq!(clique.ledger().total_rounds(), 0);
    }
}
