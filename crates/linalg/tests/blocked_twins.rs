//! Bitwise twins for the cache-blocked / batched throughput kernels.
//!
//! Every optimized kernel in this crate is constrained to perform the
//! *same sequence of floating-point operations per output element* as an
//! obvious naive reference — cache blocking, register-tiled lanes, and
//! thread fan-outs rearrange which element is computed *when*, never the
//! reductions within one element. These properties hold bitwise, at any
//! thread count, so each test compares exact `f64` bit patterns across
//! thread budgets 1, 2, and 8:
//!
//! * blocked `DenseMatrix::matmul` vs a naive `i,k,j` triple loop (with
//!   the same `a[i][k] == 0` skip);
//! * `CsrMatrix::matvec_multi_into` / `DenseMatrix::matvec_multi_into`
//!   vs `k` independent single matvecs;
//! * `GroundedCholesky::solve_multi_into` vs `k` single solves;
//! * `chebyshev_solve_multi_into` vs `k` single preconditioned solves;
//! * `symmetric_eigen` across thread budgets (the tred2 blocking).

use cc_linalg::{
    chebyshev_solve_fixed_into, chebyshev_solve_multi_into, laplacian_from_edges, par,
    symmetric_eigen, BatchWorkspace, ChebyshevWorkspace, CsrMatrix, DenseMatrix, GroundedCholesky,
    SolveScratch, MATMUL_J_BLOCK, MATMUL_K_PANEL, PAR_MIN_NNZ,
};
use proptest::prelude::*;

/// Naive reference matmul: `i,k,j` loops, ascending `k` per output
/// element, skipping `a[i][k] == 0` — exactly the reduction order the
/// blocked kernel commits to.
fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let (n, m, p) = (a.rows(), a.cols(), b.cols());
    let mut out = DenseMatrix::zeros(n, p);
    for i in 0..n {
        for k in 0..m {
            let aik = a.get(i, k);
            if aik == 0.0 {
                continue;
            }
            for j in 0..p {
                out.set(i, j, out.get(i, j) + aik * b.get(k, j));
            }
        }
    }
    out
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: bit mismatch at {i}: {x:?} vs {y:?}"
        );
    }
}

/// A deterministic pseudo-random dense matrix from a sampled seed pool.
fn dense_from_pool(rows: usize, cols: usize, pool: &[f64]) -> DenseMatrix {
    let mut m = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            // Sprinkle exact zeros so the zero-skip path is exercised.
            let v = pool[(i * cols + j) % pool.len()];
            let v = if (i + j) % 7 == 0 { 0.0 } else { v };
            m.set(i, j, v);
        }
    }
    m
}

/// A connected weighted-path Laplacian with weights from the pool, wide
/// enough to clear the parallel thresholds when scaled by `n`.
fn path_laplacian(n: usize, pool: &[f64]) -> CsrMatrix {
    let edges: Vec<(usize, usize, f64)> = (0..n - 1)
        .map(|i| (i, i + 1, pool[i % pool.len()].abs() + 0.1))
        .collect();
    laplacian_from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn blocked_matmul_is_bitwise_equal_to_naive_triple_loop(
        pool in proptest::collection::vec(-10f64..10.0, 24),
    ) {
        // Spans multiple j-blocks and k-panels plus ragged remainders.
        let n = MATMUL_J_BLOCK + 17;
        let m = MATMUL_K_PANEL + 9;
        let a = dense_from_pool(n, m, &pool);
        let b = dense_from_pool(m, n, &pool);
        let want = matmul_naive(&a, &b);
        for threads in [1usize, 2, 8] {
            let got = par::with_threads(threads, || a.matmul(&b).unwrap());
            assert_bits_eq(got.as_slice(), want.as_slice(), "matmul");
        }
    }

    #[test]
    fn csr_matvec_multi_matches_k_single_matvecs(
        pool in proptest::collection::vec(-50f64..50.0, 24),
    ) {
        let (n, k) = (1200usize, 7usize); // k deliberately not a lane multiple
        let lap = path_laplacian(n, &pool);
        prop_assert!(lap.nnz() * k >= PAR_MIN_NNZ, "batch must take the parallel path");
        let xs: Vec<f64> = (0..n * k).map(|i| pool[i % pool.len()] * 0.5).collect();
        // Reference: k independent single-RHS matvecs, serial.
        let want = par::with_threads(1, || {
            let mut want = vec![0.0; n * k];
            let mut col = vec![0.0; n];
            let mut out = vec![0.0; n];
            for j in 0..k {
                for v in 0..n {
                    col[v] = xs[v * k + j];
                }
                lap.matvec_into(&col, &mut out);
                for v in 0..n {
                    want[v * k + j] = out[v];
                }
            }
            want
        });
        for threads in [1usize, 2, 8] {
            let got = par::with_threads(threads, || {
                let mut got = vec![0.0; n * k];
                lap.matvec_multi_into(&xs, k, &mut got);
                got
            });
            assert_bits_eq(&got, &want, "csr matvec_multi");
        }
    }

    #[test]
    fn dense_matvec_multi_matches_k_single_matvecs(
        pool in proptest::collection::vec(-50f64..50.0, 24),
    ) {
        let (n, k) = (96usize, 5usize);
        let a = dense_from_pool(n, n, &pool);
        let xs: Vec<f64> = (0..n * k).map(|i| pool[(i * 3) % pool.len()]).collect();
        let want = par::with_threads(1, || {
            let mut want = vec![0.0; n * k];
            let mut col = vec![0.0; n];
            let mut out = vec![0.0; n];
            for j in 0..k {
                for v in 0..n {
                    col[v] = xs[v * k + j];
                }
                a.matvec_into(&col, &mut out);
                for v in 0..n {
                    want[v * k + j] = out[v];
                }
            }
            want
        });
        for threads in [1usize, 2, 8] {
            let got = par::with_threads(threads, || {
                let mut got = vec![0.0; n * k];
                a.matvec_multi_into(&xs, k, &mut got);
                got
            });
            assert_bits_eq(&got, &want, "dense matvec_multi");
        }
    }

    #[test]
    fn cholesky_solve_multi_matches_k_single_solves(
        pool in proptest::collection::vec(-5f64..5.0, 24),
    ) {
        let (n, k) = (80usize, 6usize);
        let lap = path_laplacian(n, &pool);
        let chol = GroundedCholesky::new(&lap).unwrap();
        // Per-lane zero-mean right-hand sides.
        let mut bs = vec![0.0f64; n * k];
        for j in 0..k {
            for v in 0..n {
                bs[v * k + j] = pool[(v + 5 * j) % pool.len()];
            }
            let mean: f64 = (0..n).map(|v| bs[v * k + j]).sum::<f64>() / n as f64;
            for v in 0..n {
                bs[v * k + j] -= mean;
            }
        }
        let want = par::with_threads(1, || {
            let mut want = vec![0.0; n * k];
            let mut col = vec![0.0; n];
            let mut out = vec![0.0; n];
            let mut scratch = SolveScratch::default();
            for j in 0..k {
                for v in 0..n {
                    col[v] = bs[v * k + j];
                }
                chol.solve_into(&col, &mut out, &mut scratch);
                for v in 0..n {
                    want[v * k + j] = out[v];
                }
            }
            want
        });
        for threads in [1usize, 2, 8] {
            let got = par::with_threads(threads, || {
                let mut got = vec![0.0; n * k];
                let mut scratch = SolveScratch::default();
                chol.solve_multi_into(&bs, k, &mut got, &mut scratch);
                got
            });
            assert_bits_eq(&got, &want, "cholesky solve_multi");
        }
    }

    #[test]
    fn chebyshev_multi_matches_k_single_solves(
        pool in proptest::collection::vec(-5f64..5.0, 24),
    ) {
        let (n, k) = (64usize, 5usize);
        let kappa = 16.0;
        let iterations = 12;
        let lap = path_laplacian(n, &pool);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let mut bs = vec![0.0f64; n * k];
        for j in 0..k {
            for v in 0..n {
                bs[v * k + j] = pool[(2 * v + j) % pool.len()];
            }
            let mean: f64 = (0..n).map(|v| bs[v * k + j]).sum::<f64>() / n as f64;
            for v in 0..n {
                bs[v * k + j] -= mean;
            }
        }
        // Reference: k single preconditioned solves, serial.
        let want = par::with_threads(1, || {
            let mut want = vec![0.0; n * k];
            let mut col = vec![0.0; n];
            let mut x = vec![0.0; n];
            let mut ws = ChebyshevWorkspace::new(n);
            let mut scratch = SolveScratch::default();
            for j in 0..k {
                for v in 0..n {
                    col[v] = bs[v * k + j];
                }
                chebyshev_solve_fixed_into(
                    |p, out| lap.matvec_into(p, out),
                    |r, out| {
                        chol.solve_into(r, out, &mut scratch);
                        for zi in out.iter_mut() {
                            *zi /= kappa;
                        }
                    },
                    &col,
                    kappa,
                    iterations,
                    &mut x,
                    &mut ws,
                );
                for v in 0..n {
                    want[v * k + j] = x[v];
                }
            }
            want
        });
        for threads in [1usize, 2, 8] {
            let got = par::with_threads(threads, || {
                let mut xs = vec![0.0; n * k];
                let mut ws = BatchWorkspace::new(n, k);
                let mut scratch = SolveScratch::default();
                chebyshev_solve_multi_into(
                    |p, out| lap.matvec_multi_into(p, k, out),
                    |r, out| {
                        chol.solve_multi_into(r, k, out, &mut scratch);
                        for zi in out.iter_mut() {
                            *zi /= kappa;
                        }
                    },
                    &bs,
                    k,
                    kappa,
                    iterations,
                    &mut xs,
                    &mut ws,
                );
                xs
            });
            assert_bits_eq(&got, &want, "chebyshev multi");
        }
    }

    #[test]
    fn symmetric_eigen_is_thread_count_invariant(
        pool in proptest::collection::vec(-3f64..3.0, 24),
    ) {
        // Large enough for tred2's chunked column updates to span many
        // chunks; the blocked update must stay bitwise thread-invariant.
        let n = 160usize;
        let lap = path_laplacian(n, &pool);
        let a = lap.to_dense();
        let want = par::with_threads(1, || symmetric_eigen(&a).unwrap());
        for threads in [2usize, 8] {
            let got = par::with_threads(threads, || symmetric_eigen(&a).unwrap());
            assert_bits_eq(got.eigenvalues(), want.eigenvalues(), "eigenvalues");
            assert_bits_eq(
                got.eigenvectors().as_slice(),
                want.eigenvectors().as_slice(),
                "eigenvectors",
            );
        }
    }
}
