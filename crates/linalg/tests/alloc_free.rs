//! Proves the `_into` kernel layer is allocation-free in steady state.
//!
//! A counting global allocator wraps `System`; after one warm-up call
//! (which sizes every workspace), the armed region re-runs the hot paths
//! — `matvec_into`, Chebyshev, CG, pseudo-inverse solves — and asserts
//! the allocation counter did not move.
//!
//! Threads are pinned to 1: the fixed-chunk fan-out machinery itself
//! allocates when it spawns (and results are bitwise identical either
//! way, so the serial path is the right one to audit). A single `#[test]`
//! keeps the counter free of harness noise from concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use cc_linalg::{
    chebyshev_solve_fixed_into, conjugate_gradient_into, laplacian_from_edges, par,
    vec_ops::remove_mean, CgWorkspace, ChebyshevWorkspace, GroundedCholesky, SolveScratch,
};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn armed<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let out = f();
    ARMED.store(false, Ordering::SeqCst);
    (out, ALLOCATIONS.load(Ordering::SeqCst))
}

#[test]
fn steady_state_iteration_performs_zero_heap_allocations() {
    par::with_threads(1, || {
        let n = 96;
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1)
            .map(|i| (i, i + 1, 1.0 + (i % 5) as f64))
            .collect();
        edges.push((0, n - 1, 2.0));
        let lap = laplacian_from_edges(n, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        remove_mean(&mut b);

        let mut y = vec![0.0; n];
        let mut x = vec![0.0; n];
        let mut cheb_ws = ChebyshevWorkspace::new(n);
        let mut cg_ws = CgWorkspace::new(n);
        let mut scratch = SolveScratch::default();

        // Warm-up: size every workspace once.
        lap.matvec_into(&b, &mut y);
        chol.solve_into(&b, &mut x, &mut scratch);
        chebyshev_solve_fixed_into(
            |p, ap| lap.matvec_into(p, ap),
            |r, z| chol.solve_into(r, z, &mut scratch),
            &b,
            4.0,
            30,
            &mut x,
            &mut cheb_ws,
        );
        conjugate_gradient_into(
            |p, ap| lap.matvec_into(p, ap),
            &b,
            1e-10,
            200,
            &mut x,
            &mut cg_ws,
        )
        .unwrap();

        let ((), count) = armed(|| {
            lap.matvec_into(&b, &mut y);
        });
        assert_eq!(count, 0, "matvec_into allocated");

        let ((), count) = armed(|| {
            chol.solve_into(&b, &mut x, &mut scratch);
        });
        assert_eq!(count, 0, "GroundedCholesky::solve_into allocated");

        let ((), count) = armed(|| {
            chebyshev_solve_fixed_into(
                |p, ap| lap.matvec_into(p, ap),
                |r, z| chol.solve_into(r, z, &mut scratch),
                &b,
                4.0,
                30,
                &mut x,
                &mut cheb_ws,
            );
        });
        assert_eq!(count, 0, "chebyshev_solve_fixed_into allocated");

        let (res, count) = armed(|| {
            conjugate_gradient_into(
                |p, ap| lap.matvec_into(p, ap),
                &b,
                1e-10,
                200,
                &mut x,
                &mut cg_ws,
            )
        });
        assert!(res.is_ok());
        assert_eq!(count, 0, "conjugate_gradient_into allocated");
    });
}
