//! Dense symmetric eigensolver.
//!
//! Classical two-stage scheme: Householder tridiagonalization (tred2)
//! followed by the implicit-shift QL iteration (tql2). Deterministic,
//! `O(n³)`, accurate to machine precision — exactly what the sparsifier
//! needs to *certify* cluster spectral gaps and approximation factors
//! instead of trusting asymptotic bounds.

use crate::{DenseMatrix, LinalgError};

/// Eigendecomposition of a symmetric matrix: `A = V diag(λ) Vᵀ` with
/// eigenvalues in ascending order and orthonormal eigenvector columns.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector of `eigenvalues[j]`.
    eigenvectors: DenseMatrix,
}

impl SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose column `j` is the unit eigenvector for eigenvalue `j`.
    pub fn eigenvectors(&self) -> &DenseMatrix {
        &self.eigenvectors
    }

    /// Eigenvector for eigenvalue index `j` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vec<f64> {
        (0..self.eigenvectors.rows())
            .map(|i| self.eigenvectors.get(i, j))
            .collect()
    }

    /// Smallest eigenvalue strictly greater than `threshold`
    /// (`None` if all eigenvalues are ≤ threshold).
    pub fn smallest_above(&self, threshold: f64) -> Option<f64> {
        self.eigenvalues.iter().copied().find(|&l| l > threshold)
    }

    /// Largest eigenvalue (`None` for the 0×0 matrix).
    pub fn largest(&self) -> Option<f64> {
        self.eigenvalues.last().copied()
    }
}

/// Computes the full eigendecomposition of a symmetric matrix.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] if `a` is not square;
/// [`LinalgError::EigenNoConvergence`] if the QL iteration stalls
/// (practically unreachable for finite symmetric input).
///
/// The input is *not* checked for symmetry (only its lower triangle is
/// read); callers certifying spectral claims should assert symmetry first.
///
/// ```
/// use cc_linalg::{symmetric_eigen, DenseMatrix};
/// let a = DenseMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
/// let eig = symmetric_eigen(&a)?;
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-12);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-12);
/// # Ok::<(), cc_linalg::LinalgError>(())
/// ```
pub fn symmetric_eigen(a: &DenseMatrix) -> Result<SymmetricEigen, LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "symmetric_eigen",
            got: a.cols(),
            expected: a.rows(),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(SymmetricEigen {
            eigenvalues: Vec::new(),
            eigenvectors: DenseMatrix::zeros(0, 0),
        });
    }
    // Work on a mutable copy; z accumulates the orthogonal transform.
    let mut z: Vec<Vec<f64>> = (0..n).map(|r| a.row(r).to_vec()).collect();
    let mut d = vec![0.0; n]; // diagonal
    let mut e = vec![0.0; n]; // off-diagonal
    tred2(&mut z, &mut d, &mut e);
    tql2(&mut z, &mut d, &mut e)?;

    // A NaN eigenvalue means the QL iteration produced garbage (possible
    // only for non-finite input); report it as a typed error instead of
    // panicking inside the sort below.
    if let Some(index) = d.iter().position(|v| v.is_nan()) {
        return Err(LinalgError::EigenNoConvergence { index });
    }
    // Sort ascending, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = DenseMatrix::zeros(n, n);
    for (newc, &oldc) in order.iter().enumerate() {
        for r in 0..n {
            eigenvectors.set(r, newc, z[r][oldc]);
        }
    }
    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Rows per parallel chunk in the two Householder update loops of
/// [`tred2`]. Fixed so the decomposition is independent of parallelism;
/// matrices smaller than one chunk run serially inside `par_*`.
const TRED2_ROW_CHUNK: usize = 64;

/// Householder reduction of a real symmetric matrix to tridiagonal form,
/// accumulating the transformation (classical tred2).
///
/// The two `O(l²)` inner loops are restructured into a *pure-read* phase
/// fanned out over row chunks followed by a short serial phase, so the
/// floating-point operations per row are exactly those of the classical
/// serial formulation — parallel runs are bitwise identical to serial
/// ones (the column-`i` writes these loops perform are never read back
/// within the same `i` step, which is what makes the split legal).
fn tred2(z: &mut [Vec<f64>], d: &mut [f64], e: &mut [f64]) {
    let n = z.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[i][k].abs()).sum();
            if scale == 0.0 {
                e[i] = z[i][l];
            } else {
                for k in 0..=l {
                    z[i][k] /= scale;
                    h += z[i][k] * z[i][k];
                }
                let f = z[i][l];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[i][l] = f - g;
                // Phase A (parallel, pure reads of columns ≤ l):
                // e[j] = (A·u)_j / h for the Householder vector u = z[i][..=l].
                let (head, tail) = z.split_at_mut(i);
                let zi: &[f64] = &tail[0];
                let rows: &[Vec<f64>] = head;
                let e_chunks = crate::par::par_map_chunks(l + 1, TRED2_ROW_CHUNK, |range| {
                    let j0 = range.start;
                    // Row part: Σ_{k≤j} rows[j][k]·zi[k], a contiguous
                    // row read per j.
                    let mut acc: Vec<f64> = range
                        .clone()
                        .map(|j| {
                            let mut g_acc = 0.0;
                            for k in 0..=j {
                                g_acc += rows[j][k] * zi[k];
                            }
                            g_acc
                        })
                        .collect();
                    // Column part, transposed: the naive per-j walk down
                    // column j (`rows[k][j]`, stride-n reads) becomes a
                    // k-outer loop over the chunk-wide row segments
                    // `rows[k][j0..j1]`. Per j the contributions still
                    // arrive in ascending k, appended after the row part
                    // — the accumulation order is exactly the naive
                    // loop's, so the result is bitwise identical.
                    for k in (j0 + 1)..=l {
                        let rk = &rows[k][j0..range.end.min(k)];
                        let zk = zi[k];
                        for (a, &rv) in acc[..rk.len()].iter_mut().zip(rk) {
                            *a += rv * zk;
                        }
                    }
                    for a in &mut acc {
                        *a /= h;
                    }
                    acc
                });
                // Phase B (serial, O(l)): store e, write column i, reduce f_acc
                // in ascending j order — the exact summation order of the
                // classical loop.
                let mut f_acc = 0.0;
                let mut j = 0;
                for chunk in e_chunks {
                    for ej in chunk {
                        head[j][i] = zi[j] / h;
                        e[j] = ej;
                        f_acc += ej * zi[j];
                        j += 1;
                    }
                }
                let hh = f_acc / (h + h);
                // Phase A′ (serial, O(l)): finish the e update first so the
                // row updates below read a fully updated e.
                for j in 0..=l {
                    e[j] -= hh * zi[j];
                }
                // Phase B′ (parallel, disjoint row writes): rank-two update
                // of the lower triangle, row by row in classical k order.
                let e_ro: &[f64] = e;
                crate::par::par_chunks_mut(&mut head[..=l], TRED2_ROW_CHUNK, |chunk_idx, rows| {
                    let base = chunk_idx * TRED2_ROW_CHUNK;
                    for (local, row) in rows.iter_mut().enumerate() {
                        let j = base + local;
                        let f = zi[j];
                        let g = e_ro[j];
                        for k in 0..=j {
                            row[k] -= f * e_ro[k] + g * zi[k];
                        }
                    }
                });
            }
        } else {
            e[i] = z[i][l];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[i][k] * z[k][j];
                }
                for k in 0..i {
                    z[k][j] -= g * z[k][i];
                }
            }
        }
        d[i] = z[i][i];
        z[i][i] = 1.0;
        for j in 0..i {
            z[j][i] = 0.0;
            z[i][j] = 0.0;
        }
    }
}

/// QL iteration with implicit shifts on a symmetric tridiagonal matrix,
/// updating the eigenvector accumulation in `z` (classical tql2).
fn tql2(z: &mut [Vec<f64>], d: &mut [f64], e: &mut [f64]) -> Result<(), LinalgError> {
    let n = z.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 64 {
                return Err(LinalgError::EigenNoConvergence { index: l });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m;
            let mut underflow_break = false;
            while i > l {
                i -= 1;
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow_break = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for zk in z.iter_mut() {
                    f = zk[i + 1];
                    zk[i + 1] = s * zk[i] + c * f;
                    zk[i] = c * zk[i] - s * f;
                }
            }
            if underflow_break {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use proptest::prelude::*;

    fn reconstruct(eig: &SymmetricEigen) -> DenseMatrix {
        let n = eig.eigenvalues().len();
        let mut out = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let v = eig.eigenvector(j);
            let lam = eig.eigenvalues()[j];
            for r in 0..n {
                for c in 0..n {
                    out.add_to(r, c, lam * v[r] * v[c]);
                }
            }
        }
        out
    }

    #[test]
    fn diagonal_matrix() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let eig = symmetric_eigen(&a).unwrap();
        let vals = eig.eigenvalues();
        assert!((vals[0] - 1.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn path_laplacian_spectrum_known() {
        // Path P3 Laplacian eigenvalues: 0, 1, 3.
        let lap = laplacian_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).to_dense();
        let eig = symmetric_eigen(&lap).unwrap();
        let vals = eig.eigenvalues();
        assert!(vals[0].abs() < 1e-12);
        assert!((vals[1] - 1.0).abs() < 1e-12);
        assert!((vals[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cycle_laplacian_spectrum_known() {
        // Cycle C_n Laplacian eigenvalues: 2 - 2cos(2πk/n).
        let n = 8;
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let lap = laplacian_from_edges(n, &edges).to_dense();
        let eig = symmetric_eigen(&lap).unwrap();
        let mut expected: Vec<f64> = (0..n)
            .map(|k| 2.0 - 2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos())
            .collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (got, want) in eig.eigenvalues().iter().zip(&expected) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal_and_reconstruct() {
        let lap = laplacian_from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 0.5),
                (3, 4, 1.5),
                (4, 5, 1.0),
                (0, 5, 3.0),
            ],
        )
        .to_dense();
        let eig = symmetric_eigen(&lap).unwrap();
        // Orthonormality of V.
        let v = eig.eigenvectors();
        let vtv = v.transpose().matmul(v).unwrap();
        for r in 0..6 {
            for c in 0..6 {
                let want = if r == c { 1.0 } else { 0.0 };
                assert!((vtv.get(r, c) - want).abs() < 1e-10);
            }
        }
        // A == V diag(λ) Vᵀ.
        let rec = reconstruct(&eig);
        for r in 0..6 {
            for c in 0..6 {
                assert!((rec.get(r, c) - lap.get(r, c)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_and_one_dimensional_inputs() {
        let eig = symmetric_eigen(&DenseMatrix::zeros(0, 0)).unwrap();
        assert!(eig.eigenvalues().is_empty());
        let a = DenseMatrix::from_row_major(1, 1, vec![7.0]);
        let eig = symmetric_eigen(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[7.0]);
        assert!((eig.eigenvector(0)[0].abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn helper_accessors() {
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 0.0, 0.0, 5.0]);
        let eig = symmetric_eigen(&a).unwrap();
        assert_eq!(eig.largest(), Some(5.0));
        assert_eq!(eig.smallest_above(1e-9), Some(5.0));
        assert_eq!(eig.smallest_above(10.0), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_symmetric_reconstruction(seed in proptest::collection::vec(-3f64..3.0, 25)) {
            // Symmetrize a random 5x5.
            let mut a = DenseMatrix::zeros(5, 5);
            for r in 0..5 {
                for c in 0..5 {
                    let v = seed[r * 5 + c];
                    a.add_to(r, c, v / 2.0);
                    a.add_to(c, r, v / 2.0);
                }
            }
            let eig = symmetric_eigen(&a).unwrap();
            let rec = reconstruct(&eig);
            for r in 0..5 {
                for c in 0..5 {
                    prop_assert!((rec.get(r, c) - a.get(r, c)).abs() < 1e-8);
                }
            }
            // Trace == sum of eigenvalues.
            let trace: f64 = (0..5).map(|i| a.get(i, i)).sum();
            let sum: f64 = eig.eigenvalues().iter().sum();
            prop_assert!((trace - sum).abs() < 1e-8);
        }
    }
}
