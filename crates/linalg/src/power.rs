//! Deterministic power iteration for extreme eigenvalue estimation.
//!
//! Used where the dense eigensolver would be too expensive and only an
//! estimate with a one-sided guarantee is needed (Rayleigh quotients are
//! always *lower* bounds on the largest eigenvalue).

use crate::vec_ops::{axpy, dot, norm2};

/// Result of a power iteration run.
#[derive(Debug, Clone)]
pub struct PowerOutcome {
    /// Final Rayleigh quotient (lower bound on the largest eigenvalue of a
    /// PSD operator restricted to the orthogonal complement of the
    /// deflation space).
    pub eigenvalue: f64,
    /// Final unit iterate.
    pub eigenvector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
}

/// Deterministic start vector: a fixed full-period LCG sequence mapped to
/// `[-1, 1]`, guaranteed not orthogonal to anything structured in practice
/// and identical across runs and platforms.
fn start_vector(n: usize) -> Vec<f64> {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// Runs `iterations` steps of power iteration on the symmetric operator
/// `apply`, deflating against the (orthonormalized internally) vectors in
/// `orthogonal_to` after every application.
///
/// Deterministic: fixed start vector, fixed Gram–Schmidt order.
///
/// # Panics
///
/// Panics if `n == 0` or `apply` returns a vector of the wrong length.
pub fn power_method(
    apply: impl Fn(&[f64]) -> Vec<f64>,
    n: usize,
    iterations: usize,
    orthogonal_to: &[Vec<f64>],
) -> PowerOutcome {
    power_method_with(
        |x, out| {
            let y = apply(x);
            assert_eq!(y.len(), out.len(), "operator returned wrong length");
            out.copy_from_slice(&y);
        },
        n,
        iterations,
        orthogonal_to,
    )
}

/// Buffer-reusing core of [`power_method`]: `apply(v, out)` writes the
/// operator application into `out`, and the iteration ping-pongs between
/// two vectors allocated once up front — zero heap allocations per step.
/// The floating-point operation sequence matches [`power_method`] exactly.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn power_method_with(
    mut apply: impl FnMut(&[f64], &mut [f64]),
    n: usize,
    iterations: usize,
    orthogonal_to: &[Vec<f64>],
) -> PowerOutcome {
    assert!(n > 0, "power_method on empty space");
    // Orthonormalize the deflation basis (classical Gram–Schmidt, fine for
    // the handful of vectors used here).
    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(orthogonal_to.len());
    for v in orthogonal_to {
        let mut u = v.clone();
        for b in &basis {
            let c = dot(&u, b);
            axpy(&mut u, -c, b);
        }
        let nu = norm2(&u);
        if nu > 1e-12 {
            for x in u.iter_mut() {
                *x /= nu;
            }
            basis.push(u);
        }
    }
    let deflate = |x: &mut [f64]| {
        for b in &basis {
            let c = dot(x, b);
            axpy(x, -c, b);
        }
    };

    let mut x = start_vector(n);
    deflate(&mut x);
    let nx = norm2(&x);
    if nx <= 1e-300 {
        // The whole space is deflated away.
        return PowerOutcome {
            eigenvalue: 0.0,
            eigenvector: vec![0.0; n],
            iterations: 0,
        };
    }
    for xi in x.iter_mut() {
        *xi /= nx;
    }
    let mut y = vec![0.0; n];
    let mut lambda = 0.0;
    for k in 0..iterations {
        apply(&x, &mut y);
        deflate(&mut y);
        let ny = norm2(&y);
        if ny <= 1e-300 {
            return PowerOutcome {
                eigenvalue: 0.0,
                eigenvector: x,
                iterations: k + 1,
            };
        }
        lambda = dot(&x, &y); // Rayleigh quotient of the previous iterate
        for yi in y.iter_mut() {
            *yi /= ny;
        }
        std::mem::swap(&mut x, &mut y);
    }
    // One final Rayleigh quotient on the converged direction.
    apply(&x, &mut y);
    deflate(&mut y);
    lambda = lambda.max(dot(&x, &y));
    PowerOutcome {
        eigenvalue: lambda,
        eigenvector: x,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::laplacian_from_edges;
    use crate::symmetric_eigen;

    #[test]
    fn finds_dominant_eigenvalue_of_diagonal() {
        let out = power_method(|x| vec![1.0 * x[0], 5.0 * x[1], 2.0 * x[2]], 3, 100, &[]);
        assert!((out.eigenvalue - 5.0).abs() < 1e-9);
        assert!(out.eigenvector[1].abs() > 0.99);
    }

    #[test]
    fn deflation_finds_second_eigenpair() {
        let first = vec![0.0, 1.0, 0.0];
        let out = power_method(
            |x| vec![1.0 * x[0], 5.0 * x[1], 2.0 * x[2]],
            3,
            200,
            &[first],
        );
        assert!((out.eigenvalue - 2.0).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_dense_eigensolver_on_laplacian() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 3.0),
            (2, 3, 1.0),
            (3, 4, 2.0),
            (4, 0, 1.0),
        ];
        let lap = laplacian_from_edges(5, &edges);
        let dense_max = symmetric_eigen(&lap.to_dense()).unwrap().largest().unwrap();
        let out = power_method(|x| lap.matvec(x), 5, 500, &[]);
        assert!(
            (out.eigenvalue - dense_max).abs() < 1e-6,
            "{} vs {}",
            out.eigenvalue,
            dense_max
        );
    }

    #[test]
    fn rayleigh_quotient_is_lower_bound() {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let lap = laplacian_from_edges(3, &edges);
        let dense_max = symmetric_eigen(&lap.to_dense()).unwrap().largest().unwrap();
        for iters in [1, 2, 5, 50] {
            let out = power_method(|x| lap.matvec(x), 3, iters, &[]);
            assert!(out.eigenvalue <= dense_max + 1e-9);
        }
    }

    #[test]
    fn fully_deflated_space_returns_zero() {
        let basis = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let out = power_method(|x| x.to_vec(), 2, 10, &basis);
        assert_eq!(out.eigenvalue, 0.0);
    }

    #[test]
    fn buffer_reusing_core_matches_allocating_api_bitwise() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 3.0),
            (2, 3, 1.0),
            (3, 4, 2.0),
            (4, 0, 1.0),
        ];
        let lap = laplacian_from_edges(5, &edges);
        let a = power_method(|x| lap.matvec(x), 5, 83, &[]);
        let b = power_method_with(|x, out| lap.matvec_into(x, out), 5, 83, &[]);
        assert_eq!(a.eigenvalue.to_bits(), b.eigenvalue.to_bits());
        assert_eq!(a.eigenvector, b.eigenvector);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || power_method(|x| vec![2.0 * x[0] + x[1], x[0] + 2.0 * x[1]], 2, 37, &[]);
        let a = run();
        let b = run();
        assert_eq!(a.eigenvalue.to_bits(), b.eigenvalue.to_bits());
        assert_eq!(a.eigenvector, b.eigenvector);
    }
}
