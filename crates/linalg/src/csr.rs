use crate::DenseMatrix;

/// A sparse matrix in compressed sparse row format.
///
/// Construction goes through [`CsrMatrix::from_triplets`], which sums
/// duplicate entries (convenient for assembling Laplacians from multigraph
/// edge lists) and sorts column indices within each row, so the layout —
/// and therefore every floating-point summation order — is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a `rows × cols` matrix from `(row, col, value)` triplets.
    /// Duplicate coordinates are summed; exact zeros resulting from
    /// cancellation are kept (harmless) but input triplets with value `0.0`
    /// are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a triplet is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            if v != 0.0 {
                per_row[r].push((c, v));
            }
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in per_row.iter_mut() {
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Entry `(r, c)` (zero if not stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&c) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
        y
    }

    /// Quadratic form `xᵀ A x` (requires a square matrix).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x` has the wrong length.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "quadratic form needs a square matrix");
        crate::vec_ops::dot(x, &self.matvec(x))
    }

    /// Dense copy (for certification / testing on small instances).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.add_to(r, c, v);
            }
        }
        out
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0), (2, 2, 1.0)],
        )
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), m.to_dense().matvec(&x));
    }

    #[test]
    fn get_returns_zero_for_missing() {
        assert_eq!(sample().get(0, 2), 0.0);
        assert_eq!(sample().get(0, 1), -1.0);
    }

    #[test]
    fn symmetry_detection() {
        assert!(sample().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, -1.0)]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 0), 5.0);
    }

    proptest! {
        #[test]
        fn csr_matvec_agrees_with_dense(
            triplets in proptest::collection::vec((0usize..6, 0usize..6, -10f64..10.0), 0..40),
            x in proptest::collection::vec(-5f64..5.0, 6)
        ) {
            let m = CsrMatrix::from_triplets(6, 6, &triplets);
            let lhs = m.matvec(&x);
            let rhs = m.to_dense().matvec(&x);
            for (a, b) in lhs.iter().zip(&rhs) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
