use crate::DenseMatrix;

/// Rows per parallel chunk in [`CsrMatrix::matvec_into`]. Fixed (never
/// derived from the thread count) so the work decomposition — and hence
/// the floating-point result — is independent of parallelism.
pub const MATVEC_ROW_CHUNK: usize = 512;

/// Minimum stored entries before [`CsrMatrix::matvec_into`] fans out.
pub const PAR_MIN_NNZ: usize = 16_384;

/// Right-hand sides per register tile of the multi-RHS kernels
/// ([`CsrMatrix::matvec_multi_into`] and friends). Fixed so the lane
/// decomposition never depends on the batch width at runtime: each tile
/// accumulates into a `[f64; RHS_LANES]` that the compiler keeps in
/// vector registers, and every `(row, rhs)` pair still sums its entries
/// in index order — bitwise identical to the single-RHS kernel.
pub const RHS_LANES: usize = 4;

/// A sparse matrix in compressed sparse row format.
///
/// Construction goes through [`CsrMatrix::from_triplets`], which sums
/// duplicate entries (convenient for assembling Laplacians from multigraph
/// edge lists) and sorts column indices within each row, so the layout —
/// and therefore every floating-point summation order — is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a `rows × cols` matrix from `(row, col, value)` triplets.
    /// Duplicate coordinates are summed; exact zeros resulting from
    /// cancellation are kept (harmless) but input triplets with value `0.0`
    /// are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a triplet is out of range.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Two-pass counting-sort build: one contiguous staging buffer
        // instead of a Vec per row. Pass 1 counts surviving entries per
        // row; pass 2 scatters them, preserving input order within each
        // row so the stable per-row column sort — and therefore the
        // duplicate summation order — matches a per-row Vec build exactly.
        let mut starts = vec![0usize; rows + 1];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            if v != 0.0 {
                starts[r + 1] += 1;
            }
        }
        for r in 0..rows {
            starts[r + 1] += starts[r];
        }
        let total = starts[rows];
        let mut staged: Vec<(usize, f64)> = vec![(0, 0.0); total];
        let mut cursor = starts.clone();
        for &(r, c, v) in triplets {
            if v != 0.0 {
                staged[cursor[r]] = (c, v);
                cursor[r] += 1;
            }
        }
        // Merge duplicates in place inside the staging buffer first, so
        // the final index/value arrays can be reserved at their *exact*
        // merged size — on duplicate-heavy inputs (Laplacian assembly
        // emits two diagonal triplets per edge) pushing into
        // `with_capacity(total)` arrays would permanently retain up to 2×
        // slack capacity in the returned matrix.
        let mut merged_len = cursor; // reuse the cursor allocation
        let mut merged_total = 0usize;
        for r in 0..rows {
            let row = &mut staged[starts[r]..starts[r + 1]];
            row.sort_by_key(|&(c, _)| c);
            let mut w = 0usize;
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                row[w] = (c, v);
                w += 1;
            }
            merged_len[r] = w;
            merged_total += w;
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(merged_total);
        let mut values = Vec::with_capacity(merged_total);
        indptr.push(0);
        for r in 0..rows {
            for &(c, v) in &staged[starts[r]..starts[r] + merged_len[r]] {
                indices.push(c);
                values.push(v);
            }
            indptr.push(indices.len());
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(column, value)` entries of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .zip(&self.values[lo..hi])
            .map(|(&c, &v)| (c, v))
    }

    /// Entry `(r, c)` (zero if not stored).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        match self.indices[lo..hi].binary_search(&c) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Matrix-vector product `A·x`.
    ///
    /// Allocates the output; iterative solvers should prefer
    /// [`CsrMatrix::matvec_into`] with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product `out ← A·x` into a caller-provided buffer —
    /// the allocation-free hot path of every iterative solver.
    ///
    /// Row-partitioned across threads in fixed chunks of
    /// [`MATVEC_ROW_CHUNK`] rows: each output entry is an independent
    /// sequential dot product over one row, so the result is bitwise
    /// identical to the serial loop for any thread count. Matrices too
    /// small to fill more than one chunk (or with fewer than
    /// [`PAR_MIN_NNZ`] stored entries) run serially to avoid spawn
    /// overhead — with, again, identical results.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        let row_dot = |r: usize| {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            acc
        };
        if self.nnz() < PAR_MIN_NNZ {
            for (r, yi) in out.iter_mut().enumerate() {
                *yi = row_dot(r);
            }
            return;
        }
        crate::par::par_chunks_mut(out, MATVEC_ROW_CHUNK, |chunk_idx, sl| {
            let base = chunk_idx * MATVEC_ROW_CHUNK;
            for (k, yi) in sl.iter_mut().enumerate() {
                *yi = row_dot(base + k);
            }
        });
    }

    /// Batched matrix-vector product over `k` interleaved right-hand
    /// sides: `xs` holds `cols` rows of `k` lanes (`xs[c*k + j]` is entry
    /// `c` of vector `j`), `out` likewise. One pass over the stored
    /// entries serves the whole batch — the matrix streams through the
    /// cache once instead of `k` times — and lanes are processed in
    /// register tiles of [`RHS_LANES`].
    ///
    /// For every `(row, rhs)` pair the entries accumulate in index order
    /// from `0.0`, exactly as [`CsrMatrix::matvec_into`] does, so column
    /// `j` of the result is bitwise identical to a single matvec of
    /// column `j` — at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `xs.len() != cols*k`, or `out.len() != rows*k`.
    pub fn matvec_multi_into(&self, xs: &[f64], k: usize, out: &mut [f64]) {
        assert!(k > 0, "batch width must be positive");
        assert_eq!(xs.len(), self.cols * k, "matvec_multi dimension mismatch");
        assert_eq!(
            out.len(),
            self.rows * k,
            "matvec_multi output length mismatch"
        );
        let row_multi = |r: usize, orow: &mut [f64]| {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let cols_r = &self.indices[lo..hi];
            let vals_r = &self.values[lo..hi];
            let mut j = 0;
            while j + RHS_LANES <= k {
                let mut acc = [0.0f64; RHS_LANES];
                for (&c, &v) in cols_r.iter().zip(vals_r) {
                    let xrow = &xs[c * k + j..c * k + j + RHS_LANES];
                    for (a, &xv) in acc.iter_mut().zip(xrow) {
                        *a += v * xv;
                    }
                }
                orow[j..j + RHS_LANES].copy_from_slice(&acc);
                j += RHS_LANES;
            }
            while j < k {
                let mut a = 0.0;
                for (&c, &v) in cols_r.iter().zip(vals_r) {
                    a += v * xs[c * k + j];
                }
                orow[j] = a;
                j += 1;
            }
        };
        if self.nnz() * k < PAR_MIN_NNZ {
            for (r, orow) in out.chunks_mut(k).enumerate() {
                row_multi(r, orow);
            }
            return;
        }
        crate::par::par_chunks_mut(out, MATVEC_ROW_CHUNK * k, |chunk_idx, sl| {
            let base = chunk_idx * MATVEC_ROW_CHUNK;
            for (i, orow) in sl.chunks_mut(k).enumerate() {
                row_multi(base + i, orow);
            }
        });
    }

    /// Quadratic form `xᵀ A x` (requires a square matrix).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `x` has the wrong length.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "quadratic form needs a square matrix");
        // Σ_r x_r · (A·x)_r without materializing A·x: each row's dot
        // product accumulates in index order and the outer sum runs in
        // row order — the exact operation sequence of
        // `dot(x, &self.matvec(x))`, minus the allocation.
        let mut total = 0.0;
        for (r, &xr) in x.iter().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.row(r) {
                acc += v * x[c];
            }
            total += xr * acc;
        }
        total
    }

    /// Dense copy (for certification / testing on small instances).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                out.add_to(r, c, v);
            }
        }
        out
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                if (self.get(c, r) - v).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                triplets.push((c, r, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (2, 2, 1.0),
            ],
        )
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 0.0)]);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(m.matvec(&x), m.to_dense().matvec(&x));
    }

    #[test]
    fn get_returns_zero_for_missing() {
        assert_eq!(sample().get(0, 2), 0.0);
        assert_eq!(sample().get(0, 1), -1.0);
    }

    #[test]
    fn symmetry_detection() {
        assert!(sample().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(0.0));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, -1.0)]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 0), 5.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]
        #[test]
        fn matvec_into_parallel_is_bitwise_equal_to_serial(
            weights in proptest::collection::vec(0.1f64..10.0, 32),
            xs in proptest::collection::vec(-100f64..100.0, 32),
        ) {
            // A matrix big enough to clear PAR_MIN_NNZ and span many
            // row chunks; entries and x cycle through the sampled values.
            let n = 9000;
            let triplets: Vec<(usize, usize, f64)> = (0..n - 1)
                .flat_map(|i| {
                    let w = weights[i % weights.len()];
                    [(i, i + 1, -w), (i + 1, i, -w), (i, i, w), (i + 1, i + 1, w)]
                })
                .collect();
            let m = CsrMatrix::from_triplets(n, n, &triplets);
            prop_assert!(m.nnz() >= PAR_MIN_NNZ);
            let x: Vec<f64> = (0..n).map(|i| xs[i % xs.len()]).collect();
            let serial = crate::par::with_threads(1, || {
                let mut y = vec![0.0; n];
                m.matvec_into(&x, &mut y);
                y
            });
            for threads in [2, 8] {
                let par = crate::par::with_threads(threads, || {
                    let mut y = vec![0.0; n];
                    m.matvec_into(&x, &mut y);
                    y
                });
                for (a, b) in serial.iter().zip(&par) {
                    prop_assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }

        #[test]
        fn from_triplets_matches_per_row_staging_build(
            triplets in proptest::collection::vec((0usize..6, 0usize..6, -10f64..10.0), 0..40)
        ) {
            // Reference: the Vec-per-row staging builder this replaced.
            // Same stable per-row sort, same duplicate summation order —
            // the outputs must agree exactly, bits included.
            let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 6];
            for &(r, c, v) in &triplets {
                if v != 0.0 {
                    per_row[r].push((c, v));
                }
            }
            let mut indices = Vec::new();
            let mut values = Vec::new();
            let mut indptr = vec![0usize];
            for row in per_row.iter_mut() {
                row.sort_by_key(|&(c, _)| c);
                let mut i = 0;
                while i < row.len() {
                    let c = row[i].0;
                    let mut v = 0.0;
                    while i < row.len() && row[i].0 == c {
                        v += row[i].1;
                        i += 1;
                    }
                    indices.push(c);
                    values.push(v);
                }
                indptr.push(indices.len());
            }
            let m = CsrMatrix::from_triplets(6, 6, &triplets);
            prop_assert_eq!(m.nnz(), values.len());
            let mut k = 0;
            for r in 0..6 {
                for (c, v) in m.row(r) {
                    prop_assert_eq!(c, indices[k]);
                    prop_assert_eq!(v.to_bits(), values[k].to_bits());
                    k += 1;
                }
                prop_assert_eq!(m.row(r).count(), indptr[r + 1] - indptr[r]);
            }
        }

        #[test]
        fn csr_matvec_agrees_with_dense(
            triplets in proptest::collection::vec((0usize..6, 0usize..6, -10f64..10.0), 0..40),
            x in proptest::collection::vec(-5f64..5.0, 6)
        ) {
            let m = CsrMatrix::from_triplets(6, 6, &triplets);
            let lhs = m.matvec(&x);
            let rhs = m.to_dense().matvec(&x);
            for (a, b) in lhs.iter().zip(&rhs) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
