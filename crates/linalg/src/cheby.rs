//! Preconditioned Chebyshev iteration — Theorem 2.2 of the paper.
//!
//! Given symmetric PSD `A`, `B` with `A ⪯ B ⪯ κA`, the iteration applies a
//! linear operator `Z ≈ A†` to a vector `b` using `O(√κ log(1/ε))`
//! iterations, each consisting of one multiplication by `A`, one solve with
//! `B`, and a constant number of vector operations — exactly the iteration
//! structure the congested clique implementation charges rounds for.

use crate::vec_ops::{axpy, sub, xpay};

/// Result of a Chebyshev solve.
#[derive(Debug, Clone)]
pub struct ChebyshevOutcome {
    /// The computed vector `Z b ≈ A† b`.
    pub x: Vec<f64>,
    /// Number of iterations executed (each: one `A`-matvec + one `B`-solve).
    pub iterations: usize,
}

/// Reusable buffers for [`chebyshev_solve_fixed_into`]: the residual,
/// search direction, preconditioned residual, and `A·p` product. Create
/// once, hand to every solve — the iteration then performs zero heap
/// allocations in steady state.
#[derive(Debug, Clone, Default)]
pub struct ChebyshevWorkspace {
    r: Vec<f64>,
    p: Vec<f64>,
    z: Vec<f64>,
    ap: Vec<f64>,
}

impl ChebyshevWorkspace {
    /// Workspace sized for length-`n` vectors.
    pub fn new(n: usize) -> Self {
        Self {
            r: vec![0.0; n],
            p: vec![0.0; n],
            z: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    fn resize(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.ap.resize(n, 0.0);
    }
}

/// The iteration count `k(κ, ε)` guaranteeing
/// `‖x_k − A†b‖_A ≤ ε ‖A†b‖_A`: the smallest `k` with
/// `2·((√κ−1)/(√κ+1))^k ≤ ε`. This is the `O(√κ log(1/ε))` of
/// Theorem 2.2 with explicit constants.
///
/// # Panics
///
/// Panics if `kappa < 1` or `eps ≤ 0`.
pub fn chebyshev_iteration_bound(kappa: f64, eps: f64) -> usize {
    assert!(kappa >= 1.0, "condition bound must be >= 1, got {kappa}");
    assert!(eps > 0.0, "tolerance must be positive, got {eps}");
    if eps >= 2.0 {
        return 0;
    }
    let s = kappa.sqrt();
    let rho = (s - 1.0) / (s + 1.0);
    if rho == 0.0 {
        return 1; // exact preconditioner: a single corrected step suffices
    }
    let k = ((2.0 / eps).ln() / (1.0 / rho).ln()).ceil();
    (k as usize).max(1)
}

/// Runs preconditioned Chebyshev iteration.
///
/// * `apply_a` — multiplication by `A` (one congested clique round in the
///   distributed setting);
/// * `solve_b` — application of `B†` (free internally once the sparsifier
///   is globally known);
/// * `kappa` — a certified bound with `A ⪯ B ⪯ κA`;
/// * `eps` — target relative error in the `A`-norm.
///
/// Returns the iterate after [`chebyshev_iteration_bound`]`(kappa, eps)`
/// steps. The operator realized on `b` is symmetric and spectrally within
/// `(1±ε)A†` (property 1 of Theorem 2.2), which Corollary 2.3 turns into
/// the `‖x − A†b‖_A ≤ ε‖A†b‖_A` guarantee.
///
/// # Panics
///
/// Panics if `kappa < 1`, `eps ≤ 0`, or the closures return vectors of the
/// wrong length.
pub fn chebyshev_solve(
    apply_a: impl FnMut(&[f64]) -> Vec<f64>,
    solve_b: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    kappa: f64,
    eps: f64,
) -> ChebyshevOutcome {
    let iterations = chebyshev_iteration_bound(kappa, eps);
    chebyshev_solve_fixed(apply_a, solve_b, b, kappa, iterations)
}

/// Like [`chebyshev_solve`] but with an explicit iteration count —
/// useful for ablation experiments on the iteration bound (E3).
///
/// # Panics
///
/// Panics if `kappa < 1` or the closures return vectors of the wrong length.
pub fn chebyshev_solve_fixed(
    mut apply_a: impl FnMut(&[f64]) -> Vec<f64>,
    mut solve_b: impl FnMut(&[f64]) -> Vec<f64>,
    b: &[f64],
    kappa: f64,
    iterations: usize,
) -> ChebyshevOutcome {
    let n = b.len();
    let mut x = vec![0.0; n];
    let mut ws = ChebyshevWorkspace::new(n);
    chebyshev_solve_fixed_into(
        |p, out| {
            let ap = apply_a(p);
            assert_eq!(ap.len(), out.len(), "apply_a returned wrong length");
            out.copy_from_slice(&ap);
        },
        |r, out| {
            let z = solve_b(r);
            assert_eq!(z.len(), out.len(), "solve_b returned wrong length");
            out.copy_from_slice(&z);
        },
        b,
        kappa,
        iterations,
        &mut x,
        &mut ws,
    );
    ChebyshevOutcome { x, iterations }
}

/// Allocation-free core of [`chebyshev_solve_fixed`]: operators write into
/// caller-provided buffers, the iterate lands in `x`, and all intermediate
/// vectors live in `ws`. Steady-state iteration performs **zero heap
/// allocations** (verified by `tests/alloc_free.rs`), and the sequence of
/// floating-point operations is identical to the allocating wrapper, so
/// both produce bitwise-equal results.
///
/// * `apply_a(v, out)` — writes `A·v` into `out`;
/// * `solve_b(v, out)` — writes `B†·v` into `out`.
///
/// Returns the iteration count (`iterations`, for symmetry with
/// [`ChebyshevOutcome`]).
///
/// # Panics
///
/// Panics if `kappa < 1` or `x.len() != b.len()`.
pub fn chebyshev_solve_fixed_into(
    mut apply_a: impl FnMut(&[f64], &mut [f64]),
    mut solve_b: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    kappa: f64,
    iterations: usize,
    x: &mut [f64],
    ws: &mut ChebyshevWorkspace,
) -> usize {
    assert!(kappa >= 1.0, "condition bound must be >= 1, got {kappa}");
    let n = b.len();
    assert_eq!(x.len(), n, "x length mismatch");
    ws.resize(n);
    // Spectrum of B†A on range(A) lies in [1/κ, 1].
    let lambda_min = 1.0 / kappa;
    let lambda_max = 1.0;
    let d = (lambda_max + lambda_min) / 2.0;
    let c = (lambda_max - lambda_min) / 2.0;

    x.fill(0.0);
    ws.r.copy_from_slice(b); // r = b − A x with x = 0
    let mut alpha = 0.0;
    for k in 0..iterations {
        solve_b(&ws.r, &mut ws.z);
        if k == 0 {
            ws.p.copy_from_slice(&ws.z);
            alpha = 1.0 / d;
        } else {
            let beta = if k == 1 {
                0.5 * (c * alpha) * (c * alpha)
            } else {
                (c * alpha / 2.0) * (c * alpha / 2.0)
            };
            alpha = 1.0 / (d - beta / alpha);
            xpay(&mut ws.p, beta, &ws.z);
        }
        apply_a(&ws.p, &mut ws.ap);
        axpy(x, alpha, &ws.p);
        axpy(&mut ws.r, -alpha, &ws.ap);
    }
    iterations
}

/// Reusable buffers for [`chebyshev_solve_multi_into`]: one
/// [`ChebyshevWorkspace`] over the interleaved `n·k` batch buffers.
/// Create once per batch shape, hand to every batched solve — steady
/// state performs zero heap allocations (pinned by the counting-allocator
/// harness in `cc-sparsify/tests/alloc_free_batch.rs`).
#[derive(Debug, Clone, Default)]
pub struct BatchWorkspace {
    inner: ChebyshevWorkspace,
}

impl BatchWorkspace {
    /// Workspace sized for `k` interleaved right-hand sides of length `n`.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            inner: ChebyshevWorkspace::new(n * k),
        }
    }
}

/// Batched preconditioned Chebyshev over `k` interleaved right-hand
/// sides: `bs` and `xs` hold `n` rows of `k` lanes (`bs[c*k + j]` is
/// entry `c` of vector `j`), and the operators receive the full
/// interleaved buffers — `apply_a` is typically
/// [`crate::CsrMatrix::matvec_multi_into`] and `solve_b` a batched
/// preconditioner solve, so one pass over each operator serves the whole
/// batch per iteration. That is the amortization: the matrix and the
/// preconditioner factor stream through the cache once per iteration
/// instead of `k` times.
///
/// The Chebyshev coefficients `α, β` depend only on `kappa` and the
/// iteration index — never on the iterate — and every vector update is
/// elementwise, so column `j` of the batched run performs exactly the
/// floating-point operations of a single [`chebyshev_solve_fixed_into`]
/// on column `j`: results are bitwise identical per column (given
/// operators with the same per-column property), at any thread count.
///
/// Returns the iteration count.
///
/// # Panics
///
/// Panics if `kappa < 1`, `k == 0`, `bs.len()` is not a multiple of `k`,
/// or `xs.len() != bs.len()`.
#[allow(clippy::too_many_arguments)]
pub fn chebyshev_solve_multi_into(
    apply_a: impl FnMut(&[f64], &mut [f64]),
    solve_b: impl FnMut(&[f64], &mut [f64]),
    bs: &[f64],
    k: usize,
    kappa: f64,
    iterations: usize,
    xs: &mut [f64],
    ws: &mut BatchWorkspace,
) -> usize {
    assert!(k > 0, "batch width must be positive");
    assert_eq!(bs.len() % k, 0, "rhs buffer not a multiple of the batch");
    chebyshev_solve_fixed_into(apply_a, solve_b, bs, kappa, iterations, xs, &mut ws.inner)
}

/// Convenience: the error functional of Theorem 1.1,
/// `‖x − x*‖_A / ‖x*‖_A` given a quadratic form evaluator for `A`.
///
/// Returns 0 when `x* = 0`.
pub fn relative_a_error(quadratic_form: impl Fn(&[f64]) -> f64, x: &[f64], x_star: &[f64]) -> f64 {
    let denom = quadratic_form(x_star).max(0.0).sqrt();
    if denom == 0.0 {
        return 0.0;
    }
    let diff = sub(x, x_star);
    quadratic_form(&diff).max(0.0).sqrt() / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian_from_edges, laplacian_quadratic_form};
    use crate::vec_ops::remove_mean;
    use crate::GroundedCholesky;

    #[test]
    fn bound_shrinks_with_looser_eps_and_grows_with_kappa() {
        assert!(chebyshev_iteration_bound(4.0, 1e-8) > chebyshev_iteration_bound(4.0, 1e-2));
        assert!(chebyshev_iteration_bound(100.0, 1e-4) > chebyshev_iteration_bound(4.0, 1e-4));
        assert_eq!(chebyshev_iteration_bound(1.0, 1e-4), 1);
        assert_eq!(chebyshev_iteration_bound(7.0, 2.5), 0);
    }

    #[test]
    fn bound_matches_sqrt_kappa_log_eps_shape() {
        // k(κ,ε) / (√κ · ln(1/ε)) should be bounded by a small constant.
        for &kappa in &[2.0, 8.0, 64.0, 512.0] {
            for &eps in &[1e-2, 1e-5, 1e-9] {
                let k = chebyshev_iteration_bound(kappa, eps) as f64;
                let scale = kappa.sqrt() * (1.0 / eps).ln();
                assert!(k <= 1.0 + scale, "k={k} scale={scale}");
            }
        }
    }

    #[test]
    fn exact_preconditioner_converges_in_one_step() {
        let edges = vec![(0, 1, 1.0), (1, 2, 2.0), (2, 0, 0.5)];
        let lap = laplacian_from_edges(3, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let mut b = vec![1.0, -3.0, 2.0];
        remove_mean(&mut b);
        let out = chebyshev_solve(|x| lap.matvec(x), |r| chol.solve(r), &b, 1.0, 1e-6);
        assert_eq!(out.iterations, 1);
        let x_star = chol.solve(&b);
        let err = relative_a_error(|v| laplacian_quadratic_form(&edges, v), &out.x, &x_star);
        assert!(err < 1e-10, "err={err}");
    }

    #[test]
    fn scaled_preconditioner_reaches_requested_accuracy() {
        // B = 3·L is a κ=3 preconditioner for L (L ⪯ B? No: B = 3L means
        // L ⪯ 3L = B ⪯ 3·L = 3A, so κ = 3 works with B-solve = (1/3)L†).
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 0, 4.0),
            (1, 3, 0.3),
        ];
        let lap = laplacian_from_edges(4, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let mut b = vec![5.0, -1.0, -2.5, 0.0];
        remove_mean(&mut b);
        let x_star = chol.solve(&b);
        for &eps in &[1e-2, 1e-6, 1e-10] {
            let out = chebyshev_solve(
                |x| lap.matvec(x),
                |r| {
                    let mut z = chol.solve(r);
                    for zi in z.iter_mut() {
                        *zi /= 3.0;
                    }
                    z
                },
                &b,
                3.0,
                eps,
            );
            let err = relative_a_error(|v| laplacian_quadratic_form(&edges, v), &out.x, &x_star);
            assert!(err <= eps * 1.01, "eps={eps} err={err}");
        }
    }

    #[test]
    fn spectral_sandwich_preconditioner() {
        // Precondition the path Laplacian by the cycle Laplacian: compute a
        // valid κ from dense spectra, then check Chebyshev meets its bound.
        use crate::symmetric_eigen;
        let n = 12;
        let path: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let mut cycle = path.clone();
        cycle.push((n - 1, 0, 1.0));
        let la = laplacian_from_edges(n, &path);
        let lb = laplacian_from_edges(n, &cycle);
        // κ = max eigenvalue of (A† B)… easier: generalized bounds via dense eig
        // of pencil using pseudoinverse action: find smallest μ with A ⪯ μ B … we
        // simply take κ = λmax(B†A)⁻¹-ish. For the test use a loose certified κ:
        // path ⪯ cycle (cycle has extra edge) and cycle ⪯ κ·path with κ from eig.
        let ea = symmetric_eigen(&la.to_dense()).unwrap();
        let eb = symmetric_eigen(&lb.to_dense()).unwrap();
        // crude but valid sandwich: A ⪯ B always (B = A + edge);
        // B ⪯ κ A with κ = λmax(B)/λ₂(A).
        let kappa = eb.largest().unwrap() / ea.smallest_above(1e-9).unwrap();
        let cholb = GroundedCholesky::new(&lb).unwrap();
        let mut b = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = -1.0;
        let x_star = GroundedCholesky::new(&la).unwrap().solve(&b);
        let eps = 1e-7;
        let out = chebyshev_solve(|x| la.matvec(x), |r| cholb.solve(r), &b, kappa, eps);
        let err = relative_a_error(|v| laplacian_quadratic_form(&path, v), &out.x, &x_star);
        assert!(
            err <= eps * 1.05,
            "err={err} after {} iters",
            out.iterations
        );
    }

    #[test]
    fn into_variant_matches_allocating_api_bitwise() {
        let edges = vec![
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 0, 4.0),
            (1, 3, 0.3),
        ];
        let lap = laplacian_from_edges(4, &edges);
        let chol = GroundedCholesky::new(&lap).unwrap();
        let mut b = vec![5.0, -1.0, -2.5, 0.0];
        remove_mean(&mut b);
        let out = chebyshev_solve_fixed(|x| lap.matvec(x), |r| chol.solve(r), &b, 3.0, 25);
        let mut x = vec![0.0; 4];
        let mut ws = ChebyshevWorkspace::new(4);
        let iters = chebyshev_solve_fixed_into(
            |p, ap| lap.matvec_into(p, ap),
            |r, z| {
                let s = chol.solve(r);
                z.copy_from_slice(&s);
            },
            &b,
            3.0,
            25,
            &mut x,
            &mut ws,
        );
        assert_eq!(iters, out.iterations);
        for (a, b) in x.iter().zip(&out.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn identical_across_thread_counts() {
        // Large enough that matvec_into actually fans out (nnz ≥ PAR_MIN_NNZ,
        // rows > MATVEC_ROW_CHUNK): bitwise equality across 1, 2, 8 threads.
        let n = 9000;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1)
            .map(|i| (i, i + 1, 1.0 + (i % 7) as f64 * 0.25))
            .collect();
        let lap = laplacian_from_edges(n, &edges);
        assert!(lap.nnz() >= crate::csr::PAR_MIN_NNZ);
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 - 50.0).collect();
        remove_mean(&mut b);
        let run = |threads: usize| {
            crate::par::with_threads(threads, || {
                let mut x = vec![0.0; n];
                let mut ws = ChebyshevWorkspace::new(n);
                chebyshev_solve_fixed_into(
                    |p, ap| lap.matvec_into(p, ap),
                    |r, z| z.copy_from_slice(r),
                    &b,
                    16.0,
                    40,
                    &mut x,
                    &mut ws,
                );
                x
            })
        };
        let base = run(1);
        for threads in [2, 8] {
            let got = run(threads);
            assert!(
                base.iter()
                    .zip(&got)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "chebyshev not bitwise identical with {threads} threads"
            );
        }
    }

    #[test]
    fn relative_error_of_zero_target_is_zero() {
        let err = relative_a_error(|v| v.iter().map(|x| x * x).sum(), &[1.0], &[0.0]);
        assert_eq!(err, 0.0);
    }
}
