use std::fmt;

use crate::vec_ops;
use crate::LinalgError;

/// Output rows per parallel chunk in [`DenseMatrix::matmul`] and
/// [`DenseMatrix::matvec_into`]. Fixed (never derived from the thread
/// count) so the decomposition is independent of parallelism.
pub const MATMUL_ROW_BLOCK: usize = 32;

/// Minimum scalar multiply-adds before dense kernels fan out.
pub const PAR_MIN_WORK: usize = 262_144;

/// Columns of `B` per cache block in [`DenseMatrix::matmul`]: the output
/// row segment and the matching `B` panel stay resident while a row
/// block's contributions accumulate. Fixed — never derived from the
/// thread count or matrix shape — so blocking is a pure loop reorder of
/// identical per-element operations.
pub const MATMUL_J_BLOCK: usize = 64;

/// Rows of `B` (columns of `A`) per cache panel in
/// [`DenseMatrix::matmul`]. A `MATMUL_K_PANEL × MATMUL_J_BLOCK` panel of
/// `B` is 32 KiB — it stays in L1/L2 while all rows of an output block
/// consume it.
pub const MATMUL_K_PANEL: usize = 64;

/// A dense row-major matrix of `f64`.
///
/// Small and deliberately simple: this backs the *internal* (per-node, free)
/// computation of the congested clique algorithms — preconditioner solves,
/// spectral certification of clusters — where the operands are `O(n)`-sized.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data has wrong length");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product `out ← A·x` into a caller-provided buffer,
    /// row-partitioned across threads (each entry is one independent dot
    /// product, so the result is bitwise identical to the serial loop).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(out.len(), self.rows, "matvec output length mismatch");
        if self.rows * self.cols < PAR_MIN_WORK {
            for (r, yi) in out.iter_mut().enumerate() {
                *yi = vec_ops::dot(self.row(r), x);
            }
            return;
        }
        crate::par::par_chunks_mut(out, MATMUL_ROW_BLOCK, |chunk_idx, sl| {
            let base = chunk_idx * MATMUL_ROW_BLOCK;
            for (k, yi) in sl.iter_mut().enumerate() {
                *yi = vec_ops::dot(self.row(base + k), x);
            }
        });
    }

    /// Batched matrix-vector product over `k` interleaved right-hand
    /// sides (`xs[c*k + j]` is entry `c` of vector `j`): one pass over
    /// the matrix serves the whole batch, with lanes processed in
    /// register tiles of [`crate::RHS_LANES`]. Every `(row, rhs)` pair
    /// accumulates its terms in ascending column order from `0.0` —
    /// column `j` of the result is bitwise identical to
    /// [`DenseMatrix::matvec_into`] on column `j`, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `xs.len() != cols*k`, or `out.len() != rows*k`.
    pub fn matvec_multi_into(&self, xs: &[f64], k: usize, out: &mut [f64]) {
        const LANES: usize = crate::csr::RHS_LANES;
        assert!(k > 0, "batch width must be positive");
        assert_eq!(xs.len(), self.cols * k, "matvec_multi dimension mismatch");
        assert_eq!(
            out.len(),
            self.rows * k,
            "matvec_multi output length mismatch"
        );
        let row_multi = |r: usize, orow: &mut [f64]| {
            let arow = self.row(r);
            let mut j = 0;
            while j + LANES <= k {
                let mut acc = [0.0f64; LANES];
                for (c, &v) in arow.iter().enumerate() {
                    let xrow = &xs[c * k + j..c * k + j + LANES];
                    for (a, &xv) in acc.iter_mut().zip(xrow) {
                        *a += v * xv;
                    }
                }
                orow[j..j + LANES].copy_from_slice(&acc);
                j += LANES;
            }
            while j < k {
                let mut a = 0.0;
                for (c, &v) in arow.iter().enumerate() {
                    a += v * xs[c * k + j];
                }
                orow[j] = a;
                j += 1;
            }
        };
        if self.rows * self.cols * k < PAR_MIN_WORK {
            for (r, orow) in out.chunks_mut(k).enumerate() {
                row_multi(r, orow);
            }
            return;
        }
        crate::par::par_chunks_mut(out, MATMUL_ROW_BLOCK * k, |chunk_idx, sl| {
            let base = chunk_idx * MATMUL_ROW_BLOCK;
            for (i, orow) in sl.chunks_mut(k).enumerate() {
                row_multi(base + i, orow);
            }
        });
    }

    /// Matrix product `A·B`, blocked two ways: threads own disjoint
    /// output row blocks of fixed size ([`MATMUL_ROW_BLOCK`]), and within
    /// a row block the `k`/`j` loops are tiled into
    /// [`MATMUL_K_PANEL`]`×`[`MATMUL_J_BLOCK`] cache panels of `B` that
    /// are reused across all rows of the block. Blocking only reorders
    /// *independent* output elements; each element still accumulates its
    /// `k` terms in ascending order (panels ascend, `k` ascends within a
    /// panel), so the result is bitwise identical to the serial `i,k,j`
    /// triple loop — for any thread count and any block size.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                got: b.rows,
                expected: self.cols,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        if b.cols == 0 || self.rows == 0 {
            return Ok(out);
        }
        let bc = b.cols;
        let row_block = |row0: usize, rows: &mut [f64]| {
            for jb in (0..bc).step_by(MATMUL_J_BLOCK) {
                let jhi = (jb + MATMUL_J_BLOCK).min(bc);
                for kb in (0..self.cols).step_by(MATMUL_K_PANEL) {
                    let khi = (kb + MATMUL_K_PANEL).min(self.cols);
                    for (local, orow) in rows.chunks_mut(bc).enumerate() {
                        let i = row0 + local;
                        let oseg = &mut orow[jb..jhi];
                        for k in kb..khi {
                            let aik = self.data[i * self.cols + k];
                            if aik == 0.0 {
                                continue;
                            }
                            for (oj, bj) in oseg.iter_mut().zip(&b.data[k * bc + jb..k * bc + jhi])
                            {
                                *oj += aik * bj;
                            }
                        }
                    }
                }
            }
        };
        if self.rows * self.cols * bc < PAR_MIN_WORK {
            row_block(0, &mut out.data);
        } else {
            crate::par::par_chunks_mut(&mut out.data, MATMUL_ROW_BLOCK * bc, |chunk_idx, sl| {
                row_block(chunk_idx * MATMUL_ROW_BLOCK, sl);
            });
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match a square `A`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "quadratic form needs a square matrix");
        vec_ops::dot(x, &self.matvec(x))
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `A ← A + α·B`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, b: &DenseMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "axpy shape mismatch"
        );
        for (x, y) in self.data.iter_mut().zip(&b.data) {
            *x += alpha * y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let a = sample();
        let prod = a.matmul(&DenseMatrix::identity(3)).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(matches!(
            a.matmul(&DenseMatrix::identity(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let mut s = DenseMatrix::zeros(2, 2);
        s.set(0, 1, 3.0);
        assert!(!s.is_symmetric(1e-12));
        s.set(1, 0, 3.0);
        assert!(s.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_form_of_identity_is_norm_squared() {
        let id = DenseMatrix::identity(3);
        assert_eq!(id.quadratic_form(&[1.0, 2.0, 2.0]), 9.0);
    }

    #[test]
    fn debug_render_is_nonempty() {
        assert!(!format!("{:?}", sample()).is_empty());
    }
}
