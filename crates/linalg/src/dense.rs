use std::fmt;

use crate::vec_ops;
use crate::LinalgError;

/// A dense row-major matrix of `f64`.
///
/// Small and deliberately simple: this backs the *internal* (per-node, free)
/// computation of the congested clique algorithms — preconditioner solves,
/// spectral certification of clusters — where the operands are `O(n)`-sized.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "row-major data has wrong length");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Sets entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] += v;
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|r| vec_ops::dot(self.row(r), x)).collect()
    }

    /// Matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                got: b.rows,
                expected: self.cols,
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out.data[i * b.cols + j] += aik * b.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Quadratic form `xᵀ A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match a square `A`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(self.rows, self.cols, "quadratic form needs a square matrix");
        vec_ops::dot(x, &self.matvec(x))
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self.get(r, c) - self.get(c, r)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// `A ← A + α·B`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, b: &DenseMatrix) {
        assert_eq!((self.rows, self.cols), (b.rows, b.cols), "axpy shape mismatch");
        for (x, y) in self.data.iter_mut().zip(&b.data) {
            *x += alpha * y;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matmul_with_identity_is_noop() {
        let a = sample();
        let prod = a.matmul(&DenseMatrix::identity(3)).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(matches!(
            a.matmul(&DenseMatrix::identity(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let mut s = DenseMatrix::zeros(2, 2);
        s.set(0, 1, 3.0);
        assert!(!s.is_symmetric(1e-12));
        s.set(1, 0, 3.0);
        assert!(s.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_form_of_identity_is_norm_squared() {
        let id = DenseMatrix::identity(3);
        assert_eq!(id.quadratic_form(&[1.0, 2.0, 2.0]), 9.0);
    }

    #[test]
    fn debug_render_is_nonempty() {
        assert!(!format!("{:?}", sample()).is_empty());
    }
}
