//! # cc-linalg — numerical linear algebra for the Laplacian paradigm
//!
//! Self-contained numerical machinery backing the deterministic congested
//! clique algorithms of Forster & de Vos (PODC 2023):
//!
//! * [`DenseMatrix`] / [`CsrMatrix`] — dense and sparse symmetric matrices;
//! * [`laplacian_from_edges`] and friends — graph Laplacians and their
//!   quadratic forms (`‖x‖_L`, §2.2 of the paper);
//! * [`symmetric_eigen`] — a dense symmetric eigensolver (Householder
//!   tridiagonalization followed by implicit-shift QL), used to *certify*
//!   spectral gaps and sparsifier approximation factors deterministically;
//! * [`GroundedCholesky`] — exact solves with singular Laplacians by
//!   grounding one vertex per connected component;
//! * [`chebyshev_solve`] — preconditioned Chebyshev iteration
//!   (Theorem 2.2 of the paper), the engine of the Laplacian solver;
//! * [`conjugate_gradient`] — a deterministic CG reference solver;
//! * [`power_method`] — deterministic power iteration for extreme
//!   eigenvalue estimation on larger instances.
//!
//! Everything here is deterministic: fixed start vectors, no randomized
//! pivoting, no hash-ordered iteration.
//!
//! ```
//! use cc_linalg::{laplacian_from_edges, GroundedCholesky};
//!
//! // Path graph 0-1-2 with unit weights: solve L x = b, b ⟂ 1.
//! let lap = laplacian_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
//! let chol = GroundedCholesky::new(&lap)?;
//! let x = chol.solve(&[1.0, 0.0, -1.0]);
//! let b = lap.matvec(&x);
//! assert!((b[0] - 1.0).abs() < 1e-9 && (b[2] + 1.0).abs() < 1e-9);
//! # Ok::<(), cc_linalg::LinalgError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // dense kernels read clearer with explicit indices

mod cg;
mod cheby;
mod csr;
mod dense;
mod eigen;
mod error;
mod factor;
mod jacobi;
mod laplacian;
pub mod par;
mod power;
pub mod vec_ops;

pub use cg::{conjugate_gradient, conjugate_gradient_into, CgOutcome, CgStats, CgWorkspace};
pub use cheby::{
    chebyshev_iteration_bound, chebyshev_solve, chebyshev_solve_fixed, chebyshev_solve_fixed_into,
    chebyshev_solve_multi_into, relative_a_error, BatchWorkspace, ChebyshevOutcome,
    ChebyshevWorkspace,
};
pub use csr::{CsrMatrix, MATVEC_ROW_CHUNK, PAR_MIN_NNZ, RHS_LANES};
pub use dense::{DenseMatrix, MATMUL_J_BLOCK, MATMUL_K_PANEL, MATMUL_ROW_BLOCK, PAR_MIN_WORK};
pub use eigen::{symmetric_eigen, SymmetricEigen};
pub use error::LinalgError;
pub use factor::{GroundedCholesky, SolveScratch};
pub use jacobi::jacobi_eigenvalues;
pub use laplacian::{
    laplacian_from_edges, laplacian_quadratic_form, normalized_laplacian_dense, LaplacianNorm,
};
pub use power::{power_method, power_method_with, PowerOutcome};
