//! Elementary operations on `&[f64]` vectors.
//!
//! Deliberately free functions over slices (no vector newtype): the
//! distributed algorithms keep per-node scalars in plain `Vec<f64>`s and
//! these helpers mirror the "constant number of vector operations" of
//! Theorem 2.2.

/// Inner product `⟨a, b⟩`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm `‖a‖₂`.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ← y + α·x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `a ← α·a`.
pub fn scale(a: &mut [f64], alpha: f64) {
    for ai in a.iter_mut() {
        *ai *= alpha;
    }
}

/// `y ← x + β·y` — the fused direction update `p ← z + β·p` of Chebyshev
/// and CG, done in place with a single pass.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xpay(y: &mut [f64], beta: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "xpay: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + beta * *yi;
    }
}

/// Component-wise difference `a − b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Component-wise difference `out ← a − b` into a caller-provided buffer.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    assert_eq!(a.len(), out.len(), "sub: output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Component-wise sum `a + b` as a new vector.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Component-wise sum `out ← a + b` into a caller-provided buffer.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn add_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    assert_eq!(a.len(), out.len(), "add: output length mismatch");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Maximum absolute entry `‖a‖_∞` (0 for the empty vector).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, x| m.max(x.abs()))
}

/// ℓp norm for `p ≥ 1` (the paper uses `‖ρ‖₃` in the max-flow IPM).
pub fn norm_p(a: &[f64], p: f64) -> f64 {
    assert!(p >= 1.0, "norm_p requires p >= 1");
    a.iter().map(|x| x.abs().powf(p)).sum::<f64>().powf(1.0 / p)
}

/// Weighted ℓp norm `(Σ w_i |a_i|^p)^{1/p}` (the `‖ρ‖_{ν,p}` of the
/// min-cost flow IPM).
///
/// # Panics
///
/// Panics if the lengths differ or `p < 1`.
pub fn weighted_norm_p(a: &[f64], w: &[f64], p: f64) -> f64 {
    assert_eq!(a.len(), w.len(), "weighted_norm_p: length mismatch");
    assert!(p >= 1.0, "weighted_norm_p requires p >= 1");
    a.iter()
        .zip(w)
        .map(|(x, wi)| wi * x.abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Mean of the entries (0 for the empty vector).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Projects `a` onto the subspace orthogonal to the all-ones vector
/// (in place): `a ← a − mean(a)·1`.
pub fn remove_mean(a: &mut [f64]) {
    let m = mean(a);
    for ai in a.iter_mut() {
        *ai -= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(&mut y, 2.0, &[10.0, 20.0]);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn in_place_variants_match_allocating_ones() {
        let a = vec![1.0, -2.5, 3.0];
        let b = vec![0.5, 4.0, -1.0];
        let mut out = vec![0.0; 3];
        sub_into(&a, &b, &mut out);
        assert_eq!(out, sub(&a, &b));
        add_into(&a, &b, &mut out);
        assert_eq!(out, add(&a, &b));
        // xpay: y ← x + β·y, the fused `p = z + β p` update.
        let mut y = b.clone();
        xpay(&mut y, 0.25, &a);
        for ((got, x), orig) in y.iter().zip(&a).zip(&b) {
            assert_eq!(got.to_bits(), (x + 0.25 * orig).to_bits());
        }
    }

    #[test]
    fn p_norms() {
        assert!((norm_p(&[1.0, -1.0], 1.0) - 2.0).abs() < 1e-15);
        assert!((norm_p(&[3.0, 4.0], 2.0) - 5.0).abs() < 1e-12);
        assert!((weighted_norm_p(&[2.0], &[3.0], 3.0) - (24.0f64).powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn remove_mean_centres() {
        let mut a = vec![1.0, 2.0, 3.0];
        remove_mean(&mut a);
        assert!(mean(&a).abs() < 1e-15);
    }

    #[test]
    fn empty_vectors_are_harmless() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
        let mut e: Vec<f64> = vec![];
        remove_mean(&mut e);
        assert!(e.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    proptest! {
        #[test]
        fn cauchy_schwarz(a in proptest::collection::vec(-1e3f64..1e3, 1..20),
                          b in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let k = a.len().min(b.len());
            let (a, b) = (&a[..k], &b[..k]);
            prop_assert!(dot(a, b).abs() <= norm2(a) * norm2(b) + 1e-6);
        }

        #[test]
        fn triangle_inequality(a in proptest::collection::vec(-1e3f64..1e3, 1..20),
                               b in proptest::collection::vec(-1e3f64..1e3, 1..20)) {
            let k = a.len().min(b.len());
            let (a, b) = (&a[..k], &b[..k]);
            prop_assert!(norm2(&add(a, b)) <= norm2(a) + norm2(b) + 1e-6);
        }

        #[test]
        fn norm_p_monotone_in_p(a in proptest::collection::vec(-10f64..10.0, 1..12)) {
            // ‖a‖_q ≤ ‖a‖_p for p ≤ q.
            let n1 = norm_p(&a, 1.0);
            let n2 = norm_p(&a, 2.0);
            let n3 = norm_p(&a, 3.0);
            prop_assert!(n3 <= n2 + 1e-9);
            prop_assert!(n2 <= n1 + 1e-9);
        }
    }
}
